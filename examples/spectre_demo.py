"""Spectre v1 end to end: leak a secret byte, then stop it with NDA.

Reproduces the story of the paper's Figs. 4 and 8 in one run: the attack
recovers the secret through both the d-cache and the BTB covert channels on
the insecure baseline, and both channels go flat under NDA permissive
propagation.

    python examples/spectre_demo.py
"""

from repro import NDAPolicyName, baseline_ooo, nda_config
from repro.attacks import spectre_btb, spectre_v1
from repro.attacks.common import default_guesses

SECRET = 42
GUESSES = default_guesses(SECRET, count=32)


def show(outcome) -> None:
    print("  config=%s channel=%s" % (outcome.config_label, outcome.channel))
    print("  secret byte: %d   recovered: %d   leaked: %s   margin: %.0f"
          % (outcome.secret, outcome.recovered, outcome.leaked,
             outcome.margin))
    fastest = sorted(
        zip(outcome.timings, outcome.guesses)
    )[:3]
    print("  three fastest guesses: %s"
          % ", ".join("%d (%d cycles)" % (g, t) for t, g in fastest))
    print()


def main() -> None:
    insecure = baseline_ooo()
    protected = nda_config(NDAPolicyName.PERMISSIVE)

    print("=== Insecure OoO baseline (paper Fig. 4) ===")
    show(spectre_v1.run(insecure, secret=SECRET, guesses=GUESSES))
    show(spectre_btb.run(insecure, secret=SECRET, guesses=GUESSES))

    print("=== NDA permissive propagation (paper Fig. 8) ===")
    show(spectre_v1.run(protected, secret=SECRET, guesses=GUESSES))
    show(spectre_btb.run(protected, secret=SECRET, guesses=GUESSES))


if __name__ == "__main__":
    main()
