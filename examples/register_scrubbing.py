"""Listing 4: protecting a register-resident secret.

Permissive NDA protects secrets in *memory* but not in general-purpose
registers (§4.2/§5.5): once the victim has loaded a secret into a GPR, a
steered wrong path can still pre-process and transmit it, because non-load
micro-ops stay safe under permissive propagation.  The paper's §8 proposes
bracketing the window of vulnerability with speculation barriers
(Listing 4); this example emulates that with a FENCE after the steerable
branch, and also shows that strict propagation closes the gap in hardware.

    python examples/register_scrubbing.py
"""

from repro import NDAPolicyName, baseline_ooo, nda_config
from repro.attacks.common import (
    CACHE_LEAK_MARGIN,
    PROBE_BASE,
    PROBE_STRIDE,
    AttackOutcome,
    default_guesses,
    emit_cache_recover,
    emit_probe_flush,
    read_timings,
    run_attack,
)
from repro.isa.assembler import Assembler
from repro.isa.registers import R0, R10, R11, R12, R13, R20, R21

SECRET_ADDR = 0x60000
SIZE_ADDR = 0x61000
SECRET = 42
GUESSES = default_guesses(SECRET, 24)


def build(with_barrier: bool):
    asm = Assembler("gpr_leak")
    asm.word(SIZE_ADDR, 8)
    asm.data(SECRET_ADDR, bytes([SECRET]))
    asm.jmp("main")

    # The victim: the secret already lives in r10 when control reaches the
    # steerable branch.  r11 is the attacker-influenced index.
    asm.label("victim")
    asm.li(R20, SIZE_ADDR)
    asm.load(R20, R20, 0)
    asm.bge(R11, R20, "victim_done")  # the steering point
    if with_barrier:
        asm.fence()  # Listing 4: no speculative window past this point
    # In-bounds work that *touches the secret register*: the wrong path
    # reuses exactly these micro-ops as its transmit gadget.
    asm.mul(R21, R10, R13)
    asm.add(R21, R21, R12)
    asm.load(R21, R21, 0)
    asm.label("victim_done")
    asm.li(R10, 0)  # scrub the secret
    asm.ret()

    asm.label("main")
    asm.li(R12, PROBE_BASE)
    asm.li(R13, PROBE_STRIDE)
    # Warm the secret's line: the victim uses it regularly.
    asm.li(R20, SECRET_ADDR)
    asm.loadb(R21, R20, 0)
    # Train the bounds check in-bounds (with a non-secret r10).
    for index in range(5):
        asm.li(R10, 0)
        asm.li(R11, index % 8)
        asm.call("victim")
    emit_probe_flush(asm, GUESSES)
    asm.li(R20, SIZE_ADDR)
    asm.clflush(R20, 0)
    asm.fence()
    # The victim loads its secret into r10 (architecturally legal) and is
    # then invoked with an out-of-bounds index: the wrong path transmits
    # the register's contents.
    asm.li(R20, SECRET_ADDR)
    asm.loadb(R10, R20, 0)
    asm.li(R11, 0x1000)
    asm.call("victim")
    asm.fence()
    emit_cache_recover(asm, GUESSES)
    asm.halt()
    return asm.build()


def attempt(label, config, with_barrier):
    program = build(with_barrier)
    outcome = run_attack(program, config)
    result = AttackOutcome(
        attack="gpr_leak", channel="cache", config_label=outcome.label,
        secret=SECRET, timings=read_timings(outcome, GUESSES),
        guesses=GUESSES, margin_required=CACHE_LEAK_MARGIN,
    )
    print("%-42s leaked=%-5s recovered=%3d margin=%.0f" % (
        label, result.leaked, result.recovered, result.margin,
    ))
    return result


def main() -> None:
    permissive = nda_config(NDAPolicyName.PERMISSIVE)
    strict = nda_config(NDAPolicyName.STRICT)

    print("Secret resides in a GPR when the steering point is reached:\n")
    attempt("insecure OoO, no barrier", baseline_ooo(), False)
    attempt("NDA permissive, no barrier (GPR gap!)", permissive, False)
    attempt("NDA permissive + Listing-4 barrier", permissive, True)
    attempt("NDA strict, no barrier", strict, False)


if __name__ == "__main__":
    main()
