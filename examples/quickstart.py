"""Quickstart: simulate one SPEC-like benchmark under NDA.

Runs the synthetic `mcf` workload on the insecure out-of-order baseline,
two NDA policies, and the in-order core, and prints the resulting CPI —
the 60-second version of the paper's Fig. 7.

    python examples/quickstart.py
"""

from repro import (
    NDAPolicyName,
    baseline_ooo,
    nda_config,
    simulate,
)
from repro.harness import render_table3
from repro.workloads import spec_program


def main() -> None:
    print(render_table3())
    print()

    program = spec_program("deepsjeng", instructions=8_000, seed=1)
    print("workload: %s (%d static micro-ops)" % (program.name,
                                                  len(program)))
    print()

    rows = []
    baseline = simulate(program, baseline_ooo())
    rows.append(("OoO (insecure)", baseline))
    rows.append((
        "NDA permissive",
        simulate(program, nda_config(NDAPolicyName.PERMISSIVE)),
    ))
    rows.append((
        "NDA full protection",
        simulate(program, nda_config(NDAPolicyName.FULL_PROTECTION)),
    ))
    rows.append(("In-order", simulate(program, in_order=True)))

    print("%-22s %10s %10s %12s" % ("configuration", "cycles", "CPI",
                                    "vs OoO"))
    for label, outcome in rows:
        print("%-22s %10d %10.3f %11.2fx" % (
            label, outcome.stats.cycles, outcome.cpi,
            outcome.cpi / baseline.cpi,
        ))


if __name__ == "__main__":
    main()
