"""The covert-channel zoo: why sealing channels one by one cannot work.

The paper's central argument (§1, §3): prior defenses seal *specific*
covert channels — chiefly the d-cache — but wrong-path execution can
transmit secrets through many structures.  This example runs the same
Spectre-style access phase against four different transmit channels and
shows that the cache-only defense (InvisiSpec) loses the arms race while
NDA, which breaks the dependence chain at the source, blocks everything.

    python examples/covert_channel_zoo.py
"""

from repro import (
    NDAPolicyName,
    baseline_ooo,
    invisispec_config,
    nda_config,
)
from repro.attacks import netspectre, spectre_btb, spectre_icache, spectre_v1
from repro.attacks.common import default_guesses

SECRET = 42
GUESSES = default_guesses(SECRET, 24)

CHANNELS = [
    ("d-cache", spectre_v1),
    ("BTB", spectre_btb),
    ("i-cache", spectre_icache),
    ("FPU power", netspectre),
]

CONFIGS = [
    ("insecure OoO", baseline_ooo(), False),
    ("InvisiSpec-Spectre", invisispec_config(False), False),
    ("InvisiSpec-Future", invisispec_config(True), False),
    ("NDA permissive", nda_config(NDAPolicyName.PERMISSIVE), False),
    ("NDA full protection", nda_config(NDAPolicyName.FULL_PROTECTION),
     False),
    ("in-order", baseline_ooo(), True),
]


def main() -> None:
    header = "%-22s" % "defense"
    for channel, _ in CHANNELS:
        header += " %10s" % channel
    print(header)
    print("-" * len(header))
    for label, config, in_order in CONFIGS:
        row = "%-22s" % label
        for channel, module in CHANNELS:
            try:
                outcome = module.run(
                    config, secret=SECRET, guesses=GUESSES,
                    in_order=in_order,
                )
            except TypeError:
                outcome = module.run(config, secret=SECRET,
                                     in_order=in_order)
            row += " %10s" % ("LEAKED" if outcome.leaked else "blocked")
        print(row)
    print()
    print("NDA is agnostic to the transmit channel: it never lets the")
    print("wrong path compute with the secret in the first place.")


if __name__ == "__main__":
    main()
