"""Sweep the six NDA policies (plus baselines) over two workloads.

Prints per-policy CPI, overhead vs. the insecure baseline, and the security
properties each policy provides — a miniature of Table 2.

    python examples/policy_sweep.py
"""

from repro import (
    NDAPolicyName,
    baseline_ooo,
    invisispec_config,
    nda_config,
    simulate,
)
from repro.nda.policy import policy_for
from repro.workloads import spec_program

BENCHMARKS = ("leela", "lbm")
INSTRUCTIONS = 6_000


def security_summary(policy_name) -> str:
    if policy_name is None:
        return "none"
    policy = policy_for(policy_name)
    parts = []
    if policy.blocks_control_steering:
        parts.append("steering")
    if policy.blocks_ssb:
        parts.append("ssb")
    if policy.protects_gprs:
        parts.append("gprs")
    if policy.blocks_chosen_code:
        parts.append("chosen-code")
    return "+".join(parts) if parts else "none"


def main() -> None:
    programs = {
        bench: spec_program(bench, INSTRUCTIONS, seed=3)
        for bench in BENCHMARKS
    }

    baselines = {
        bench: simulate(programs[bench], baseline_ooo()).cpi
        for bench in BENCHMARKS
    }

    configs = [("OoO", None, baseline_ooo())]
    for policy in NDAPolicyName:
        configs.append((nda_config(policy).label(), policy,
                        nda_config(policy)))
    configs.append(("InvisiSpec-Spectre", None, invisispec_config(False)))
    configs.append(("InvisiSpec-Future", None, invisispec_config(True)))

    header = "%-20s" % "policy"
    for bench in BENCHMARKS:
        header += " %14s" % bench
    header += "  %-28s" % "blocks"
    print(header)
    print("-" * len(header))

    for label, policy, config in configs:
        row = "%-20s" % label
        for bench in BENCHMARKS:
            cpi = simulate(programs[bench], config).cpi
            row += " %6.2f (%4.0f%%)" % (
                cpi, (cpi / baselines[bench] - 1) * 100
            )
        row += "  %-28s" % security_summary(policy)
        print(row)

    row = "%-20s" % "In-Order"
    for bench in BENCHMARKS:
        cpi = simulate(programs[bench], in_order=True).cpi
        row += " %6.2f (%4.0f%%)" % (cpi, (cpi / baselines[bench] - 1) * 100)
    row += "  %-28s" % "everything (no speculation)"
    print(row)


if __name__ == "__main__":
    main()
