"""Write your own micro-op program and run it on the simulated cores.

Builds a dot-product kernel with the assembler DSL, checks it against the
architectural reference machine, and compares its schedule across the
baseline, an NDA policy, and the in-order core.

    python examples/custom_workload.py
"""

from repro import (
    NDAPolicyName,
    baseline_ooo,
    nda_config,
    run_reference,
    simulate,
)
from repro.isa.assembler import Assembler
from repro.isa.registers import R0, R1, R2, R3, R4, R5, R6, R7

VEC_A = 0x10000
VEC_B = 0x20000
LENGTH = 256


def build_dot_product():
    asm = Assembler("dot_product")
    for index in range(LENGTH):
        asm.word(VEC_A + index * 8, index + 1)
        asm.word(VEC_B + index * 8, 2 * index + 1)
    asm.li(R1, VEC_A)
    asm.li(R2, VEC_B)
    asm.li(R3, LENGTH)
    asm.li(R4, 0)  # accumulator
    asm.label("loop")
    asm.load(R5, R1, 0)
    asm.load(R6, R2, 0)
    asm.mul(R7, R5, R6)
    asm.add(R4, R4, R7)
    asm.addi(R1, R1, 8)
    asm.addi(R2, R2, 8)
    asm.subi(R3, R3, 1)
    asm.bne(R3, R0, "loop")
    asm.halt()
    return asm.build()


def main() -> None:
    program = build_dot_product()
    expected = sum((i + 1) * (2 * i + 1) for i in range(LENGTH))

    reference = run_reference(program)
    print("architectural result: %d (expected %d)"
          % (reference.regs[R4], expected))
    assert reference.regs[R4] == expected

    for label, runner in [
        ("OoO", lambda: simulate(program, baseline_ooo())),
        ("NDA strict", lambda: simulate(
            program, nda_config(NDAPolicyName.STRICT))),
        ("NDA full", lambda: simulate(
            program, nda_config(NDAPolicyName.FULL_PROTECTION))),
        ("In-order", lambda: simulate(program, in_order=True)),
    ]:
        outcome = runner()
        assert outcome.reg(R4) == expected, label
        print("%-12s %6d cycles   CPI %.3f   ILP %.2f   MLP %.2f" % (
            label, outcome.stats.cycles, outcome.cpi,
            outcome.stats.ilp, outcome.stats.mlp,
        ))


if __name__ == "__main__":
    main()
