"""Pytest fixtures for the benchmark suite."""

import pytest

from benchmarks.common import (
    bench_benchmarks,
    bench_cache,
    bench_jobs,
    bench_measure,
    bench_samples,
)
from repro.harness import run_suite


@pytest.fixture(scope="session")
def suite():
    """The shared Fig. 7 sweep (all ten configurations), engine-backed."""
    measure = bench_measure()
    result = run_suite(
        benchmarks=bench_benchmarks(),
        samples=bench_samples(),
        warmup=max(1_000, measure // 4),
        measure=measure,
        instructions=measure + measure // 2 + 2_000,
        jobs=bench_jobs(),
        cache=bench_cache(),
    )
    print("\nsuite engine: %s" % result.engine.describe())
    return result
