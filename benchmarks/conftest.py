"""Pytest fixtures for the benchmark suite."""

import pytest

from benchmarks.common import (
    bench_benchmarks,
    bench_measure,
    bench_samples,
)
from repro.harness import run_suite


@pytest.fixture(scope="session")
def suite():
    """The shared Fig. 7 sweep (all ten configurations)."""
    measure = bench_measure()
    return run_suite(
        benchmarks=bench_benchmarks(),
        samples=bench_samples(),
        warmup=max(1_000, measure // 4),
        measure=measure,
        instructions=measure + measure // 2 + 2_000,
    )
