#!/usr/bin/env python
"""CI smoke for end-to-end distributed tracing (``make trace-smoke``).

Exercises the ISSUE 10 acceptance path with real processes sharing one
``REPRO_TRACE_DIR`` spool directory:

1. **Server leg.** Boot ``nda-repro serve``, submit a small fuzz
   campaign carrying a client ``traceparent``, poll ``/v1/status`` and
   ``nda-repro obs top`` while it runs, and wait for the result.  The
   server process must spool causally linked ``submit`` →
   ``queue.wait`` → ``job.execute`` spans continuing the client trace.
2. **Coordinator + two external workers.** Run a sweep through the
   worker-protocol backend with ``--no-spawn`` and attach two separate
   ``nda-repro worker`` processes; the coordinator spools ``lease``
   spans and each worker spools ``worker.execute`` spans joined to the
   coordinator's trace across the socket frames.
3. **Merge.** ``nda-repro obs trace merge`` stitches every spool into
   one Perfetto trace that must pass ``validate_chrome_trace`` and
   contain spans from the server, the coordinator, and both workers.

Spool/queue directories are wiped at startup but kept afterwards so a
CI failure can upload them for triage.
"""

import argparse
import json
import shutil
import socket
import subprocess
import sys
import time
from pathlib import Path

from repro.obs.perfetto import (
    merge_span_spools,
    read_span_spools,
    validate_chrome_trace,
)
from repro.server import ServerClient, ServerError

FUZZ = {"seeds": 2, "configs": ["ooo"], "max_cycles": 200_000}

#: A fixed client trace context; the server's submit span must continue
#: this trace rather than starting its own.
CLIENT_TRACE_ID = "f0" * 16
CLIENT_TRACEPARENT = "00-%s-%s-01" % (CLIENT_TRACE_ID, "aa" * 8)


def free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def start_worker(port: int, coordinator, env, attempts: int = 60):
    """Launch an external worker, retrying until the coordinator listens.

    No TCP probe here on purpose: any bare connect would count as a
    worker to the coordinator's degrade heuristics.  A worker that finds
    nothing listening exits 1 immediately, so launch-and-check is the
    non-intrusive readiness test.
    """
    for _ in range(attempts):
        if coordinator.poll() is not None:
            raise SystemExit("coordinator died before workers attached")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "worker",
             "--connect", "127.0.0.1:%d" % port],
            env=env,
        )
        time.sleep(0.5)
        if proc.poll() is None:
            return proc
    raise SystemExit("worker never connected to :%d" % port)


def wait_healthy(client: ServerClient, proc, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit("server process died during startup")
        try:
            client.health()
            return
        except ServerError:
            time.sleep(0.2)
    raise SystemExit("server not healthy after %.0fs" % timeout)


def cli(*argv: str, env=None, timeout: float = 120.0):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli"] + list(argv),
        capture_output=True, text=True, timeout=timeout, env=env,
    )


def _server_leg(spool: str, queue_dir: str, cache_dir: str, env) -> None:
    port = free_port()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", str(port),
         "--queue-dir", queue_dir, "--cache-dir", cache_dir],
        env=env,
    )
    base = "http://127.0.0.1:%d" % port
    try:
        client = ServerClient(base)
        wait_healthy(client, proc)
        print("[trace-smoke] server on %s" % base)

        job = client.submit("fuzz", FUZZ, traceparent=CLIENT_TRACEPARENT)
        print("[trace-smoke] submitted fuzz job %s (%s)"
              % (job.id[:12], job.state))

        status = client.status()
        assert status["kind"] == "status", status
        assert status["jobs"]["total"] >= 1, status["jobs"]
        assert status["tracing"]["service"] == "server", status["tracing"]
        print("[trace-smoke] /v1/status live: queue=%s" % status["queue"])

        done = client.wait(job.id, timeout=300)
        assert done.state == "done", "fuzz job ended %s: %s" % (
            done.state, done.error)

        top = cli("obs", "top", "--server", base, "--iterations", "1",
                  env=env)
        assert top.returncode == 0, top.stderr
        assert "queue" in top.stdout, top.stdout
        print("[trace-smoke] obs top rendered one snapshot")
    finally:
        proc.terminate()
        proc.wait(timeout=10)

    rows = read_span_spools(spool)
    server_rows = [r for r in rows if r["service"] == "server"]
    submits = [r for r in server_rows if r["name"] == "submit"]
    assert submits, "server spooled no submit span"
    submit = submits[0]
    assert submit["trace_id"] == CLIENT_TRACE_ID, \
        "submit span did not continue the client trace: %r" % submit
    assert submit["parent_id"] == "aa" * 8, submit
    for name in ("queue.wait", "job.execute"):
        linked = [
            r for r in server_rows
            if r["name"] == name and r["trace_id"] == CLIENT_TRACE_ID
        ]
        assert linked, "no %s span on the client trace" % name
    execute = next(
        r for r in server_rows
        if r["name"] == "job.execute" and r["trace_id"] == CLIENT_TRACE_ID
    )
    assert execute["parent_id"] == submit["span_id"], \
        "job.execute not parented on the submit span"
    campaign = [r for r in server_rows if r["name"] == "fuzz.campaign"]
    assert campaign and campaign[0]["trace_id"] == CLIENT_TRACE_ID, \
        "fuzz.campaign span missing from the client trace"
    print("[trace-smoke] server spans causally linked: "
          "submit -> queue.wait -> job.execute -> fuzz.campaign")


def _worker_leg(spool: str, env) -> None:
    port = free_port()
    coordinator = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "bench",
         "--benchmarks", "exchange2", "--samples", "3",
         "--warmup", "2000", "--measure", "8000",
         "--jobs", "2", "--no-cache",
         "--backend", "worker-protocol", "--no-spawn",
         "--bind", "127.0.0.1:%d" % port],
        env=env, stdout=subprocess.DEVNULL,
    )
    workers = []
    try:
        for _ in range(2):
            workers.append(start_worker(port, coordinator, env))
        rc = coordinator.wait(timeout=300)
        assert rc == 0, "coordinator exited %d" % rc
        for worker in workers:
            assert worker.wait(timeout=30) == 0, "a worker exited nonzero"
    finally:
        for proc in [coordinator] + workers:
            if proc.poll() is None:
                proc.terminate()
                proc.wait(timeout=10)

    rows = read_span_spools(spool)
    leases = [r for r in rows if r["name"] == "lease"]
    assert leases, "coordinator spooled no lease spans"
    coordinator_trace = leases[0]["trace_id"]
    executes = [r for r in rows if r["name"] == "worker.execute"]
    worker_pids = {r["pid"] for r in executes}
    assert len(worker_pids) == 2, \
        "expected spans from 2 worker processes, got pids %s" % worker_pids
    assert all(r["trace_id"] == coordinator_trace for r in executes), \
        "worker spans did not join the coordinator trace"
    print("[trace-smoke] %d leases; %d worker.execute spans from "
          "2 worker processes joined trace %s"
          % (len(leases), len(executes), coordinator_trace[:12]))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--spool-dir", default="results/traces-smoke/spans")
    parser.add_argument("--queue-dir", default="results/queue-trace-smoke")
    parser.add_argument("--cache-dir", default="results/.cache-trace-smoke")
    args = parser.parse_args()

    for stale in (args.spool_dir, args.queue_dir, args.cache_dir):
        shutil.rmtree(stale, ignore_errors=True)
    Path(args.spool_dir).mkdir(parents=True, exist_ok=True)

    import os
    env = dict(os.environ, REPRO_TRACE_DIR=args.spool_dir)

    _server_leg(args.spool_dir, args.queue_dir, args.cache_dir, env)
    _worker_leg(args.spool_dir, env)

    # ---- Merge every spool into one validating Perfetto trace. ---- #
    merged = str(Path(args.spool_dir).parent / "merged.json")
    out = cli("obs", "trace", "merge", "--dir", args.spool_dir,
              "--output", merged, env=env)
    assert out.returncode == 0, out.stderr or out.stdout
    print("[trace-smoke] %s" % out.stdout.strip().splitlines()[-1])

    payload = json.loads(Path(merged).read_text())
    problems = validate_chrome_trace(payload)
    assert problems == [], "merged trace invalid: %s" % problems[:3]

    summary = merge_span_spools(args.spool_dir, merged)
    services = sorted(
        {entry.split(":")[0] for entry in summary["processes"]}
    )
    workers = [p for p in summary["processes"] if p.startswith("worker:")]
    assert services == ["cli", "server", "worker"], summary["processes"]
    assert len(workers) == 2, summary["processes"]
    assert summary["traces"] >= 2, summary  # server leg + coordinator leg
    print("[trace-smoke] merged trace validates with spans from %d "
          "processes: %s" % (
              len(summary["processes"]), ", ".join(summary["processes"]),
          ))

    print("trace-smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
