#!/usr/bin/env python
"""Simulator-speed benchmark runner.

Measures host wall-clock simulation throughput (kilo-cycles/sec) per
(workload, config, engine) with the idle-cycle fast-forward on and off,
and writes the JSON (schema 2) payload consumed by the CI perf-smoke
job::

    PYTHONPATH=src python benchmarks/bench_simspeed.py
    PYTHONPATH=src python benchmarks/bench_simspeed.py \\
        --quick --gate --output BENCH_simspeed.ci.json \\
        --baseline BENCH_simspeed.json

With ``--baseline``, regressions beyond 25% print WARNING lines but the
exit code stays 0 (runner wall clocks are too noisy for a hard
cross-run gate).  The one hard gate is ``--gate``: the fast engine must
be at least 2x the reference on mcf/ooo along the stepping path (no
fast-forward) — a within-run ratio, immune to runner speed.  On a gate
failure (or with ``--profile``) the slowest row's cProfile dump lands
under ``results/profiles/`` for triage.  ``--windows N`` adds lockstep
aggregate-throughput rows.  Unlike the ``bench_fig*`` modules this is a
standalone script, not a pytest-benchmark suite: it times the simulator
itself, not the machine being simulated.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.harness.simspeed import (
    DEFAULT_CONFIGS,
    DEFAULT_ENGINES,
    DEFAULT_INSTRUCTIONS,
    DEFAULT_REPEATS,
    DEFAULT_SEED,
    DEFAULT_WORKLOADS,
    _slowest_row,
    compare_simspeed,
    gate_simspeed,
    profile_case,
    render_simspeed,
    run_simspeed,
)


def _profile_slowest(payload) -> str:
    """Dump a cProfile of the payload's slowest row; returns the path."""
    row = _slowest_row(payload)
    if row is None:
        return ""
    return profile_case(
        row["workload"], row["config"],
        "results/profiles/%s_%s_%s.pstats" % (
            row["workload"], row["config"], row["engine"],
        ),
        instructions=payload["instructions"],
        seed=payload["seed"],
        engine=row["engine"],
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workloads", nargs="*", default=list(DEFAULT_WORKLOADS),
        metavar="NAME",
    )
    parser.add_argument(
        "--configs", nargs="*", default=list(DEFAULT_CONFIGS),
        metavar="NAME",
    )
    parser.add_argument(
        "--instructions", type=int, default=DEFAULT_INSTRUCTIONS
    )
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--output", default="BENCH_simspeed.json", metavar="FILE",
        help="where to write the JSON payload",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline payload to diff against (warn-only)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small matrix for CI smoke (mcf + ooo/strict, 2 repeats; "
             "instruction count stays comparable to the baseline)",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="also measure telemetry overhead and enforce the DESIGN.md "
             "§3.5 contract (<10%% with sampling enabled)",
    )
    parser.add_argument(
        "--obs-budget", type=float, default=0.10, metavar="FRACTION",
        help="hard ceiling for the sampling-enabled overhead "
             "(default 0.10; the detached variant is bit-identity-"
             "checked but not wall-clock-gated — see --obs)",
    )
    parser.add_argument(
        "--engines", nargs="*", default=list(DEFAULT_ENGINES),
        choices=["reference", "fast"], metavar="ENGINE",
        help="engines to measure (default: both, which also enables "
             "the cross-engine bit-identity check and speedup columns)",
    )
    parser.add_argument(
        "--windows", type=int, default=1, metavar="N",
        help="also measure lockstep aggregate throughput over N "
             "full runs per (workload, config), fast engine",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="cProfile the slowest row into results/profiles/",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="hard-fail (exit 1) if the fast engine is under 2x the "
             "reference on mcf/ooo along the stepping path; also dumps "
             "the slowest row's profile on failure",
    )
    parser.add_argument(
        "--history", action="store_true",
        help="append a git-SHA-stamped row to results/bench_history"
             ".jsonl and report drift vs the previous row (warn-only)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.workloads = ["mcf"]
        args.configs = ["ooo", "strict"]
        args.repeats = min(args.repeats, 2)

    payload = run_simspeed(
        workloads=args.workloads,
        configs=args.configs,
        instructions=args.instructions,
        repeats=args.repeats,
        seed=args.seed,
        verbose=True,
        obs=args.obs,
        engines=args.engines,
        windows=args.windows,
    )
    print()
    print(render_simspeed(payload))

    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print("wrote %s" % output)

    if args.profile:
        path = _profile_slowest(payload)
        if path:
            print("profiled slowest row to %s" % path)

    if args.obs:
        # Bit-identity for every attached variant (incl. tracing) was
        # already asserted inside measure_obs_overhead; here only the
        # wall-clock budget can still fail.
        failed = False
        for key, label in (
            ("overhead_sampling", "metrics sampling"),
            ("overhead_tracing", "span tracing"),
        ):
            overhead = payload["obs"][key]
            if overhead >= args.obs_budget:
                print(
                    "FAIL: %s costs %+.1f%% wall clock, over "
                    "the %.0f%% budget" % (
                        label, overhead * 100.0, args.obs_budget * 100.0,
                    )
                )
                failed = True
        if failed:
            return 1

    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        warnings = compare_simspeed(payload, baseline)
        for line in warnings:
            print(line)
        if not warnings:
            print("no regressions vs %s" % args.baseline)

    if args.history:
        from repro.harness.simspeed import (
            HISTORY_PATH, append_history, compare_history,
        )
        for line in compare_history(payload):
            print(line)
        entry = append_history(payload)
        print("history: appended %s (%s) to %s" % (
            (entry["git_revision"] or "no-git")[:12],
            entry["recorded"], HISTORY_PATH,
        ))

    if args.gate:
        failures = gate_simspeed(payload)
        for line in failures:
            print(line)
        if failures:
            if not args.profile:
                path = _profile_slowest(payload)
                if path:
                    print("profiled slowest row to %s" % path)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
