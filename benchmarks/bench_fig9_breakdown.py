"""Figure 9a-9d: aggregated pipeline statistics across the suite.

* 9a — cycle breakdown (commit / memory stall / back-end stall / front-end
  stall), normalized to baseline OoO cycles.
* 9b — memory-level parallelism (geometric mean).
* 9c — instruction-level parallelism (geometric mean).
* 9d — mean dispatch-to-issue latency.
"""

from repro.harness import (
    figure9b,
    figure9c,
    figure9d,
    render_figure9a,
    render_figure9bc,
    render_figure9d,
)
from repro.harness.experiment import BASELINE_LABEL, IN_ORDER_LABEL
from repro.stats.counters import CycleClass

from benchmarks.common import publish


def test_figure9a_cycle_breakdown(benchmark, suite):
    text = benchmark.pedantic(
        lambda: render_figure9a(suite), rounds=1, iterations=1
    )
    publish("figure9a", text)

    base = suite.breakdown(BASELINE_LABEL)
    full = suite.breakdown("Full Protection")
    # NDA restricts scheduling: total (normalized) cycles grow, and the
    # growth shows up in commit + back-end/memory stalls (paper §6.3).
    assert sum(full.values()) > sum(base.values())
    grown = (
        full[CycleClass.BACKEND_STALL] + full[CycleClass.MEMORY_STALL]
        + full[CycleClass.COMMIT]
    )
    base_grown = (
        base[CycleClass.BACKEND_STALL] + base[CycleClass.MEMORY_STALL]
        + base[CycleClass.COMMIT]
    )
    assert grown > base_grown


def test_figure9b_9c_parallelism(benchmark, suite):
    text = benchmark.pedantic(
        lambda: render_figure9bc(suite), rounds=1, iterations=1
    )
    publish("figure9bc", text)

    mlp = figure9b(suite)
    ilp = figure9c(suite)
    # In-order cannot exceed 1.0 on either axis; every NDA policy beats it.
    assert mlp[IN_ORDER_LABEL] <= 1.0
    assert ilp[IN_ORDER_LABEL] <= 1.0
    for label in ("Permissive", "Strict", "Full Protection"):
        assert mlp[label] > mlp[IN_ORDER_LABEL]
        assert ilp[label] > ilp[IN_ORDER_LABEL]
    # NDA may reduce parallelism relative to OoO, but not below in-order.
    assert mlp["Full Protection"] <= mlp[BASELINE_LABEL] * 1.05


def test_figure9d_wakeup_latency(benchmark, suite):
    text = benchmark.pedantic(
        lambda: render_figure9d(suite), rounds=1, iterations=1
    )
    publish("figure9d", text)

    data = figure9d(suite)
    # NDA defers wake-ups: dispatch-to-issue latency grows with strictness.
    assert data["Permissive"] >= data[BASELINE_LABEL] - 0.5
    assert data["Full Protection"] > data[BASELINE_LABEL]
    assert data["Strict"] >= data["Permissive"] - 0.5
