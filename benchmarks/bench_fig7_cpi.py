"""Figure 7: per-benchmark CPI normalized to OoO, all ten configurations.

Regenerates the paper's main performance figure: every SPEC-like benchmark
under OoO, the six NDA policies, In-Order, and both InvisiSpec variants,
with 95% confidence intervals from SMARTS-style sampling.
"""

from repro.harness import render_figure7

from benchmarks.common import publish


def test_figure7_normalized_cpi(benchmark, suite):
    def render():
        return render_figure7(suite)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    publish("figure7", text)
    from benchmarks.common import RESULTS_DIR
    suite.save_summary(RESULTS_DIR / "suite_summary.json")

    # Shape assertions mirroring the paper's qualitative claims.
    ooo = suite.mean_normalized_cpi("OoO")
    permissive = suite.mean_normalized_cpi("Permissive")
    full = suite.mean_normalized_cpi("Full Protection")
    inorder = suite.mean_normalized_cpi("In-Order")
    assert ooo == 1.0
    assert ooo <= permissive <= full <= inorder
    assert suite.gap_closed_pct("Permissive") > 60
    assert suite.gap_closed_pct("Full Protection") > 30
