"""Table 2: per-mechanism slowdown vs. the insecure OoO baseline.

Prints measured overheads next to the paper's numbers, plus the derived
headline claims (speedup over In-Order, share of the In-Order/OoO gap
recovered).
"""

from repro.harness import render_table2
from repro.harness.tables import table2

from benchmarks.common import publish


def test_table2_policy_overheads(benchmark, suite):
    rows = benchmark.pedantic(
        lambda: table2(suite), rounds=1, iterations=1
    )
    publish("table2", render_table2(rows))

    by_label = {row["mechanism"]: row for row in rows}
    # Security-ordering of overheads within each propagation family.
    assert by_label["Permissive"]["overhead_pct"] <= \
        by_label["Permissive+BR"]["overhead_pct"] + 1e-9
    assert by_label["Strict"]["overhead_pct"] <= \
        by_label["Strict+BR"]["overhead_pct"] + 1e-9
    assert by_label["Strict+BR"]["overhead_pct"] <= \
        by_label["Full Protection"]["overhead_pct"] + 1e-9
    # Every NDA policy beats In-Order.
    for label in ("Permissive", "Permissive+BR", "Strict", "Strict+BR",
                  "Restricted Loads", "Full Protection"):
        assert by_label[label]["speedup_vs_inorder"] > 1.0
