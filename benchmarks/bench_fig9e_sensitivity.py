"""Figure 9e: sensitivity of NDA to extra broadcast-logic latency.

Re-runs the permissive policy with 0, 1, and 2 extra cycles between an
instruction turning safe and its tag broadcast.  The paper reports that a
one-cycle delay costs less than 3.6% CPI; the shape assertion here is that
the cost is monotonic and small relative to the policy's own overhead.
"""

from repro.harness.figures import figure9e, render_figure9e

from benchmarks.common import bench_benchmarks, bench_samples, publish


def test_figure9e_broadcast_delay(benchmark):
    data = benchmark.pedantic(
        lambda: figure9e(
            benchmarks=bench_benchmarks()[:6],
            delays=(0, 1, 2),
            samples=max(2, bench_samples() - 1),
        ),
        rounds=1, iterations=1,
    )
    publish("figure9e", render_figure9e(data))

    zero = data["Permissive, 0 cycle delay"]
    one = data["Permissive, 1 cycle delay"]
    two = data["Permissive, 2 cycle delay"]
    assert zero <= one * 1.02  # monotonic modulo sampling noise
    assert one <= two * 1.02
    # A one-cycle delay costs only a few percent CPI (paper: < 3.6%).
    assert (one - zero) / zero < 0.08
