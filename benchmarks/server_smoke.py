#!/usr/bin/env python
"""CI smoke for the HTTP job server (``make server-smoke``).

Boots the real service twice through ``nda-repro serve`` subprocesses
and drives it over the socket:

1. **Cold run + dedup.** Submit a tiny sweep, wait for it, then submit
   the identical spec again — the second submission must come back as
   the *same* completed job (``submissions == 2``) without another
   engine execution, and ``/metrics`` must show the dedup.
2. **CLI client.** ``nda-repro submit --wait`` against the same server
   must print the suite result envelope.
3. **Warm-cache short-circuit.** A second server with a *fresh* queue
   directory but the same result cache must answer the same submission
   inline: completed at submit time, ``cached`` flagged, and zero
   engine executions in the result's accounting.

Queue directories are wiped at startup but kept afterwards so a CI
failure can upload them for triage.
"""

import argparse
import json
import shutil
import socket
import subprocess
import sys
import time

from repro.server import ServerClient, ServerError

SWEEP = {
    "benchmarks": ["exchange2"], "configs": ["ooo", "strict"],
    "samples": 1, "warmup": 500, "measure": 2000, "instructions": 5000,
}


def free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def start_server(port: int, queue_dir: str, cache_dir: str):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", str(port),
         "--queue-dir", queue_dir, "--cache-dir", cache_dir],
    )


def wait_healthy(client: ServerClient, proc, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit("server process died during startup")
        try:
            client.health()
            return
        except ServerError:
            time.sleep(0.2)
    raise SystemExit("server not healthy after %.0fs" % timeout)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queue-dir", default="results/queue-smoke",
                        help="queue root prefix (two dirs are derived)")
    parser.add_argument("--cache-dir", default="results/.cache-smoke")
    args = parser.parse_args()

    queue_a = args.queue_dir + "-a"
    queue_b = args.queue_dir + "-b"
    for stale in (queue_a, queue_b, args.cache_dir):
        shutil.rmtree(stale, ignore_errors=True)

    # ---- Server A: cold execution, then idempotent resubmission. ---- #
    port = free_port()
    proc = start_server(port, queue_a, args.cache_dir)
    base = "http://127.0.0.1:%d" % port
    try:
        client = ServerClient(base)
        wait_healthy(client, proc)
        print("[smoke] server A on %s" % base)

        job = client.submit("sweep", SWEEP)
        print("[smoke] cold submit: job %s %s" % (job.id[:12], job.state))
        done = client.wait(job.id, timeout=300)
        assert done.state == "done", "cold job ended %s: %s" % (
            done.state, done.error)
        result = client.result(job.id)
        executed = result["engine"]["executed"]
        assert result["kind"] == "suite", result["kind"]
        assert executed >= 1, "cold run executed nothing"
        print("[smoke] cold run executed %d windows" % executed)

        again = client.submit("sweep", SWEEP)
        assert again.id == job.id, "identical spec produced a new job"
        assert again.state == "done", "resubmission not answered done"
        assert again.submissions == 2, again.submissions
        print("[smoke] resubmission deduped to the completed job")

        cli = subprocess.run(
            [sys.executable, "-m", "repro.cli", "submit", "sweep",
             "--server", base, "--wait", "--spec", json.dumps(SWEEP)],
            capture_output=True, text=True, timeout=120,
        )
        assert cli.returncode == 0, cli.stderr
        envelope = json.loads(cli.stdout)
        assert envelope["schema"] == "repro.result/v1", envelope
        assert envelope["kind"] == "suite"
        print("[smoke] nda-repro submit --wait printed the envelope")

        text = client.metrics_text()
        for needle in (
            'server_submissions_total{kind="sweep"} 3',
            'server_jobs_deduped_total{kind="sweep"} 2',
            'server_jobs_completed_total{kind="sweep"} 1',
            'server_queue_jobs{state="done"} 1',
        ):
            assert needle in text, "metrics missing %r" % needle
        print("[smoke] /metrics reflects 3 submissions, 2 dedups, 1 run")
    finally:
        proc.terminate()
        proc.wait(timeout=10)

    # ---- Server B: fresh queue + warm cache => zero executions. ---- #
    port = free_port()
    proc = start_server(port, queue_b, args.cache_dir)
    base = "http://127.0.0.1:%d" % port
    try:
        client = ServerClient(base)
        wait_healthy(client, proc)
        print("[smoke] server B on %s (fresh queue, warm cache)" % base)

        job = client.submit("sweep", SWEEP)
        assert job.state == "done", \
            "warm submission should complete inline, got %s" % job.state
        assert job.cached, "warm submission not flagged cached"
        result = client.result(job.id)
        assert result["engine"]["executed"] == 0, \
            "warm run executed %d windows" % result["engine"]["executed"]
        text = client.metrics_text()
        assert 'server_cache_shortcircuit_total{kind="sweep"} 1' in text
        print("[smoke] warm submission short-circuited the queue "
              "(0 executions, %d cache hits)"
              % result["engine"]["cache_hits"])
    finally:
        proc.terminate()
        proc.wait(timeout=10)

    print("server-smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
