"""Software mitigations vs. NDA (the §3.2 comparison).

Measures the ``lfence`` hardening pass (fences on both outcomes of every
conditional branch) against NDA's permissive propagation on branch-heavy
workloads, and verifies the paper's two claims about software defenses:
they only block the techniques they target, and blanket fencing costs far
more than hardware propagation control (the paper cites 68-247% for
compiler-based schemes).
"""

from dataclasses import replace as drep

from repro.attacks import meltdown, spectre_v1, ssb
from repro.attacks.common import (
    CACHE_LEAK_MARGIN,
    AttackOutcome,
    default_guesses,
    read_timings,
    run_attack,
)
from repro.attacks.ssb import attack_guesses
from repro.config import NDAPolicyName, baseline_ooo, nda_config
from repro.api import simulate
from repro.mitigations import harden_lfence, static_overhead
from repro.stats.report import render_table
from repro.workloads.generator import generate_program
from repro.workloads.profiles import profile

from benchmarks.common import publish

BENCHMARKS = ("deepsjeng", "leela", "perlbench", "x264")


def _sweep():
    rows = []
    for bench in BENCHMARKS:
        prof = drep(profile(bench), indirect_call_frac=0.0)
        program = generate_program(prof, 5_000, seed=0)
        hardened = harden_lfence(program)
        base = simulate(program, baseline_ooo()).stats.cycles
        fenced = simulate(hardened, baseline_ooo()).stats.cycles
        nda = simulate(
            program, nda_config(NDAPolicyName.PERMISSIVE)
        ).stats.cycles
        rows.append({
            "benchmark": bench,
            "lfence_pct": (fenced / base - 1) * 100,
            "nda_pct": (nda / base - 1) * 100,
            "static_pct": static_overhead(program, hardened) * 100,
        })
    return rows


def _security():
    guesses = default_guesses(42, 16)
    checks = {}
    v1 = harden_lfence(spectre_v1.build_program(42, guesses))
    outcome = run_attack(v1, baseline_ooo())
    checks["spectre_v1"] = AttackOutcome(
        "v1", "cache", outcome.label, 42, read_timings(outcome, guesses),
        guesses, CACHE_LEAK_MARGIN,
    ).leaked
    ssb_guesses = attack_guesses(42, 16)
    hardened_ssb = harden_lfence(ssb.build_program(42, ssb_guesses))
    outcome = run_attack(hardened_ssb, baseline_ooo())
    checks["ssb"] = AttackOutcome(
        "ssb", "cache", outcome.label, 42,
        read_timings(outcome, ssb_guesses), ssb_guesses,
        CACHE_LEAK_MARGIN,
    ).leaked
    hardened_meltdown = harden_lfence(meltdown.build_program(42, guesses))
    outcome = run_attack(hardened_meltdown, baseline_ooo())
    checks["meltdown"] = AttackOutcome(
        "meltdown", "cache", outcome.label, 42,
        read_timings(outcome, guesses), guesses, CACHE_LEAK_MARGIN,
    ).leaked
    return checks


def test_lfence_vs_nda(benchmark):
    rows, checks = benchmark.pedantic(
        lambda: (_sweep(), _security()), rounds=1, iterations=1
    )

    table_rows = [
        (row["benchmark"], "%.0f%%" % row["lfence_pct"],
         "%.0f%%" % row["nda_pct"], "%.0f%%" % row["static_pct"])
        for row in rows
    ]
    mean_lfence = sum(r["lfence_pct"] for r in rows) / len(rows)
    mean_nda = sum(r["nda_pct"] for r in rows) / len(rows)
    table_rows.append(("MEAN", "%.0f%%" % mean_lfence,
                       "%.0f%%" % mean_nda, ""))
    text = render_table(
        ("benchmark", "lfence pass", "NDA permissive", "code growth"),
        table_rows,
        title="Software mitigation cost vs. NDA (runtime overhead on "
              "insecure OoO hardware)",
    )
    text += (
        "\n\nlfence-hardened binaries vs. the attacks:"
        "\n  spectre_v1 blocked: %s"
        "\n  ssb still leaks:    %s (no branch to fence)"
        "\n  meltdown still leaks: %s (chosen-code, no mispredict needed)"
        % (not checks["spectre_v1"], checks["ssb"], checks["meltdown"])
    )
    publish("software_mitigations", text)

    # The paper's claims.
    assert not checks["spectre_v1"]
    assert checks["ssb"]
    assert checks["meltdown"]
    assert mean_lfence > 2 * mean_nda
    # The cited compiler-scheme range is 68-247%: we should land inside
    # (or above) its lower half on branch-heavy integer codes.
    assert mean_lfence > 40
