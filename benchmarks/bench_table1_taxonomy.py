"""Tables 1 & 2 security columns: the live attack matrix.

Runs every implemented attack PoC against every configuration and checks
each cell against the paper's expectation.  This is the benchmark-harness
twin of ``tests/test_attack_matrix.py`` with a wider guess sweep.
"""

from repro.harness.tables import render_table1, table1_matrix

from benchmarks.common import publish


def test_table1_security_matrix(benchmark):
    rows = benchmark.pedantic(
        lambda: table1_matrix(guesses=32), rounds=1, iterations=1
    )
    publish("table1_matrix", render_table1(rows))

    mismatches = [
        row for row in rows if row["leaked"] != row["expected"]
    ]
    assert not mismatches, mismatches

    # Headline claims of the paper:
    # 1. everything leaks on the insecure baseline,
    insecure = [row for row in rows if row["config"] == "OoO"]
    assert all(row["leaked"] for row in insecure)
    # 2. no attack leaks under full protection or in-order,
    for config in ("Full Protection", "In-Order"):
        assert not any(
            row["leaked"] for row in rows if row["config"] == config
        )
    # 3. the BTB channel defeats InvisiSpec but not NDA.
    btb_rows = {
        row["config"]: row["leaked"]
        for row in rows if row["attack"] == "spectre_v1_btb"
    }
    assert btb_rows["InvisiSpec-Spectre"]
    assert btb_rows["InvisiSpec-Future"]
    assert not btb_rows["Permissive"]
