#!/usr/bin/env python
"""CI smoke for the execution backends (``make scale-smoke``).

One tiny sweep, three ways, one answer:

1. **Bit-identity.** Run the same job set through the ``serial``,
   ``local-pool``, and ``worker-protocol`` backends (the last one over
   real sockets with spawned worker interpreters) and require every
   measurement window to be byte-identical to the serial reference.
2. **Kill/resume.** Launch a checkpointing fuzz campaign as a
   subprocess, SIGTERM it mid-run, validate the checkpoint manifest it
   left behind, then resume it — completed jobs must replay without
   re-execution and the finished campaign must report the same witness
   corpus as an uninterrupted reference run.

Checkpoint artifacts are written under ``results/scale-smoke/`` and
kept, so a CI failure can upload them for triage.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import time

from repro.config import ConfigSpec, NDAPolicyName, baseline_ooo, nda_config
from repro.engine import expand_jobs, run_jobs
from repro.engine.backends import WorkerProtocolBackend
from repro.fuzz.campaign import run_campaign
from repro.obs.manifest import validate_checkpoint

ARTIFACT_DIR = os.path.join("results", "scale-smoke")

SEEDS = 300
CONFIG = "strict"


def sweep_jobs():
    specs = [
        ConfigSpec("OoO", baseline_ooo()),
        ConfigSpec("Strict", nda_config(NDAPolicyName.STRICT)),
        ConfigSpec("In-Order", baseline_ooo(), in_order=True),
    ]
    return expand_jobs(["exchange2", "leela"], specs, 1, 500, 2000, 5000)


def windows(results):
    return {
        "%s/%s/%d" % (r.job.coordinates): r.window.to_dict()
        for r in results
    }


def check_bit_identity() -> None:
    jobs = sweep_jobs()
    reference, failures, serial_stats = run_jobs(jobs, backend="serial")
    assert not failures, failures
    print("serial:          %s" % serial_stats.describe())

    for backend, kwargs in (
        ("local-pool", {"jobs": 2}),
        (WorkerProtocolBackend(processes=2, lease_timeout=120.0,
                               connect_timeout=60.0), {"jobs": 2}),
    ):
        results, failures, stats = run_jobs(jobs, backend=backend, **kwargs)
        assert not failures, failures
        print("%-16s %s" % (stats.backend + ":", stats.describe()))
        if stats.backend == "worker-protocol":
            assert not stats.degraded, \
                "worker-protocol degraded to serial — no workers connected"
        got, want = windows(results), windows(reference)
        diff = [coords for coords in want if got[coords] != want[coords]]
        assert not diff, "backend %s diverged from serial on %s" % (
            stats.backend, diff,
        )
    print("bit-identity: all backends match the serial reference")


def check_kill_resume() -> None:
    checkpoint = os.path.join(ARTIFACT_DIR, "campaign.ck.json")
    child_code = (
        "import sys\n"
        "from repro.fuzz.campaign import run_campaign\n"
        "run_campaign(range(%d), config_names=[%r], jobs=1,\n"
        "             checkpoint=sys.argv[1], checkpoint_interval=1)\n"
        % (SEEDS, CONFIG)
    )
    child = subprocess.Popen([sys.executable, "-c", child_code, checkpoint])
    try:
        deadline = time.monotonic() + 120.0
        completed = 0
        while time.monotonic() < deadline:
            if child.poll() is not None:
                raise SystemExit(
                    "campaign finished before SIGTERM; raise SEEDS"
                )
            try:
                manifest = json.loads(open(checkpoint).read())
                completed = len(
                    manifest["extra"]["checkpoint"]["completed"]
                )
            except (OSError, ValueError, KeyError):
                completed = 0
            if completed >= 5:
                break
            time.sleep(0.01)
        assert completed >= 5, "no checkpoint progress within 120s"
        child.send_signal(signal.SIGTERM)
        child.wait(timeout=30.0)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30.0)

    manifest = json.loads(open(checkpoint).read())
    problems = validate_checkpoint(manifest)
    assert not problems, problems
    done = len(manifest["extra"]["checkpoint"]["completed"])
    assert 0 < done < SEEDS
    print("preempted campaign: %d/%d complete in a valid checkpoint"
          % (done, SEEDS))

    resumed = run_campaign(
        range(SEEDS), config_names=[CONFIG], jobs=1, resume=checkpoint,
    )
    assert resumed.engine.resumed == done, (
        "resume replayed %d of %d checkpointed jobs"
        % (resumed.engine.resumed, done)
    )
    assert resumed.engine.executed == SEEDS - done, (
        "resume re-executed completed jobs: %d executed, expected %d"
        % (resumed.engine.executed, SEEDS - done)
    )
    print("resume:          %s" % resumed.engine.describe())

    reference = run_campaign(range(SEEDS), config_names=[CONFIG], jobs=2)
    corpus = lambda c: sorted(  # noqa: E731
        (r.seed, r.config_name, json.dumps(w.to_dict(), sort_keys=True))
        for r in c.results for w in r.witnesses
    )
    assert corpus(resumed) == corpus(reference), \
        "resumed campaign witness corpus diverged from reference"
    print("kill/resume: witness corpus identical to uninterrupted run "
          "(%d witnesses)" % len(corpus(resumed)))


def main() -> int:
    shutil.rmtree(ARTIFACT_DIR, ignore_errors=True)
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    check_bit_identity()
    check_kill_resume()
    print("scale smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
