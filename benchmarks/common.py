"""Shared helpers for the figure/table regeneration benchmarks.

One SMARTS sweep over the full configuration matrix powers Fig. 7,
Fig. 9a-9d, and Table 2, so it is computed once per session (and served
from the engine's on-disk cache across sessions).  Environment knobs
(for quick runs):

    REPRO_BENCH_BENCHMARKS   comma-separated benchmark names
    REPRO_BENCH_SAMPLES      SMARTS samples per (benchmark, config)
    REPRO_BENCH_MEASURE      measured instructions per sample
    REPRO_BENCH_JOBS         engine worker processes (default: cpu count)
    REPRO_BENCH_CACHE        0 disables the on-disk result cache
    REPRO_FULL_GUESSES       guess-sweep size for the attack figures

Rendered artifacts are printed and also written to ``results/``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from repro.workloads.profiles import DEFAULT_SUITE

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


def bench_benchmarks():
    names = os.environ.get("REPRO_BENCH_BENCHMARKS")
    if names:
        return [n.strip() for n in names.split(",") if n.strip()]
    return list(DEFAULT_SUITE)


def bench_samples() -> int:
    return _env_int("REPRO_BENCH_SAMPLES", 4)


def bench_measure() -> int:
    return _env_int("REPRO_BENCH_MEASURE", 6_000)


def bench_jobs() -> Optional[int]:
    """Engine worker count; None lets the engine use os.cpu_count()."""
    value = _env_int("REPRO_BENCH_JOBS", 0)
    return value if value > 0 else None


def bench_cache() -> bool:
    """Whether the sweep may use the on-disk result cache."""
    return os.environ.get("REPRO_BENCH_CACHE", "1") != "0"


def attack_guess_count() -> int:
    return _env_int("REPRO_FULL_GUESSES", 256)


def publish(name: str, text: str) -> None:
    """Print a rendered artifact and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / ("%s.txt" % name)).write_text(text + "\n")
    print()
    print(text)
