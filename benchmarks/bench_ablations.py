"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not a paper figure: these price the individual NDA mechanisms on micro-
kernels that isolate one behaviour each, and sanity-check the design-space
claims (e.g. Bypass Restriction only costs where store addresses resolve
late; load restriction preserves MLP).
"""

from repro.config import (
    NDAPolicyName,
    baseline_ooo,
    nda_config,
)
from repro.api import simulate
from repro.stats.report import render_table
from repro.workloads.kernels import (
    dependence_chain,
    mispredict_heavy,
    pointer_chase,
    store_load_aliasing,
    streaming,
    wide_alu,
)

from benchmarks.common import publish

KERNELS = [
    ("pointer_chase", lambda: pointer_chase(1_000, 2048)),
    ("streaming", lambda: streaming(1_000)),
    ("dependence_chain", lambda: dependence_chain(1_500)),
    ("wide_alu", lambda: wide_alu(1_500)),
    ("mispredict_heavy", lambda: mispredict_heavy(1_000)),
    ("store_load_aliasing", lambda: store_load_aliasing(800)),
]

CONFIGS = [
    ("OoO", baseline_ooo()),
    ("Permissive", nda_config(NDAPolicyName.PERMISSIVE)),
    ("Permissive+BR", nda_config(NDAPolicyName.PERMISSIVE_BR)),
    ("Strict", nda_config(NDAPolicyName.STRICT)),
    ("Restricted Loads", nda_config(NDAPolicyName.LOAD_RESTRICTION)),
    ("Full Protection", nda_config(NDAPolicyName.FULL_PROTECTION)),
]


def _sweep():
    table = {}
    for kernel_name, make in KERNELS:
        program = make()
        for config_label, config in CONFIGS:
            outcome = simulate(program, config)
            table[(kernel_name, config_label)] = outcome
    return table


def test_ablation_kernels(benchmark):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    headers = ["kernel"] + [label for label, _ in CONFIGS]
    rows = []
    for kernel_name, _ in KERNELS:
        row = [kernel_name]
        base = table[(kernel_name, "OoO")].cpi
        for config_label, _ in CONFIGS:
            cpi = table[(kernel_name, config_label)].cpi
            row.append("%.2f (%+.0f%%)" % (cpi, (cpi / base - 1) * 100))
        rows.append(row)
    publish(
        "ablations",
        render_table(headers, rows,
                     title="Ablations: kernel CPI per NDA mechanism"),
    )

    # Bypass Restriction only matters when loads bypass unresolved stores.
    alias_perm = table[("store_load_aliasing", "Permissive")].cpi
    alias_br = table[("store_load_aliasing", "Permissive+BR")].cpi
    stream_perm = table[("streaming", "Permissive")].cpi
    stream_br = table[("streaming", "Permissive+BR")].cpi
    assert alias_br >= alias_perm
    assert abs(stream_br - stream_perm) / stream_perm < 0.05

    # Load restriction preserves MLP on independent streams.
    stream_loadr = table[("streaming", "Restricted Loads")]
    assert stream_loadr.stats.mlp > 1.5

    # Strict propagation prices branch-shadow scheduling, so the
    # mispredict-heavy kernel suffers more than the branch-free chain.
    chain_ratio = (
        table[("dependence_chain", "Strict")].cpi
        / table[("dependence_chain", "OoO")].cpi
    )
    branchy_ratio = (
        table[("mispredict_heavy", "Strict")].cpi
        / table[("mispredict_heavy", "OoO")].cpi
    )
    assert branchy_ratio >= chain_ratio
