"""Figure 4: Spectre v1 guess timings over both covert channels (insecure).

Runs the full guess sweep on the unprotected OoO baseline.  The paper's
plot shows one low outlier at the secret byte for each channel: ~140 cycles
below the plateau for the cache, ~16 cycles for the BTB.
"""

from repro.harness.figures import figure4, render_figure4
from repro.stats.report import render_series

from benchmarks.common import attack_guess_count, publish


def test_figure4_insecure_baseline(benchmark):
    guesses = sorted(set(range(0, 256, 256 // attack_guess_count() or 1))
                     | {42})

    data = benchmark.pedantic(
        lambda: figure4(secret=42, guesses=guesses),
        rounds=1, iterations=1,
    )
    text = render_figure4(data)
    for channel in ("cache", "btb"):
        outcome = data[channel]
        text += "\n\n" + render_series(
            "Figure 4 series (%s channel)" % channel,
            outcome.guesses, outcome.timings,
            x_label="guess", y_label="cycles",
        )
    publish("figure4", text)

    cache, btb = data["cache"], data["btb"]
    assert cache.leaked and cache.recovered == 42
    assert btb.leaked and btb.recovered == 42
    # Channel magnitudes: cache delta ~ DRAM latency, BTB ~ squash penalty.
    assert cache.margin > 80
    assert 5 <= btb.margin <= 60
