"""Figure 8: the Fig. 4 attacks repeated under NDA permissive propagation.

The cycle differences of Fig. 4 must disappear: the correct secret byte is
indistinguishable from every other candidate on both channels.
"""

from repro.harness.figures import figure8, render_figure8
from repro.stats.report import render_series

from benchmarks.common import attack_guess_count, publish


def test_figure8_nda_blocks_both_channels(benchmark):
    guesses = sorted(set(range(0, 256, 256 // attack_guess_count() or 1))
                     | {42})

    data = benchmark.pedantic(
        lambda: figure8(secret=42, guesses=guesses),
        rounds=1, iterations=1,
    )
    text = render_figure8(data)
    for channel in ("cache", "btb"):
        outcome = data[channel]
        text += "\n\n" + render_series(
            "Figure 8 series (%s channel, NDA permissive)" % channel,
            outcome.guesses, outcome.timings,
            x_label="guess", y_label="cycles",
        )
    publish("figure8", text)

    assert not data["cache"].leaked
    assert not data["btb"].leaked
    # Flat series: the secret's timing equals the modal timing.
    for outcome in data.values():
        timings = sorted(outcome.timings)
        median = timings[len(timings) // 2]
        assert abs(outcome.timing_of(42) - median) <= 5
