"""Setup shim: lets ``pip install -e .`` work without the ``wheel`` package
(this environment is offline).  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
