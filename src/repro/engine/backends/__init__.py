"""``repro.engine.backends``: pluggable job placement.

Three built-ins, selected by name (``run_jobs(..., backend="...")`` or
CLI ``--backend``):

======================  =================================================
``serial``              every job in the driver process, in order — the
                        bit-identity reference and universal fallback
``local-pool``          fork-based ``ProcessPoolExecutor`` on this host
                        (the historical default for ``--jobs > 1``)
``worker-protocol``     pull-based socket workers, local or remote
                        (``nda-repro worker --connect HOST:PORT``)
======================  =================================================

All three produce bit-identical windows for the same job set (pinned by
``tests/golden/backend_equivalence.json``); they differ only in where
and how concurrently the deterministic jobs execute.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.engine.backends.base import BackendContext, ExecutionBackend
from repro.engine.backends.local_pool import LocalPoolBackend
from repro.engine.backends.serial import SerialBackend
from repro.engine.backends.worker_protocol import (
    WorkerProtocolBackend,
    worker_main,
)

#: name -> backend class; third parties may register via this dict.
BACKENDS: Dict[str, Type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    LocalPoolBackend.name: LocalPoolBackend,
    WorkerProtocolBackend.name: WorkerProtocolBackend,
}


def available_backends() -> List[str]:
    return sorted(BACKENDS)


def make_backend(name: str, **options) -> ExecutionBackend:
    """Instantiate a backend by registry name."""
    try:
        backend_cls = BACKENDS[name]
    except KeyError:
        raise ValueError(
            "unknown backend %r (available: %s)"
            % (name, ", ".join(available_backends()))
        ) from None
    return backend_cls(**options)


__all__ = [
    "BACKENDS",
    "BackendContext",
    "ExecutionBackend",
    "LocalPoolBackend",
    "SerialBackend",
    "WorkerProtocolBackend",
    "available_backends",
    "make_backend",
    "worker_main",
]
