"""The ExecutionBackend interface: *where* the engine's jobs run.

``run_jobs`` (the driver) owns all policy that is independent of
placement — cache/resume phases, result ordering, checkpointing,
accounting — and hands the remaining pending jobs to one backend.  The
backend's whole contract is :meth:`ExecutionBackend.run`: execute every
``(index, job)`` pair it was given and report each one exactly once
through the :class:`BackendContext` callbacks.

The callbacks are thread-safe (the driver serializes them behind one
lock and drops duplicate completions), so a backend may call them from
handler threads — the worker-protocol coordinator does.  Because every
job derives its results purely from its own fields, any backend that
faithfully runs ``execute_job(job)`` somewhere produces bit-identical
windows; the golden test ``tests/golden/backend_equivalence.json`` pins
that across all three built-ins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.engine.jobs import JobResult


@dataclass
class BackendContext:
    """What the driver lends a backend for one ``run_jobs`` call.

    ``finish``/``fail``/``run_serially`` are the driver's accounting
    entry points (thread-safe, duplicate-tolerant):

    * ``finish(index, result)`` — a job completed with *result*.
    * ``fail(job, index, error)`` — a job failed terminally (after the
      backend exhausted its own retries).
    * ``run_serially(index, job, retried)`` — execute the job in the
      driver's process right now; counts a retry when ``retried``.  This
      is the shared degrade/retry path every backend funnels into.
    * ``mark_submitted(index)`` — timestamp a job's hand-off for the
      engine trace (call just before shipping it to a worker).
    """

    stats: object  # EngineStats (duck-typed to avoid a scheduler import)
    finish: Callable[[int, JobResult], None]
    fail: Callable[[object, int, BaseException], None]
    run_serially: Callable[[int, object, bool], None]
    mark_submitted: Callable[[int], None] = lambda index: None
    #: Effective worker count the driver resolved (pool size).
    workers: int = 1
    #: The raw ``--jobs`` request, before fork-availability clamping —
    #: backends that spawn fresh interpreters (worker-protocol) honor
    #: this even on platforms where ``fork`` is unavailable.
    requested_jobs: Optional[int] = None
    #: Test seam for the local pool (ProcessPoolExecutor-compatible).
    executor_factory: Optional[Callable] = None
    #: Traceparent of the driver's ``engine.run`` span (``None`` when
    #: tracing is detached).  Backends that cross a process boundary
    #: forward it — the worker protocol puts it in every job frame so
    #: remote workers parent their spans under the submitting trace.
    traceparent: Optional[str] = None


class ExecutionBackend:
    """Base class: executes pending jobs, reports through the context."""

    #: Registry name (also the ``EngineStats.backend`` label).
    name = "abstract"

    def run(
        self,
        pending: List[Tuple[int, object]],
        ctx: BackendContext,
    ) -> None:
        """Execute every pending ``(index, job)``; report each exactly once."""
        raise NotImplementedError

    def describe(self) -> str:
        return self.name
