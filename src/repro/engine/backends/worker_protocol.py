"""The worker-protocol backend: pull-based workers over stdlib sockets.

Placement for runs bigger than one host.  The coordinator (running
inside ``run_jobs`` in the driver process) listens on a TCP port and
*leases* jobs to whichever workers connect; each worker is a plain
process — spawned locally by the backend, or started anywhere that can
reach the port via ``nda-repro worker --connect HOST:PORT`` — running a
pull loop:

    connect → hello → { ready → lease → execute → result } * → shutdown

Messages are pickled dicts framed by a 4-byte big-endian length.  The
protocol is *pull*-based: a worker asks (``ready``) when it has a free
slot, so fast hosts naturally take more jobs and a stalled host takes
none.  Every lease carries a deadline; the coordinator's supervision
loop re-queues jobs whose lease expired or whose worker disconnected
(``LEASE_RETRY`` — two re-queues, then the coordinator runs the job
serially itself).  A job that *raises* on a worker gets the engine's
historical one-serial-retry in the driver, exactly like a pool-worker
crash.  If no worker ever connects the backend degrades to serial
rather than hanging the sweep.

Jobs are deterministic, so duplicated execution after a lease expiry is
harmless: the driver's accounting drops the second completion, and both
copies computed the same window anyway.

Security: frames are unpickled by both ends, so only run the protocol
between mutually-trusted hosts on a trusted network (same assumption as
``ssh``-reachable lab machines; the job server's authenticated HTTP
routes are the hardened surface).
"""

from __future__ import annotations

import os
import pickle
import queue
import socket
import struct
import subprocess
import sys
import threading
import time
from typing import List, Optional, Tuple

from repro.engine.backends.base import BackendContext, ExecutionBackend
from repro.engine.jobs import execute_job
from repro.engine.retry import LEASE_RETRY, RetryPolicy
from repro.obs.log import get_logger
from repro.obs.spans import maybe_tracer, parse_traceparent

_FRAME = struct.Struct(">I")

#: Refuse absurd frames (a stray HTTP client, a corrupted peer) before
#: allocating for them.  Real frames are a few KB.
MAX_FRAME = 64 * 1024 * 1024


def send_msg(sock: socket.socket, msg: dict) -> None:
    """Write one length-prefixed pickled message."""
    blob = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_FRAME.pack(len(blob)) + blob)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks = []
    while count:
        chunk = sock.recv(count)
        if not chunk:
            return None  # orderly EOF
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> Optional[dict]:
    """Read one message; None on EOF or an unframeable stream."""
    header = _recv_exact(sock, _FRAME.size)
    if header is None:
        return None
    (length,) = _FRAME.unpack(header)
    if length > MAX_FRAME:
        return None
    blob = _recv_exact(sock, length)
    if blob is None:
        return None
    try:
        msg = pickle.loads(blob)
    except Exception:
        return None
    return msg if isinstance(msg, dict) else None


class WorkerProtocolBackend(ExecutionBackend):
    """Coordinator side: lease jobs to pull-based socket workers.

    ``processes`` local workers are spawned as fresh interpreters by
    default (``spawn=True``); with ``spawn=False`` the coordinator only
    listens and waits for external ``nda-repro worker --connect``
    processes (up to ``connect_timeout`` seconds before degrading to
    serial).  ``host``/``port`` pick the bind address — ``port=0`` lets
    the OS choose and exposes the result as ``self.address``.
    """

    name = "worker-protocol"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        processes: Optional[int] = None,
        spawn: bool = True,
        lease_timeout: float = 60.0,
        connect_timeout: float = 15.0,
        retry: RetryPolicy = LEASE_RETRY,
        poll_interval: float = 0.05,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.processes_requested = processes
        self.spawn = bool(spawn)
        self.lease_timeout = float(lease_timeout)
        self.connect_timeout = float(connect_timeout)
        self.retry = retry
        self.poll_interval = float(poll_interval)
        #: (host, port) actually bound, available once ``run`` starts.
        self.address: Optional[Tuple[str, int]] = None
        #: Spawned local worker processes (tests SIGTERM these).
        self.processes: List[subprocess.Popen] = []
        self._lock = threading.Lock()
        self._queue: "queue.Queue" = queue.Queue()
        self._open: set = set()
        self._leases: dict = {}  # index -> (job, attempts, deadline)
        self._serial_retries: List[Tuple[int, object]] = []
        self._ever_connected = False
        self._live_conns = 0
        self._peak_conns = 0
        self._closing = threading.Event()

    def describe(self) -> str:
        return "%s @ %s:%d" % (self.name, self.host, self.port)

    # ------------------------------------------------------------------ #
    # Coordinator.
    # ------------------------------------------------------------------ #

    def run(
        self,
        pending: List[Tuple[int, object]],
        ctx: BackendContext,
    ) -> None:
        if not pending:
            return
        self._ctx = ctx
        self._open = {index for index, _job in pending}
        for index, job in pending:
            self._queue.put((index, job, 0))

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        listener.settimeout(self.poll_interval)
        self.address = (self.host, listener.getsockname()[1])

        workers = self._worker_count(ctx, len(pending))
        if self.spawn:
            self._spawn_workers(workers)
        ctx.stats.workers = max(1, workers)

        accept_thread = threading.Thread(
            target=self._accept_loop, args=(listener,), daemon=True,
            name="repro-wp-accept",
        )
        accept_thread.start()
        try:
            self._supervise(ctx)
        finally:
            self._closing.set()
            try:
                listener.close()
            except OSError:
                pass
            self._reap_processes()
            accept_thread.join(timeout=2.0)
        with self._lock:
            if self._ever_connected:
                ctx.stats.workers = max(1, self._peak_conns)

    def _worker_count(self, ctx: BackendContext, pending: int) -> int:
        if self.processes_requested is not None:
            requested = self.processes_requested
        elif ctx.requested_jobs is not None:
            requested = ctx.requested_jobs
        else:
            requested = os.cpu_count() or 1
        return max(1, min(int(requested), pending))

    def _spawn_workers(self, count: int) -> None:
        """Launch *count* local workers as fresh interpreters.

        Fresh interpreters (not forks) deliberately: a spawned worker
        exercises the same import-from-scratch path a remote
        ``nda-repro worker`` does, so local smoke runs validate the
        remote deployment story.
        """
        import repro

        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            package_root + os.pathsep + existing if existing
            else package_root
        )
        address = "%s:%d" % self.address
        for _ in range(count):
            try:
                self.processes.append(subprocess.Popen(
                    [sys.executable, "-m",
                     "repro.engine.backends.worker_protocol",
                     "--connect", address],
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                ))
            except OSError:
                break  # degrade path picks up whatever failed to spawn

    def _reap_processes(self) -> None:
        for process in self.processes:
            if process.poll() is None:
                try:
                    process.terminate()
                except OSError:
                    pass
        for process in self.processes:
            try:
                process.wait(timeout=5.0)
            except (OSError, subprocess.TimeoutExpired):
                try:
                    process.kill()
                except OSError:
                    pass

    def _accept_loop(self, listener: socket.socket) -> None:
        while not self._closing.is_set():
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                self._ever_connected = True
                self._live_conns += 1
                self._peak_conns = max(self._peak_conns, self._live_conns)
            threading.Thread(
                target=self._handle_worker, args=(conn,), daemon=True,
                name="repro-wp-worker",
            ).start()

    def _handle_worker(self, conn: socket.socket) -> None:
        """One connected worker: serve its pull loop until it leaves."""
        leased: Optional[Tuple[int, object, int]] = None
        tracer = maybe_tracer()
        worker_tag = "?"
        try:
            hello = recv_msg(conn)
            if not hello or hello.get("type") != "hello":
                return
            worker_tag = "%s:%s" % (
                hello.get("host", "?"), hello.get("pid", "?"),
            )
            while not self._closing.is_set():
                msg = recv_msg(conn)
                if msg is None or msg.get("type") == "bye":
                    return
                if msg.get("type") != "ready":
                    continue
                item = self._next_lease()
                if item is None:
                    try:
                        send_msg(conn, {"type": "shutdown"})
                    except OSError:
                        pass
                    return
                index, job, attempts = item
                leased = item
                lease_start = time.time()
                try:
                    send_msg(conn, {"type": "job", "index": index,
                                    "job": job,
                                    "traceparent": self._ctx.traceparent})
                    reply = recv_msg(conn)
                except OSError:
                    reply = None
                if reply is None:
                    # Connection died with the job out: put it back.
                    self._lease_span(
                        tracer, lease_start, index, attempts,
                        worker_tag, "lost",
                    )
                    self._requeue(index, job, attempts)
                    leased = None
                    return
                leased = None
                kind = reply.get("type")
                if kind == "result":
                    self._lease_span(
                        tracer, lease_start, index, attempts,
                        worker_tag, "ok",
                    )
                    self._complete(index, reply.get("result"))
                elif kind == "error":
                    # The job raised on the worker: the engine's
                    # historical rule is one serial retry in the driver.
                    self._lease_span(
                        tracer, lease_start, index, attempts,
                        worker_tag, "error",
                    )
                    self._to_serial(index, job)
                else:
                    self._lease_span(
                        tracer, lease_start, index, attempts,
                        worker_tag, "requeued",
                    )
                    self._requeue(index, job, attempts)
        finally:
            if leased is not None:
                self._requeue(leased[0], leased[1], leased[2])
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                self._live_conns -= 1

    def _lease_span(
        self,
        tracer,
        start: float,
        index: int,
        attempts: int,
        worker_tag: str,
        status: str,
    ) -> None:
        """Retroactive span for one lease round-trip (no-op detached)."""
        if tracer is None:
            return
        tracer.record(
            "lease", start, time.time(),
            parent=self._ctx.traceparent,
            status="ok" if status == "ok" else status,
            attrs={"index": index, "attempts": attempts,
                   "worker": worker_tag},
        )

    def _next_lease(self) -> Optional[Tuple[int, object, int]]:
        """Pop the next job still worth running, registering its lease."""
        while not self._closing.is_set():
            try:
                index, job, attempts = self._queue.get(
                    timeout=self.poll_interval
                )
            except queue.Empty:
                with self._lock:
                    if not self._open:
                        return None
                continue
            with self._lock:
                if index not in self._open:
                    continue  # completed elsewhere while queued
                self._leases[index] = (
                    job, attempts,
                    time.monotonic() + self.lease_timeout,
                )
                self._ctx.stats.leases += 1
            return index, job, attempts
        return None

    def _requeue(self, index: int, job: object, attempts: int) -> None:
        """A lease was lost (expiry, disconnect, bad reply): try again."""
        with self._lock:
            self._leases.pop(index, None)
            if index not in self._open:
                return
            attempts += 1
            self._ctx.stats.lease_requeues += 1
            exhausted = self.retry.exhausted(attempts)
        if exhausted:
            self._to_serial(index, job)
        else:
            self._queue.put((index, job, attempts))

    def _to_serial(self, index: int, job: object) -> None:
        """Hand a job to the supervision loop for in-driver execution."""
        with self._lock:
            self._leases.pop(index, None)
            if index not in self._open:
                return
            self._serial_retries.append((index, job))

    def _complete(self, index: int, result) -> None:
        with self._lock:
            self._leases.pop(index, None)
            if index not in self._open or result is None:
                return  # duplicate (post-expiry) completion: drop
            self._open.discard(index)
        self._ctx.finish(index, result)

    def _supervise(self, ctx: BackendContext) -> None:
        """Main-thread loop: expire leases, run serial retries, degrade."""
        started = time.monotonic()
        while True:
            with self._lock:
                if not self._open:
                    return
                now = time.monotonic()
                expired = [
                    (index, job, attempts)
                    for index, (job, attempts, deadline)
                    in self._leases.items()
                    if deadline <= now
                ]
                retries = list(self._serial_retries)
                del self._serial_retries[:]
                idle = (
                    self._live_conns == 0 and not self._leases
                    and not retries
                )
                never_connected = not self._ever_connected
            for index, job, attempts in expired:
                self._requeue(index, job, attempts)
            for index, job in retries:
                ctx.run_serially(index, job, True)
                with self._lock:
                    self._open.discard(index)
            if idle and self._should_degrade(never_connected, started):
                self._degrade(ctx)
                return
            time.sleep(self.poll_interval)

    def _should_degrade(self, never_connected: bool, started: float) -> bool:
        """No worker will make progress: give up on the socket path."""
        spawned_alive = any(p.poll() is None for p in self.processes)
        if never_connected:
            if self.spawn and not spawned_alive:
                return True  # spawn failed outright
            return time.monotonic() - started > self.connect_timeout
        # Workers came and went; none left, none coming back.
        return not spawned_alive

    def _degrade(self, ctx: BackendContext) -> None:
        """Run everything still open serially in the driver."""
        get_logger("coordinator").warning(
            "backend.degrade", backend=self.name,
            address="%s:%d" % self.address if self.address else None,
        )
        ctx.stats.degraded = True
        self._closing.set()
        while True:
            try:
                index, job, _attempts = self._queue.get_nowait()
            except queue.Empty:
                break
            with self._lock:
                if index not in self._open:
                    continue
            ctx.run_serially(index, job, True)
            with self._lock:
                self._open.discard(index)
        with self._lock:
            leftovers = [
                (index, job)
                for index, (job, _a, _d) in self._leases.items()
                if index in self._open
            ]
            self._leases.clear()
        for index, job in leftovers:
            ctx.run_serially(index, job, True)
            with self._lock:
                self._open.discard(index)


# ---------------------------------------------------------------------- #
# Worker side.
# ---------------------------------------------------------------------- #


def parse_address(address: str) -> Tuple[str, int]:
    """``HOST:PORT`` → tuple (the CLI and spawn path both use this)."""
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(
            "worker address must be HOST:PORT, got %r" % (address,)
        )
    return host, int(port)


def _worker_loop(host: str, port: int, timeout: float = 30.0) -> int:
    """One pull-execute-return loop against a coordinator."""
    log = get_logger("worker")
    tracer = maybe_tracer("worker")
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError:
        log.error("worker.connect_failed", address="%s:%d" % (host, port))
        return 1
    sock.settimeout(None)  # job lengths are unbounded; block freely
    log.info("worker.connected", address="%s:%d" % (host, port),
             pid=os.getpid())
    try:
        send_msg(sock, {
            "type": "hello",
            "pid": os.getpid(),
            "host": socket.gethostname(),
        })
        while True:
            send_msg(sock, {"type": "ready"})
            msg = recv_msg(sock)
            if msg is None or msg.get("type") == "shutdown":
                log.info("worker.shutdown", pid=os.getpid())
                return 0
            if msg.get("type") != "job":
                continue
            index = msg.get("index")
            # The traceparent rode the job frame across the socket: this
            # worker's execute span joins the submitting client's trace.
            parent = parse_traceparent(msg.get("traceparent"))
            span = None
            if tracer is not None:
                span = tracer.start_span(
                    "worker.execute", parent=parent,
                    attrs={"index": index,
                           "job": _describe_job(msg.get("job"))},
                )
            try:
                result = execute_job(msg["job"])
            except BaseException as error:
                if span is not None:
                    span.attrs["error"] = repr(error)
                    span.end(status="error")
                log.error(
                    "worker.job_failed", index=index, error=repr(error),
                    trace_id=parent.trace_id if parent else None,
                )
                send_msg(sock, {
                    "type": "error", "index": index, "error": repr(error),
                })
            else:
                if span is not None:
                    span.end()
                log.info(
                    "worker.job_done", index=index,
                    elapsed=round(result.elapsed, 4),
                    trace_id=parent.trace_id if parent else None,
                )
                send_msg(sock, {
                    "type": "result", "index": index, "result": result,
                })
    except OSError:
        log.error("worker.connection_lost", pid=os.getpid())
        return 1
    finally:
        try:
            sock.close()
        except OSError:
            pass


def _describe_job(job) -> str:
    describe = getattr(job, "describe", None)
    if callable(describe):
        try:
            return describe()
        except Exception:
            pass
    return type(job).__name__


def worker_main(
    connect: str,
    processes: int = 1,
    timeout: float = 30.0,
) -> int:
    """Entry point for ``nda-repro worker``: serve one coordinator.

    Runs ``processes`` independent pull loops (separate OS processes so
    simulations truly run in parallel) against ``HOST:PORT`` and exits
    when the coordinator shuts the session down.
    """
    host, port = parse_address(connect)
    processes = max(1, int(processes))
    if processes == 1:
        return _worker_loop(host, port, timeout=timeout)
    import multiprocessing

    children = [
        multiprocessing.Process(
            target=_worker_loop, args=(host, port, timeout), daemon=False,
        )
        for _ in range(processes)
    ]
    for child in children:
        child.start()
    status = 0
    for child in children:
        child.join()
        if child.exitcode:
            status = 1
    return status


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="repro worker: pull jobs from a coordinator",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address to pull jobs from",
    )
    parser.add_argument(
        "--processes", type=int, default=1,
        help="parallel pull loops to run (default 1)",
    )
    args = parser.parse_args(argv)
    return worker_main(args.connect, processes=args.processes)


if __name__ == "__main__":
    sys.exit(main())
