"""The local-pool backend: a fork-based ``ProcessPoolExecutor``.

This is PR 1's scheduler body extracted verbatim — same pool sizing,
same ``FIRST_COMPLETED`` collection loop, same retry-then-serial rule
for a job that dies in a worker, same degrade-everything-to-serial when
the pool itself breaks.  Extraction changed *where* the code lives, not
what it does: results stay bit-identical with the serial backend (the
jobs are deterministic; only placement moved).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import List, Tuple

from repro.engine.backends.base import BackendContext, ExecutionBackend
from repro.engine.jobs import execute_job


class LocalPoolBackend(ExecutionBackend):
    """Fan jobs over ``ctx.workers`` forked processes on this host."""

    name = "local-pool"

    def run(
        self,
        pending: List[Tuple[int, object]],
        ctx: BackendContext,
    ) -> None:
        if ctx.workers <= 1 or not pending:
            for index, job in pending:
                ctx.run_serially(index, job, False)
            return
        factory = ctx.executor_factory or ProcessPoolExecutor
        remaining = list(pending)
        try:
            context = multiprocessing.get_context("fork")
            with factory(
                max_workers=ctx.workers, mp_context=context
            ) as pool:
                future_to_job = {}
                for index, job in pending:
                    ctx.mark_submitted(index)
                    future_to_job[pool.submit(execute_job, job)] = (
                        index, job
                    )
                not_done = set(future_to_job)
                while not_done:
                    finished, not_done = wait(
                        not_done, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        index, job = future_to_job[future]
                        remaining.remove((index, job))
                        error = future.exception()
                        if error is not None:
                            # Worker died or the job raised: one serial
                            # retry in the parent, then give up on it.
                            ctx.run_serially(index, job, True)
                        else:
                            ctx.finish(index, future.result())
        except BaseException:
            # The pool itself broke (fork refused, transport error,
            # keyboard interrupt inside shutdown...): degrade to serial
            # for everything still unaccounted for.
            ctx.stats.degraded = True
            for index, job in list(remaining):
                ctx.run_serially(index, job, True)
