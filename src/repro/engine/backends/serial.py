"""The serial backend: every job in the driver's own process, in order.

This is the reference executor the other backends must match bit for
bit: no pools, no sockets, no nondeterminism — just ``execute_job`` in
submission order.  It is also the engine's universal fallback: platforms
without ``fork``, ``--jobs 1``, and the degrade target when a fancier
backend breaks.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.engine.backends.base import BackendContext, ExecutionBackend


class SerialBackend(ExecutionBackend):
    """Run jobs one after another in the current process."""

    name = "serial"

    def run(
        self,
        pending: List[Tuple[int, object]],
        ctx: BackendContext,
    ) -> None:
        for index, job in pending:
            ctx.run_serially(index, job, False)
