"""Job driver: cache, checkpoint, and account; backends place the work.

``run_jobs`` owns everything about a sweep that does *not* depend on
where jobs execute:

* **resume** (phase 0) — completed results replayed out of a checkpoint
  manifest (``resume=``) never execute again;
* **cache** (phase 1) — jobs whose window the result store already holds
  are served from it;
* **placement** (phase 2) — the remainder goes to one
  :class:`~repro.engine.backends.ExecutionBackend` (``backend=`` by name
  or instance; default: ``local-pool`` when more than one worker
  resolves, else ``serial``);
* **accounting** — results return in submission order regardless of
  completion order, failures are collected rather than raised, stats
  cover cache/resume/retry/lease behavior;
* **checkpointing** — with ``checkpoint=<path>`` the driver rewrites a
  resumable manifest every ``checkpoint_interval`` completions (and at
  the end), so a SIGTERM'd campaign restarts from where it died.

The driver's completion callbacks are serialized behind one lock and
drop duplicate completions (a worker whose lease expired may still
report), so backends are free to call them from handler threads.  The
historical failure contract is unchanged: a job that dies on a worker is
retried once serially in the driver; a job that also fails serially
becomes a :class:`JobFailure`.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.backends import (
    BackendContext,
    ExecutionBackend,
    LocalPoolBackend,
    SerialBackend,
    make_backend,
)
from repro.engine.jobs import JobResult, SimJob, execute_job
from repro.engine.store import ResultStore
from repro.obs.spans import maybe_tracer

#: progress callback: (jobs finished so far, total jobs, latest result).
ProgressFn = Callable[[int, int, JobResult], None]


@dataclass
class JobFailure:
    """One job that failed both in a worker and on the serial retry."""

    job: SimJob
    error: str


@dataclass
class EngineStats:
    """Accounting for one engine run (exposed as ``SuiteResult.engine``)."""

    jobs: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    stores: int = 0
    retries: int = 0
    failures: int = 0
    workers: int = 1
    degraded: bool = False
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    job_seconds: Dict[Tuple[str, str, int], float] = field(
        default_factory=dict
    )
    # Per-job spans (submit/start/end on perf_counter's clock) gathered
    # only when run_jobs(collect_trace=True); feeds the Perfetto export
    # (repro.obs.perfetto.engine_trace_events).
    job_trace: List[dict] = field(default_factory=list)
    #: Which execution backend placed the work (stats label).
    backend: str = "serial"
    #: Results replayed from a checkpoint manifest (--resume).
    resumed: int = 0
    #: Worker-protocol lease grants / re-queues (0 on other backends).
    leases: int = 0
    lease_requeues: int = 0

    def describe(self) -> str:
        parts = [
            "%d jobs" % self.jobs,
            "%d executed" % self.executed,
            "%d cache hits" % self.cache_hits,
            "%d workers" % self.workers,
            "%.2fs wall" % self.wall_seconds,
        ]
        if self.backend != "local-pool" and self.workers > 1:
            parts.insert(4, "via %s" % self.backend)
        if self.resumed:
            parts.append("%d resumed" % self.resumed)
        if self.retries:
            parts.append("%d retried" % self.retries)
        if self.lease_requeues:
            parts.append("%d leases requeued" % self.lease_requeues)
        if self.failures:
            parts.append("%d FAILED" % self.failures)
        if self.degraded:
            parts.append("degraded to serial")
        return ", ".join(parts)


def resolve_workers(jobs: Optional[int], pending: int) -> int:
    """Effective worker count: explicit > cpu_count, capped by work."""
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, int(jobs))
    if jobs > 1 and "fork" not in multiprocessing.get_all_start_methods():
        # No fork (e.g. some embedded interpreters): deterministic serial
        # fallback rather than paying spawn's re-import cost per worker.
        jobs = 1
    return max(1, min(jobs, pending))


def run_jobs(
    jobs_list: Sequence[SimJob],
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultStore] = None,
    progress: Optional[ProgressFn] = None,
    executor_factory: Optional[Callable[..., ProcessPoolExecutor]] = None,
    collect_trace: bool = False,
    backend: Optional[Union[str, ExecutionBackend]] = None,
    backend_options: Optional[dict] = None,
    checkpoint: Optional[str] = None,
    checkpoint_interval: int = 25,
    checkpoint_label: str = "engine",
    resume: Optional[Union[str, dict]] = None,
) -> Tuple[List[JobResult], List[JobFailure], EngineStats]:
    """Execute every job; returns (results, failures, stats).

    ``results`` preserves the order of ``jobs_list`` (failed jobs are
    omitted and listed in ``failures`` instead).  ``collect_trace``
    records a per-job span table into ``stats.job_trace``.  ``backend``
    selects placement (see :mod:`repro.engine.backends`); ``checkpoint``
    keeps a resumable manifest at that path, and ``resume`` replays one.
    """
    start_wall = time.perf_counter()
    stats = EngineStats(jobs=len(jobs_list))
    # Distributed tracing (no-op when detached): one engine.run span for
    # the whole call, retroactive per-job queue/execute/cache-hit spans
    # from the same timestamps the job trace uses.  perf_counter times
    # convert to unix through one offset captured here.
    tracer = maybe_tracer()
    run_span = None
    unix_offset = 0.0
    if tracer is not None:
        unix_offset = time.time() - time.perf_counter()
        run_span = tracer.start_span(
            "engine.run", attrs={"jobs": len(jobs_list)},
        )
    slots: List[Optional[JobResult]] = [None] * len(jobs_list)
    failures: List[JobFailure] = []
    done_count = 0
    submit_times: Dict[int, float] = {}
    lock = threading.RLock()
    accounted: set = set()

    # Job keys are only needed by the checkpoint layer; hashing every
    # job is wasted work for plain runs.
    keys: Optional[List[str]] = None
    if checkpoint is not None or resume is not None:
        from repro.engine import checkpoint as ckpt

        keys = [ckpt.job_key(job) for job in jobs_list]
    since_checkpoint = 0

    def maybe_checkpoint(force: bool = False) -> None:
        # Caller holds `lock`.
        nonlocal since_checkpoint
        if checkpoint is None:
            return
        since_checkpoint += 1
        if not force and since_checkpoint < max(1, checkpoint_interval):
            return
        since_checkpoint = 0
        manifest = ckpt.build_checkpoint(
            jobs_list, keys, slots,
            label=checkpoint_label, backend=stats.backend,
            failures=failures,
        )
        try:
            ckpt.write_checkpoint(checkpoint, manifest)
        except OSError:
            pass  # checkpointing must never kill the run it protects

    def finish(index: int, result: JobResult) -> None:
        nonlocal done_count
        with lock:
            if index in accounted:
                return  # duplicate completion (e.g. expired lease): drop
            accounted.add(index)
            slots[index] = result
            done_count += 1
            stats.sim_seconds += result.elapsed
            stats.job_seconds[result.job.coordinates] = result.elapsed
            if collect_trace:
                now = time.perf_counter()
                submit = submit_times.get(index, start_wall)
                stats.job_trace.append({
                    "name": result.job.describe(),
                    "submit": submit,
                    "start": result.t_start or submit,
                    "end": result.t_end or now,
                    "from_cache": result.from_cache,
                    "retried": result.retried,
                })
            if tracer is not None:
                now = time.perf_counter()
                submit = submit_times.get(index, start_wall) + unix_offset
                t_start = (result.t_start or 0) + unix_offset \
                    if result.t_start else submit
                t_end = (result.t_end or 0) + unix_offset \
                    if result.t_end else now + unix_offset
                attrs = {"job": result.job.describe()}
                if result.from_cache:
                    tracer.record(
                        "engine.cache.hit", t_end, t_end,
                        parent=run_span, attrs=attrs,
                    )
                else:
                    if result.retried:
                        attrs["retried"] = True
                    if result.resumed:
                        attrs["resumed"] = True
                    elif t_start > submit:
                        tracer.record(
                            "engine.queue", submit, t_start,
                            parent=run_span, attrs=attrs,
                        )
                    tracer.record(
                        "engine.execute", t_start, t_end,
                        parent=run_span, attrs=attrs,
                    )
            if result.resumed:
                stats.resumed += 1
            elif not result.from_cache:
                stats.executed += 1
                if cache is not None:
                    cache.store(result.job, result.window)
            maybe_checkpoint()
            if progress is not None:
                progress(done_count, len(jobs_list), result)

    def fail(job: SimJob, index: int, error: BaseException) -> None:
        nonlocal done_count
        with lock:
            if index in accounted:
                return
            accounted.add(index)
            done_count += 1
            failures.append(JobFailure(job=job, error=repr(error)))
            stats.failures += 1
            if tracer is not None:
                now_unix = time.time()
                submit = submit_times.get(index, start_wall) + unix_offset
                tracer.record(
                    "engine.execute", min(submit, now_unix), now_unix,
                    parent=run_span, status="error",
                    attrs={"job": job.describe(), "error": repr(error)},
                )
            maybe_checkpoint()
            if progress is not None:
                progress(done_count, len(jobs_list), None)

    def mark_submitted(index: int) -> None:
        with lock:
            submit_times[index] = time.perf_counter()

    def run_serially(index: int, job: SimJob, retried: bool) -> None:
        if retried:
            with lock:
                stats.retries += 1
        mark_submitted(index)
        try:
            result = execute_job(job)
        except BaseException as error:  # deterministic job failure
            fail(job, index, error)
            return
        result.retried = retried
        finish(index, result)

    # Phase 0: replay completed results out of a checkpoint manifest.
    todo: List[Tuple[int, SimJob]] = list(enumerate(jobs_list))
    if resume is not None:
        completed = ckpt.load_checkpoint(resume)
        still_todo = []
        for index, job in todo:
            entry = completed.get(keys[index])
            replay = ckpt.decode_result(job, entry) \
                if entry is not None else None
            if replay is not None:
                finish(index, replay)
            else:
                still_todo.append((index, job))
        todo = still_todo

    # Phase 1: serve whatever the result store already has.
    pending: List[Tuple[int, SimJob]] = []
    for index, job in todo:
        window = cache.load(job) if cache is not None else None
        if window is not None:
            finish(index, JobResult(job=job, window=window, from_cache=True))
        else:
            pending.append((index, job))
    if cache is not None:
        stats.cache_hits = cache.stats.hits
        stats.cache_misses = cache.stats.misses

    # Phase 2: hand the misses to an execution backend.
    workers = resolve_workers(jobs, len(pending))
    if backend is None:
        backend_obj: ExecutionBackend = (
            LocalPoolBackend() if workers > 1 else SerialBackend()
        )
    elif isinstance(backend, str):
        backend_obj = make_backend(backend, **(backend_options or {}))
    else:
        backend_obj = backend
    if isinstance(backend_obj, SerialBackend):
        workers = 1
    stats.workers = workers
    stats.backend = backend_obj.name

    if pending:
        context = BackendContext(
            stats=stats,
            finish=finish,
            fail=fail,
            run_serially=run_serially,
            mark_submitted=mark_submitted,
            workers=workers,
            requested_jobs=jobs,
            executor_factory=executor_factory,
            traceparent=(
                run_span.traceparent() if run_span is not None else None
            ),
        )
        backend_obj.run(pending, context)

    with lock:
        maybe_checkpoint(force=True)
    if cache is not None:
        stats.stores = cache.stats.stores
    stats.wall_seconds = time.perf_counter() - start_wall
    results = [slot for slot in slots if slot is not None]
    if run_span is not None:
        run_span.attrs.update({
            "backend": stats.backend,
            "workers": stats.workers,
            "executed": stats.executed,
            "cache_hits": stats.cache_hits,
            "resumed": stats.resumed,
            "failures": stats.failures,
        })
        run_span.end(status="error" if failures else "ok")
    return results, failures, stats
