"""Job scheduler: fan a sweep's jobs out over a process pool.

The scheduler owns no simulation logic — it takes the independent
:class:`~repro.engine.jobs.SimJob` list produced by ``expand_jobs`` and
decides *where* each job runs:

* cache first — jobs whose window is already on disk never execute;
* then a ``ProcessPoolExecutor`` (``jobs`` workers, default
  ``os.cpu_count()``) when more than one worker is requested and the
  platform supports ``fork``;
* a deterministic in-process serial path for ``jobs=1``, for platforms
  without ``fork``, and as the degrade target when the pool breaks.

A job that dies in a worker is retried once serially in the parent
(worker crashes and pool transport errors must not kill a sweep); a job
that also fails serially is reported as a :class:`JobFailure` rather
than raised, so the caller decides whether partial results are usable.
Results are returned in submission order regardless of completion order.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import ResultCache
from repro.engine.jobs import JobResult, SimJob, execute_job

#: progress callback: (jobs finished so far, total jobs, latest result).
ProgressFn = Callable[[int, int, JobResult], None]


@dataclass
class JobFailure:
    """One job that failed both in a worker and on the serial retry."""

    job: SimJob
    error: str


@dataclass
class EngineStats:
    """Accounting for one engine run (exposed as ``SuiteResult.engine``)."""

    jobs: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    stores: int = 0
    retries: int = 0
    failures: int = 0
    workers: int = 1
    degraded: bool = False
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0
    job_seconds: Dict[Tuple[str, str, int], float] = field(
        default_factory=dict
    )
    # Per-job spans (submit/start/end on perf_counter's clock) gathered
    # only when run_jobs(collect_trace=True); feeds the Perfetto export
    # (repro.obs.perfetto.engine_trace_events).
    job_trace: List[dict] = field(default_factory=list)

    def describe(self) -> str:
        parts = [
            "%d jobs" % self.jobs,
            "%d executed" % self.executed,
            "%d cache hits" % self.cache_hits,
            "%d workers" % self.workers,
            "%.2fs wall" % self.wall_seconds,
        ]
        if self.retries:
            parts.append("%d retried" % self.retries)
        if self.failures:
            parts.append("%d FAILED" % self.failures)
        if self.degraded:
            parts.append("degraded to serial")
        return ", ".join(parts)


def resolve_workers(jobs: Optional[int], pending: int) -> int:
    """Effective worker count: explicit > cpu_count, capped by work."""
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, int(jobs))
    if jobs > 1 and "fork" not in multiprocessing.get_all_start_methods():
        # No fork (e.g. some embedded interpreters): deterministic serial
        # fallback rather than paying spawn's re-import cost per worker.
        jobs = 1
    return max(1, min(jobs, pending))


def run_jobs(
    jobs_list: Sequence[SimJob],
    *,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressFn] = None,
    executor_factory: Optional[Callable[..., ProcessPoolExecutor]] = None,
    collect_trace: bool = False,
) -> Tuple[List[JobResult], List[JobFailure], EngineStats]:
    """Execute every job; returns (results, failures, stats).

    ``results`` preserves the order of ``jobs_list`` (failed jobs are
    omitted and listed in ``failures`` instead).  ``collect_trace``
    records a per-job span table into ``stats.job_trace``.
    """
    start_wall = time.perf_counter()
    stats = EngineStats(jobs=len(jobs_list))
    slots: List[Optional[JobResult]] = [None] * len(jobs_list)
    failures: List[JobFailure] = []
    done_count = 0
    submit_times: Dict[int, float] = {}

    def finish(index: int, result: JobResult) -> None:
        nonlocal done_count
        slots[index] = result
        done_count += 1
        stats.sim_seconds += result.elapsed
        stats.job_seconds[result.job.coordinates] = result.elapsed
        if collect_trace:
            now = time.perf_counter()
            submit = submit_times.get(index, start_wall)
            stats.job_trace.append({
                "name": result.job.describe(),
                "submit": submit,
                "start": result.t_start or submit,
                "end": result.t_end or now,
                "from_cache": result.from_cache,
                "retried": result.retried,
            })
        if not result.from_cache:
            stats.executed += 1
            if cache is not None:
                cache.store(result.job, result.window)
        if progress is not None:
            progress(done_count, len(jobs_list), result)

    def fail(job: SimJob, index: int, error: BaseException) -> None:
        nonlocal done_count
        done_count += 1
        failures.append(JobFailure(job=job, error=repr(error)))
        stats.failures += 1
        if progress is not None:
            progress(done_count, len(jobs_list), None)

    # Phase 1: serve whatever the cache already has.
    pending: List[Tuple[int, SimJob]] = []
    for index, job in enumerate(jobs_list):
        window = cache.load(job) if cache is not None else None
        if window is not None:
            finish(index, JobResult(job=job, window=window, from_cache=True))
        else:
            pending.append((index, job))
    if cache is not None:
        stats.cache_hits = cache.stats.hits
        stats.cache_misses = cache.stats.misses

    # Phase 2: execute the misses, in parallel when asked to.
    workers = resolve_workers(jobs, len(pending))
    stats.workers = workers

    def run_serially(index: int, job: SimJob, retried: bool) -> None:
        if retried:
            stats.retries += 1
        submit_times[index] = time.perf_counter()
        try:
            result = execute_job(job)
        except BaseException as error:  # deterministic job failure
            fail(job, index, error)
            return
        result.retried = retried
        finish(index, result)

    if workers > 1 and pending:
        factory = executor_factory or ProcessPoolExecutor
        remaining = list(pending)
        try:
            context = multiprocessing.get_context("fork")
            with factory(max_workers=workers, mp_context=context) as pool:
                future_to_job = {}
                for index, job in pending:
                    submit_times[index] = time.perf_counter()
                    future_to_job[pool.submit(execute_job, job)] = (
                        index, job
                    )
                not_done = set(future_to_job)
                while not_done:
                    finished, not_done = wait(
                        not_done, return_when=FIRST_COMPLETED
                    )
                    for future in finished:
                        index, job = future_to_job[future]
                        remaining.remove((index, job))
                        error = future.exception()
                        if error is not None:
                            # Worker died or the job raised: one serial
                            # retry in the parent, then give up on it.
                            run_serially(index, job, retried=True)
                        else:
                            finish(index, future.result())
        except BaseException:
            # The pool itself broke (fork refused, transport error,
            # keyboard interrupt inside shutdown...): degrade to serial
            # for everything still unaccounted for.
            stats.degraded = True
            for index, job in list(remaining):
                run_serially(index, job, retried=True)
    else:
        for index, job in pending:
            run_serially(index, job, retried=False)

    if cache is not None:
        stats.stores = cache.stats.stores
    stats.wall_seconds = time.perf_counter() - start_wall
    results = [slot for slot in slots if slot is not None]
    return results, failures, stats
