"""Parallel suite engine: job expansion, result caching, scheduling.

The engine turns a sweep (benchmarks x configurations x samples) into
independent, deterministic jobs, serves repeats from a content-addressed
on-disk cache, and fans the rest out over a process pool.  See
``repro.harness.experiment.run_suite`` for the high-level entry point
that reassembles the jobs into a :class:`SuiteResult`.
"""

from repro.engine.cache import (
    CACHE_SCHEMA,
    CacheStats,
    ResultCache,
    default_cache_dir,
    job_cache_key,
)
from repro.engine.jobs import (
    JobResult,
    SimJob,
    derive_seed,
    execute_job,
    expand_jobs,
)
from repro.engine.scheduler import (
    EngineStats,
    JobFailure,
    resolve_workers,
    run_jobs,
)

__all__ = [
    "CACHE_SCHEMA",
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
    "job_cache_key",
    "JobResult",
    "SimJob",
    "derive_seed",
    "execute_job",
    "expand_jobs",
    "EngineStats",
    "JobFailure",
    "resolve_workers",
    "run_jobs",
]
