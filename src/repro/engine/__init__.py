"""Parallel suite engine: job expansion, result store, pluggable backends.

The engine turns a sweep (benchmarks x configurations x samples) into
independent, deterministic jobs, serves repeats from a content-addressed
result store (sharded disk, optionally tiered with the job server's
artifact routes), and hands the rest to a pluggable execution backend —
``serial``, ``local-pool``, or pull-based socket workers
(``worker-protocol``).  Long runs checkpoint their progress into a
resumable manifest (``checkpoint=``/``resume=``).  See
``repro.harness.experiment.run_suite`` for the high-level entry point
that reassembles the jobs into a :class:`SuiteResult`.
"""

from repro.engine.backends import (
    BACKENDS,
    BackendContext,
    ExecutionBackend,
    available_backends,
    make_backend,
    worker_main,
)
from repro.engine.checkpoint import (
    build_checkpoint,
    decode_result,
    encode_result,
    job_key,
    load_checkpoint,
    register_result_codec,
    write_checkpoint,
)
from repro.engine.jobs import (
    JobResult,
    SimJob,
    derive_seed,
    execute_job,
    execute_window_batch,
    expand_jobs,
)
from repro.engine.retry import ENGINE_RETRY, LEASE_RETRY, RetryPolicy
from repro.engine.scheduler import (
    EngineStats,
    JobFailure,
    resolve_workers,
    run_jobs,
)
from repro.engine.store import (
    CACHE_SCHEMA,
    CacheStats,
    RemoteArtifactStore,
    ResultCache,
    ResultStore,
    ShardedDiskStore,
    TieredStore,
    default_cache_dir,
    job_cache_key,
    open_store,
)

__all__ = [
    "BACKENDS",
    "BackendContext",
    "ExecutionBackend",
    "available_backends",
    "make_backend",
    "worker_main",
    "build_checkpoint",
    "decode_result",
    "encode_result",
    "job_key",
    "load_checkpoint",
    "register_result_codec",
    "write_checkpoint",
    "CACHE_SCHEMA",
    "CacheStats",
    "RemoteArtifactStore",
    "ResultCache",
    "ResultStore",
    "ShardedDiskStore",
    "TieredStore",
    "default_cache_dir",
    "job_cache_key",
    "open_store",
    "ENGINE_RETRY",
    "LEASE_RETRY",
    "RetryPolicy",
    "JobResult",
    "SimJob",
    "derive_seed",
    "execute_job",
    "execute_window_batch",
    "expand_jobs",
    "EngineStats",
    "JobFailure",
    "resolve_workers",
    "run_jobs",
]
