"""Content-addressed on-disk cache for simulation windows.

Every job's measurement window is stored as JSON under
``results/.cache/<kk>/<key>.json`` where ``key`` is a SHA-256 over the
complete job identity: the machine configuration
(:meth:`repro.config.SimConfig.cache_key`), the workload spec (benchmark
name, instruction budget, derived seed), the sampling parameters (warm-up
and measurement window sizes, core class), and the code version.  Jobs
are deterministic, so a key hit can replace a simulation outright; any
change to the configuration, workload, sampling, or code version changes
the key and transparently invalidates the entry.

Set ``REPRO_CACHE_DIR`` to relocate the cache; delete the directory (or
run ``nda-repro cache clear``) to drop it.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.engine.jobs import SimJob
from repro.stats.counters import PipelineStats

#: Bump to invalidate every cached window after a change to the simulator
#: that alters results without changing any SimConfig field.
#: Schema 2: scheme registry refactor (string scheme names + per-scheme
#: parameter blocks folded into SimConfig.cache_key()).
#: Schema 3: workload generator data-RNG derivation changed to
#: collision-free string sub-seeding (same (benchmark, seed) job now
#: measures a different generated data image).
CACHE_SCHEMA = 3


def _code_version() -> str:
    from repro import __version__

    return "%s/schema%d" % (__version__, CACHE_SCHEMA)


def default_cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", "results/.cache"))


def job_cache_key(job: SimJob) -> str:
    """Stable key capturing everything that determines a job's window."""
    payload = json.dumps({
        "code": _code_version(),
        "config": job.config.cache_key(),
        # The scheme name is already inside config.cache_key(); naming it
        # here keeps scheme collisions impossible even if a future
        # SimConfig refactor drops it from to_dict().
        "scheme": job.config.scheme,
        "in_order": job.in_order,
        "benchmark": job.benchmark,
        "instructions": job.instructions,
        "seed": job.seed,
        "warmup": job.warmup,
        "measure": job.measure,
    }, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one engine run."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def describe(self) -> str:
        return "%d hits, %d misses, %d stored" % (
            self.hits, self.misses, self.stores,
        )


class ResultCache:
    """JSON result store keyed by :func:`job_cache_key`."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / (key + ".json")

    def has(self, job: SimJob) -> bool:
        """Whether *job*'s window is on disk, without reading it.

        A pure existence probe: no hit/miss accounting, no JSON parse.
        The job server's submission path uses this to decide whether a
        sweep can short-circuit the queue entirely; a corrupt entry
        found later still degrades to re-simulation inside ``load``.
        """
        return self._path(job_cache_key(job)).is_file()

    def load(self, job: SimJob) -> Optional[PipelineStats]:
        """Return the cached window for *job*, or None on a miss.

        Unreadable or corrupt entries count as misses (and are removed),
        so a damaged cache degrades to re-simulation, never to an error.
        """
        path = self._path(job_cache_key(job))
        try:
            payload = json.loads(path.read_text())
            window = PipelineStats.from_dict(payload["window"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            self.stats.errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return window

    def store(self, job: SimJob, window: PipelineStats) -> None:
        """Persist one window (atomic write; failures are non-fatal)."""
        key = job_cache_key(job)
        path = self._path(key)
        payload = {
            "key": key,
            "benchmark": job.benchmark,
            "label": job.label,
            "sample_index": job.sample_index,
            "seed": job.seed,
            "code": _code_version(),
            "window": window.to_dict(),
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp.%d" % os.getpid())
            tmp.write_text(json.dumps(payload, sort_keys=True))
            os.replace(tmp, path)
            self.stats.stores += 1
        except OSError:
            self.stats.errors += 1

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in sorted(self.root.rglob("*.json")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass
        return removed

    def size(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))
