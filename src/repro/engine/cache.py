"""Backwards-compatible aliases for the result store.

The cache implementation grew into the tiered :mod:`repro.engine.store`
(sharded disk + remote artifact tier + read-through composition); this
module keeps the historical import surface — ``ResultCache``,
``CacheStats``, ``job_cache_key``, ``CACHE_SCHEMA``, ... — pointing at
it so existing callers and cached entries keep working unchanged.
"""

from __future__ import annotations

from repro.engine.store import (
    CACHE_SCHEMA,
    CacheStats,
    RemoteArtifactStore,
    ResultCache,
    ResultStore,
    ShardedDiskStore,
    TieredStore,
    _code_version,
    default_cache_dir,
    job_cache_key,
    open_store,
)

__all__ = [
    "CACHE_SCHEMA",
    "CacheStats",
    "RemoteArtifactStore",
    "ResultCache",
    "ResultStore",
    "ShardedDiskStore",
    "TieredStore",
    "default_cache_dir",
    "job_cache_key",
    "open_store",
]
