"""The result store: tiered, shareable, content-addressed window storage.

Every job's measurement window is stored as JSON keyed by a SHA-256 over
the complete job identity (:func:`job_cache_key`): machine configuration
(:meth:`repro.config.SimConfig.cache_key`), workload spec, sampling
parameters, and the code version.  Jobs are deterministic, so a key hit
replaces a simulation outright; any change to configuration, workload,
sampling, or code version changes the key and transparently invalidates
the entry.

Three tiers implement one :class:`ResultStore` interface:

* :class:`ShardedDiskStore` (exported as the historical ``ResultCache``
  name) — JSON files under ``results/.cache/<kk>/<key>.json``.  Entries
  left behind by the pre-shard flat layout (``results/.cache/<key>.json``)
  are migrated lazily on first touch, so an old cache keeps its warmth.
* :class:`RemoteArtifactStore` — the same payloads read through and
  written back over the job server's ``/v1/artifacts`` routes
  (``GET``/``PUT /v1/artifacts/<key>``), so many worker hosts share one
  warm cache.  Transport failures are counted, never raised: a dead
  server degrades to re-simulation.
* :class:`TieredStore` — local in front of remote: loads fill the local
  tier on a remote hit (read-through), stores land in both (write-back).

``open_store`` builds the right composition from a local directory and
an optional server URL.  Set ``REPRO_CACHE_DIR`` to relocate the local
tier; delete the directory (or run ``nda-repro cache clear``) to drop
it; ``nda-repro cache gc --older-than N`` expires stale entries.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from repro.engine.jobs import SimJob
from repro.stats.counters import PipelineStats

#: Bump to invalidate every cached window after a change to the simulator
#: that alters results without changing any SimConfig field.
#: Schema 2: scheme registry refactor (string scheme names + per-scheme
#: parameter blocks folded into SimConfig.cache_key()).
#: Schema 3: workload generator data-RNG derivation changed to
#: collision-free string sub-seeding (same (benchmark, seed) job now
#: measures a different generated data image).
CACHE_SCHEMA = 3


def _code_version() -> str:
    from repro import __version__

    return "%s/schema%d" % (__version__, CACHE_SCHEMA)


def default_cache_dir() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", "results/.cache"))


def job_cache_key(job: SimJob) -> str:
    """Stable key capturing everything that determines a job's window."""
    payload = json.dumps({
        "code": _code_version(),
        "config": job.config.cache_key(),
        # The scheme name is already inside config.cache_key(); naming it
        # here keeps scheme collisions impossible even if a future
        # SimConfig refactor drops it from to_dict().
        "scheme": job.config.scheme,
        "in_order": job.in_order,
        "benchmark": job.benchmark,
        "instructions": job.instructions,
        "seed": job.seed,
        "warmup": job.warmup,
        "measure": job.measure,
    }, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one engine run."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def describe(self) -> str:
        return "%d hits, %d misses, %d stored" % (
            self.hits, self.misses, self.stores,
        )


class ResultStore:
    """Interface every result tier implements (see module docstring).

    The engine driver only ever calls these four members, so any object
    with them — disk shard, HTTP tier, a test double — plugs into
    ``run_jobs(cache=...)`` and the server's warm-submission probe.
    """

    stats: CacheStats

    def has(self, job: SimJob) -> bool:
        """Whether *job*'s window is available, without loading it."""
        raise NotImplementedError

    def load(self, job: SimJob) -> Optional[PipelineStats]:
        """The stored window for *job*, or None on a miss."""
        raise NotImplementedError

    def store(self, job: SimJob, window: PipelineStats) -> None:
        """Persist one window (failures must be non-fatal)."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


def _entry_payload(job: SimJob, key: str, window: PipelineStats) -> dict:
    """The JSON document both disk and remote tiers store per window."""
    return {
        "key": key,
        "benchmark": job.benchmark,
        "label": job.label,
        "sample_index": job.sample_index,
        "seed": job.seed,
        "code": _code_version(),
        "window": window.to_dict(),
    }


class ShardedDiskStore(ResultStore):
    """JSON result store keyed by :func:`job_cache_key`, sharded on disk.

    Layout: ``<root>/<key[:2]>/<key>.json``.  Walks, counts, and deletes
    tolerate concurrent writers — a file or shard directory vanishing
    mid-operation (another worker's ``gc``, a parallel ``clear``) is
    skipped, never raised.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()

    def describe(self) -> str:
        return "disk:%s" % self.root

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / (key + ".json")

    def _flat_path(self, key: str) -> Path:
        """Where the pre-shard flat layout kept this key."""
        return self.root / (key + ".json")

    def _locate(self, key: str) -> Optional[Path]:
        """Find *key* on disk, lazily migrating flat-layout entries."""
        path = self._path(key)
        if path.is_file():
            return path
        flat = self._flat_path(key)
        if flat.is_file():
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                os.replace(flat, path)
                return path
            except OSError:
                return flat  # couldn't move; serve it where it lies
        return None

    def has(self, job: SimJob) -> bool:
        """Whether *job*'s window is on disk, without reading it.

        A pure existence probe: no hit/miss accounting, no JSON parse.
        The job server's submission path uses this to decide whether a
        sweep can short-circuit the queue entirely; a corrupt entry
        found later still degrades to re-simulation inside ``load``.
        """
        return self._locate(job_cache_key(job)) is not None

    def load(self, job: SimJob) -> Optional[PipelineStats]:
        """Return the cached window for *job*, or None on a miss.

        Unreadable or corrupt entries count as misses (and are removed),
        so a damaged cache degrades to re-simulation, never to an error.
        """
        path = self._locate(job_cache_key(job))
        if path is None:
            self.stats.misses += 1
            return None
        try:
            payload = json.loads(path.read_text())
            window = PipelineStats.from_dict(payload["window"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            self.stats.errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return window

    def store(self, job: SimJob, window: PipelineStats) -> None:
        """Persist one window (atomic write; failures are non-fatal)."""
        key = job_cache_key(job)
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp.%d" % os.getpid())
            tmp.write_text(
                json.dumps(_entry_payload(job, key, window), sort_keys=True)
            )
            os.replace(tmp, path)
            self.stats.stores += 1
        except OSError:
            self.stats.errors += 1

    # ------------------------------------------------------------------ #
    # Maintenance (tolerant of concurrent writers by construction).
    # ------------------------------------------------------------------ #

    def _iter_entries(self):
        """Yield entry paths; directories vanishing mid-walk are skipped."""
        stack = [self.root]
        while stack:
            directory = stack.pop()
            try:
                entries = list(os.scandir(directory))
            except OSError:
                continue  # shard removed under us
            for entry in entries:
                try:
                    if entry.is_dir(follow_symlinks=False):
                        stack.append(Path(entry.path))
                    elif entry.name.endswith(".json"):
                        yield Path(entry.path)
                except OSError:
                    continue  # entry removed under us

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for path in sorted(self._iter_entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass  # a concurrent clear/gc got there first
        try:
            shards = list(self.root.iterdir())
        except OSError:
            return removed
        for shard in sorted(shards):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass
        return removed

    def size(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for _ in self._iter_entries())

    def gc(self, older_than_days: float, now: Optional[float] = None) -> int:
        """Expire entries older than *older_than_days*; returns removals.

        Age is the file's mtime — a window re-stored (or re-touched by a
        flat-layout migration) counts as fresh.  Empty shard directories
        left behind are pruned.
        """
        cutoff = (now if now is not None else time.time()) \
            - older_than_days * 86_400.0
        removed = 0
        for path in sorted(self._iter_entries()):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                continue  # vanished or unreadable mid-scan: skip
        try:
            shards = list(self.root.iterdir())
        except OSError:
            return removed
        for shard in shards:
            if shard.is_dir():
                try:
                    shard.rmdir()  # only succeeds when empty
                except OSError:
                    pass
        return removed


#: The historical name: PR 1 called the (then only) disk tier the
#: "result cache" and half the repo imports it as such.
ResultCache = ShardedDiskStore


class RemoteArtifactStore(ResultStore):
    """Window tier speaking the job server's ``/v1/artifacts`` routes.

    Entries are addressed by the same :func:`job_cache_key`, so every
    host computing the same job derives the same URL; the payload is the
    identical JSON document the disk tier writes.  All transport and
    server failures degrade to misses (load) or dropped writes (store),
    counted in ``stats.errors`` — a flaky network can slow a sweep down
    but never break it.
    """

    def __init__(self, base_url: str, token: Optional[str] = None,
                 timeout: float = 10.0) -> None:
        from urllib.parse import urlsplit

        parts = urlsplit(base_url)
        if parts.scheme not in ("http", "https"):
            raise ValueError(
                "remote store URL must be http(s), got %r" % (base_url,)
            )
        self.scheme = parts.scheme
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or (443 if parts.scheme == "https" else 80)
        self.token = token
        self.timeout = timeout
        self.stats = CacheStats()

    def describe(self) -> str:
        return "remote:%s://%s:%d" % (self.scheme, self.host, self.port)

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None) -> Tuple[int, Optional[dict]]:
        from http.client import HTTPConnection, HTTPSConnection

        conn_cls = HTTPSConnection if self.scheme == "https" else \
            HTTPConnection
        connection = conn_cls(self.host, self.port, timeout=self.timeout)
        headers = {"Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = "Bearer %s" % self.token
        try:
            payload = json.dumps(body).encode("utf-8") \
                if body is not None else None
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            blob = response.read()
            try:
                decoded = json.loads(blob.decode("utf-8")) if blob else None
            except (ValueError, UnicodeDecodeError):
                decoded = None
            return response.status, decoded
        finally:
            connection.close()

    def _get(self, key: str) -> Optional[dict]:
        try:
            status, payload = self._request(
                "GET", "/v1/artifacts/%s" % key
            )
        except OSError:
            self.stats.errors += 1
            return None
        if status != 200 or not isinstance(payload, dict):
            return None
        return payload

    def has(self, job: SimJob) -> bool:
        return self._get(job_cache_key(job)) is not None

    def load(self, job: SimJob) -> Optional[PipelineStats]:
        payload = self._get(job_cache_key(job))
        if payload is None:
            self.stats.misses += 1
            return None
        try:
            window = PipelineStats.from_dict(payload["window"])
        except (ValueError, KeyError, TypeError):
            self.stats.misses += 1
            self.stats.errors += 1
            return None
        self.stats.hits += 1
        return window

    def store(self, job: SimJob, window: PipelineStats) -> None:
        key = job_cache_key(job)
        try:
            status, _payload = self._request(
                "PUT", "/v1/artifacts/%s" % key,
                body=_entry_payload(job, key, window),
            )
        except OSError:
            self.stats.errors += 1
            return
        if status in (200, 201):
            self.stats.stores += 1
        else:
            self.stats.errors += 1


class TieredStore(ResultStore):
    """Local tier in front of a remote one: read-through, write-back.

    ``load`` tries local first; a remote hit back-fills the local tier
    so the next lookup on this host stays on disk.  ``store`` lands in
    both, so a worker's fresh window becomes visible to the fleet.
    ``stats`` summarizes the composition (per-tier detail stays on
    ``local.stats`` / ``remote.stats``).
    """

    def __init__(self, local: ResultStore, remote: ResultStore) -> None:
        self.local = local
        self.remote = remote
        self.stats = CacheStats()

    def describe(self) -> str:
        return "%s + %s" % (self.local.describe(), self.remote.describe())

    def has(self, job: SimJob) -> bool:
        return self.local.has(job) or self.remote.has(job)

    def load(self, job: SimJob) -> Optional[PipelineStats]:
        window = self.local.load(job)
        if window is None:
            window = self.remote.load(job)
            if window is not None:
                self.local.store(job, window)  # read-through fill
        if window is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return window

    def store(self, job: SimJob, window: PipelineStats) -> None:
        self.local.store(job, window)
        self.remote.store(job, window)  # write-back to the shared tier
        self.stats.stores += 1


def open_store(
    local=None,
    remote: Optional[str] = None,
    token: Optional[str] = None,
) -> ResultStore:
    """Compose the result store for one run.

    ``local`` is a directory (None = ``results/.cache`` or
    ``$REPRO_CACHE_DIR``); ``remote`` an optional job-server base URL
    whose ``/v1/artifacts`` routes become the shared tier.
    """
    if isinstance(local, ResultStore):
        disk: ResultStore = local
    else:
        disk = ShardedDiskStore(local)
    if remote:
        return TieredStore(disk, RemoteArtifactStore(remote, token=token))
    return disk
