"""Job decomposition for the suite engine.

A sweep is the cross product ``benchmarks x configs x samples``; every
cell of that product is one :class:`SimJob` — a fully self-contained,
picklable description of a single SMARTS measurement window.  Jobs carry
no shared state and derive their RNG seed purely from their coordinates,
so they can execute in any order, on any worker process, and still
reproduce the serial sweep bit for bit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.config import ConfigSpec, SimConfig
from repro.stats.counters import PipelineStats
from repro.stats.sampling import run_window
from repro.workloads.generator import spec_program


def derive_seed(
    benchmark: str, label: str, sample_index: int, seed0: int
) -> int:
    """Deterministic seed for one ``(benchmark, config, sample)`` job.

    The seed is a pure function of the job coordinates — never of
    execution order — which is what makes the parallel engine reproduce
    the serial sweep exactly.  ``benchmark`` and ``label`` are part of the
    job identity but deliberately do NOT perturb the seed: every
    configuration must measure the *same* generated program for a given
    ``(benchmark, sample)`` pair, otherwise normalizing CPIs to the OoO
    baseline (Fig. 7) would compare different programs.  The workload
    generator already mixes the benchmark profile into its own RNG stream.
    """
    del benchmark, label  # part of the identity, not of the seed
    return seed0 + sample_index


@dataclass(frozen=True)
class SimJob:
    """One independent measurement window of a sweep (picklable)."""

    benchmark: str
    label: str
    config: SimConfig
    in_order: bool
    sample_index: int
    seed: int
    warmup: int
    measure: int
    instructions: int

    @property
    def coordinates(self) -> tuple:
        """Where this job's window lands in the reassembled suite."""
        return (self.benchmark, self.label, self.sample_index)

    def describe(self) -> str:
        return "%s/%s sample %d (seed %d)" % (
            self.benchmark, self.label, self.sample_index, self.seed,
        )

    def execute(self) -> PipelineStats:
        """Run this job's measurement window (in the current process)."""
        program = spec_program(self.benchmark, self.instructions, self.seed)
        return run_window(
            program, self.config, self.warmup, self.measure,
            in_order=self.in_order,
        )


def expand_jobs(
    benchmarks: Sequence[str],
    specs: Sequence[ConfigSpec],
    samples: int,
    warmup: int,
    measure: int,
    instructions: int,
    seed0: int = 0,
) -> List[SimJob]:
    """Expand a sweep into its independent jobs, in serial-sweep order."""
    jobs: List[SimJob] = []
    for benchmark in benchmarks:
        for spec in specs:
            spec = ConfigSpec.coerce(spec)
            for index in range(samples):
                jobs.append(SimJob(
                    benchmark=benchmark,
                    label=spec.label,
                    config=spec.config,
                    in_order=spec.in_order,
                    sample_index=index,
                    seed=derive_seed(benchmark, spec.label, index, seed0),
                    warmup=warmup,
                    measure=measure,
                    instructions=instructions,
                ))
    return jobs


@dataclass
class JobResult:
    """One executed (or cache-served) job window."""

    job: SimJob
    window: object  # PipelineStats for SimJob; job-defined otherwise
    elapsed: float = 0.0
    from_cache: bool = False
    retried: bool = False
    #: Replayed out of a checkpoint manifest (--resume) — like a cache
    #: hit, the window was not recomputed by this run.
    resumed: bool = False
    # Execution span on time.perf_counter()'s clock — CLOCK_MONOTONIC on
    # Linux, so comparable across forked workers.  Zero for cache hits.
    t_start: float = 0.0
    t_end: float = 0.0


def execute_window_batch(
    jobs: Sequence[SimJob], quantum: int = 1_024,
) -> List[JobResult]:
    """Execute a batch of :class:`SimJob` windows in lockstep.

    In-process alternative to fanning the jobs out one-per-worker: all
    windows are constructed up front and stepped round-robin through
    the lockstep runner (:mod:`repro.harness.multiwindow`), which
    amortizes per-run driver overhead — the winning strategy on
    single-CPU hosts, where the process pool has nowhere to scale.
    Windows are bit-identical to ``job.execute()``; results come back
    in job order.  Each result's ``elapsed`` is its window's share of
    the batch (total stepped wall split by simulated cycles), since
    lockstep interleaves the windows on one clock.
    """
    from repro.harness.multiwindow import WindowTask, run_windows

    tasks = [
        WindowTask(
            benchmark=job.benchmark,
            instructions=job.instructions,
            seed=job.seed,
            config=job.config,
            warmup=job.warmup,
            measure=job.measure,
            in_order=job.in_order,
        )
        for job in jobs
    ]
    start = time.perf_counter()
    batch = run_windows(tasks, quantum=quantum)
    end = time.perf_counter()
    total_cycles = batch.total_cycles or 1
    results = []
    for job, window_result in zip(jobs, batch.results):
        share = (end - start) * window_result.cycles / total_cycles
        results.append(JobResult(
            job=job, window=window_result.window, elapsed=share,
            t_start=start, t_end=end,
        ))
    return results


def execute_job(job) -> JobResult:
    """Run one job to completion (this is the per-worker entry point).

    Any picklable object with ``coordinates``, ``describe()`` and
    ``execute()`` runs through the engine unchanged — the fuzzing
    campaign's :class:`repro.fuzz.campaign.FuzzJob` is the second
    implementation next to :class:`SimJob`.
    """
    start = time.perf_counter()
    window = job.execute()
    end = time.perf_counter()
    return JobResult(
        job=job, window=window, elapsed=end - start,
        t_start=start, t_end=end,
    )
