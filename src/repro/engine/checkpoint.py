"""Campaign checkpointing: resumable manifests of completed job keys.

A long sweep or fuzz campaign periodically serializes its progress —
which job keys completed (with their encoded results) and which are
still pending — as a checkpoint manifest (a :mod:`repro.obs.manifest`
document of kind ``"checkpoint"``).  A preempted run restarted with
``--resume <manifest>`` replays the completed results out of the file
and executes only the remainder; ``EngineStats.resumed`` counts the
replays so tests can assert zero re-execution.

Keys are content-addressed: a :class:`~repro.engine.jobs.SimJob` reuses
its cache key (:func:`~repro.engine.store.job_cache_key`); any other
job type (e.g. ``FuzzJob``) is keyed by a SHA-256 over its dataclass
fields, its type name, and the code version.  A checkpoint therefore
only ever resumes the *same* job set under the *same* code — any drift
changes the keys and the stale entries are simply ignored.

Result payloads go through a small codec registry keyed by type name
(:func:`register_result_codec`); ``PipelineStats`` registers here,
``FuzzRunResult`` registers on ``repro.fuzz.campaign`` import.  A
result type without a codec is skipped — it stays pending in the
manifest and is re-executed on resume, which is always safe.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, is_dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.engine.jobs import JobResult, SimJob
from repro.engine.store import _code_version, job_cache_key
from repro.stats.counters import PipelineStats

#: type name -> (encode(result) -> jsonable, decode(jsonable) -> result)
_CODECS: Dict[str, Tuple[Callable, Callable]] = {}


def register_result_codec(
    type_name: str,
    encode: Callable,
    decode: Callable,
) -> None:
    """Teach the checkpoint layer to round-trip one result type."""
    _CODECS[type_name] = (encode, decode)


register_result_codec(
    "PipelineStats",
    lambda window: window.to_dict(),
    PipelineStats.from_dict,
)


def job_key(job) -> str:
    """Stable content key for any engine job (SimJob or duck-typed)."""
    if isinstance(job, SimJob):
        return job_cache_key(job)
    if is_dataclass(job):
        fields = asdict(job)
    else:  # duck-typed job: best effort over its public attributes
        fields = {
            name: value for name, value in sorted(vars(job).items())
            if not name.startswith("_")
        }
    payload = json.dumps({
        "code": _code_version(),
        "type": type(job).__name__,
        "fields": fields,
    }, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def encode_result(result: JobResult) -> Optional[dict]:
    """Checkpoint entry for one completed job, or None if uncodable."""
    type_name = type(result.window).__name__
    codec = _CODECS.get(type_name)
    if codec is None:
        return None
    return {
        "type": type_name,
        "data": codec[0](result.window),
        "elapsed": result.elapsed,
    }


def decode_result(job, entry: dict) -> Optional[JobResult]:
    """Rebuild a completed JobResult from a checkpoint entry."""
    codec = _CODECS.get(entry.get("type", ""))
    if codec is None:
        return None
    try:
        window = codec[1](entry["data"])
    except (KeyError, TypeError, ValueError):
        return None
    return JobResult(
        job=job,
        window=window,
        elapsed=float(entry.get("elapsed", 0.0)),
        resumed=True,
    )


def build_checkpoint(
    jobs_list,
    keys,
    slots,
    *,
    label: str = "engine",
    backend: str = "",
    failures=None,
) -> dict:
    """Assemble the checkpoint manifest for one run's current state.

    ``slots`` is the driver's in-order result list (None = pending).
    Completed entries carry their encoded result so resume never needs
    the cache; results without a codec stay listed as pending.
    """
    from repro.obs.manifest import build_checkpoint_manifest

    completed: Dict[str, dict] = {}
    pending = []
    for key, result in zip(keys, slots):
        entry = encode_result(result) if result is not None else None
        if entry is not None:
            completed[key] = entry
        else:
            pending.append(key)
    failed = {}
    if failures:
        for failure in failures:
            try:
                failed[job_key(failure.job)] = failure.error
            except (TypeError, ValueError):
                continue
    return build_checkpoint_manifest(
        label=label,
        backend=backend,
        total=len(jobs_list),
        completed=completed,
        pending=pending,
        failed=failed,
    )


def write_checkpoint(path, manifest: dict) -> str:
    """Atomically (re)write *manifest* at the caller-chosen *path*.

    Unlike :func:`repro.obs.manifest.write_manifest` the filename is the
    caller's: a checkpoint is rewritten in place throughout a run so
    ``--resume <path>`` always sees the newest state.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp, "w") as handle:
        json.dump(manifest, handle, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_checkpoint(source) -> Dict[str, dict]:
    """Completed-entry map from a checkpoint manifest (path or dict).

    Raises ``ValueError`` on a document that is not a valid checkpoint —
    resuming from a half-written or foreign file must fail loudly, not
    silently re-run everything.
    """
    from repro.obs.manifest import validate_checkpoint

    if isinstance(source, dict):
        manifest = source
    else:
        with open(os.fspath(source)) as handle:
            manifest = json.load(handle)
    problems = validate_checkpoint(manifest)
    if problems:
        raise ValueError(
            "not a usable checkpoint: " + "; ".join(problems[:5])
        )
    return manifest["extra"]["checkpoint"]["completed"]
