"""One retry policy for every requeue path in the repo.

Before this module existed the repo had two independent retry
implementations: the engine scheduler's retry-then-serial rule (a job
that dies in a pool worker gets exactly one serial retry in the parent)
and the job server's durable-queue exponential backoff
(``retry_backoff * 2**(attempt-1)`` seconds, then park as ``failed``).
Both — plus the worker-protocol backend's lease re-queue path — now
share :class:`RetryPolicy`.

The backoff is *jittered* so a thundering herd of requeued jobs does not
re-land on the same instant, but deterministically so: the jitter is a
pure function of ``(key, attempt)``, never of wall-clock or a global
RNG.  Two processes computing the delay for the same job agree exactly,
and a test can predict every delay.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def jitter_fraction(key: str, attempt: int) -> float:
    """Deterministic pseudo-random fraction in ``[-1, 1)`` per (key, attempt)."""
    digest = hashlib.sha256(("%s#%d" % (key, attempt)).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") / float(1 << 63) - 1.0


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry, and how long to wait between attempts.

    ``attempt`` numbering is 1-based and counts *executions*, matching
    the durable queue's ``JobRecord.attempts``: after the first failed
    execution ``delay(1)`` is the wait before the second, and
    ``exhausted(attempts)`` is True once ``attempts`` executions have
    consumed every allowed retry.
    """

    max_retries: int = 2
    backoff: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.1  # fraction of the delay, +/-
    max_delay: float = 300.0

    def exhausted(self, attempts: int) -> bool:
        """True when *attempts* executions used up every retry."""
        return attempts > self.max_retries

    def delay(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before retrying after execution *attempt*."""
        attempt = max(1, int(attempt))
        base = self.backoff * (self.multiplier ** (attempt - 1))
        base = min(base, self.max_delay)
        if self.jitter and base > 0.0:
            base *= 1.0 + self.jitter * jitter_fraction(key, attempt)
        return max(0.0, base)


#: The scheduler's historical contract: one serial retry, no sleeping.
ENGINE_RETRY = RetryPolicy(max_retries=1, backoff=0.0, jitter=0.0)

#: Lease re-queues in the worker-protocol backend: a lost job goes back
#: to the queue twice before the coordinator runs it serially itself.
LEASE_RETRY = RetryPolicy(max_retries=2, backoff=0.0, jitter=0.0)
