"""Data prefetchers.

§2 of the paper lists prefetchers among the micro-architectural structures
that wrong-path execution trains and squash does not revert — i.e. another
potential covert channel.  The models here are deliberately simple but
faithful on that axis: they observe *every* demand access, wrong-path ones
included, and the lines they pull in stay resident.

Disabled by default (Table 3's machine has none); enable via
``MemConfig.prefetcher``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class Prefetcher:
    """Interface: observe a demand access, emit prefetch addresses."""

    def observe(self, pc: int, addr: int) -> List[int]:
        raise NotImplementedError


class NullPrefetcher(Prefetcher):
    """No prefetching (the default, matching the paper's configuration)."""

    def observe(self, pc: int, addr: int) -> List[int]:
        return []


class NextLinePrefetcher(Prefetcher):
    """Fetch the next *degree* sequential lines on every access."""

    def __init__(self, line_bytes: int = 64, degree: int = 1):
        if degree < 1:
            raise ValueError("degree must be positive")
        self.line_bytes = line_bytes
        self.degree = degree
        self.issued = 0

    def observe(self, pc: int, addr: int) -> List[int]:
        line = addr - (addr % self.line_bytes)
        out = [
            line + self.line_bytes * (i + 1) for i in range(self.degree)
        ]
        self.issued += len(out)
        return out


class StridePrefetcher(Prefetcher):
    """Classic PC-indexed stride prefetcher with 2-bit confidence.

    Each load/store PC gets a table entry (last address, stride,
    confidence).  Two consecutive accesses with the same stride arm the
    entry; armed entries prefetch ``degree`` strides ahead.
    """

    def __init__(self, entries: int = 256, degree: int = 2,
                 line_bytes: int = 64):
        if entries < 1 or degree < 1:
            raise ValueError("entries and degree must be positive")
        self.entries = entries
        self.degree = degree
        self.line_bytes = line_bytes
        # pc -> [last_addr, stride, confidence]
        self._table: Dict[int, List[int]] = {}
        self.issued = 0
        self.trained = 0

    def observe(self, pc: int, addr: int) -> List[int]:
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.entries:
                self._table.pop(next(iter(self._table)))
            self._table[pc] = [addr, 0, 0]
            return []
        last_addr, stride, confidence = entry
        new_stride = addr - last_addr
        if new_stride == stride and stride != 0:
            confidence = min(3, confidence + 1)
        else:
            confidence = max(0, confidence - 1)
            stride = new_stride
        entry[0], entry[1], entry[2] = addr, stride, confidence
        if confidence < 2 or stride == 0:
            return []
        self.trained += 1
        prefetches = [
            addr + stride * (i + 1) for i in range(self.degree)
        ]
        self.issued += len(prefetches)
        return prefetches


def make_prefetcher(name: str, line_bytes: int = 64,
                    degree: int = 2) -> Prefetcher:
    """Factory keyed by ``MemConfig.prefetcher``."""
    if name == "none":
        return NullPrefetcher()
    if name == "nextline":
        return NextLinePrefetcher(line_bytes, degree)
    if name == "stride":
        return StridePrefetcher(degree=degree, line_bytes=line_bytes)
    raise ValueError("unknown prefetcher %r" % name)
