"""Flat byte-addressable main memory with privilege tagging.

The store is sparse (page dict -> bytearray) so programs may scatter probe
arrays, victim buffers, and kernel data across a 64-bit address space without
allocating it all.  Privilege is a property of the *program* address map
(:meth:`repro.isa.program.Program.is_privileged_addr`); this module only
moves bytes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1
WORD_BYTES = 8
U64_MASK = (1 << 64) - 1


class MainMemory:
    """Sparse simulated DRAM.

    Reads of untouched bytes return zero, mirroring zero-fill-on-demand.
    """

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}

    def _page(self, addr: int) -> bytearray:
        page_id = addr >> PAGE_SHIFT
        page = self._pages.get(page_id)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_id] = page
        return page

    # ------------------------------------------------------------------ #
    # Byte-granularity interface.
    # ------------------------------------------------------------------ #

    def read_byte(self, addr: int) -> int:
        addr &= U64_MASK
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            return 0
        return page[addr & PAGE_MASK]

    def write_byte(self, addr: int, value: int) -> None:
        addr &= U64_MASK
        self._page(addr)[addr & PAGE_MASK] = value & 0xFF

    # ------------------------------------------------------------------ #
    # Word (64-bit) interface.  Words may straddle page boundaries.
    # ------------------------------------------------------------------ #

    def read_word(self, addr: int) -> int:
        addr &= U64_MASK
        offset = addr & PAGE_MASK
        if offset <= PAGE_SIZE - WORD_BYTES:
            page = self._pages.get(addr >> PAGE_SHIFT)
            if page is None:
                return 0
            return int.from_bytes(page[offset:offset + WORD_BYTES], "little")
        return int.from_bytes(
            bytes(self.read_byte(addr + i) for i in range(WORD_BYTES)),
            "little",
        )

    def write_word(self, addr: int, value: int) -> None:
        addr &= U64_MASK
        value &= U64_MASK
        offset = addr & PAGE_MASK
        if offset <= PAGE_SIZE - WORD_BYTES:
            page = self._page(addr)
            page[offset:offset + WORD_BYTES] = value.to_bytes(8, "little")
            return
        for i, byte in enumerate(value.to_bytes(8, "little")):
            self.write_byte(addr + i, byte)

    # ------------------------------------------------------------------ #
    # Bulk helpers.
    # ------------------------------------------------------------------ #

    def write_block(self, addr: int, payload: bytes) -> None:
        addr &= U64_MASK
        offset = addr & PAGE_MASK
        length = len(payload)
        if offset + length <= PAGE_SIZE:  # common case: one page
            self._page(addr)[offset:offset + length] = payload
            return
        view = memoryview(payload)
        done = 0
        while done < length:
            page_offset = (addr + done) & PAGE_MASK
            chunk = min(length - done, PAGE_SIZE - page_offset)
            page = self._page(addr + done)
            page[page_offset:page_offset + chunk] = view[done:done + chunk]
            done += chunk

    def read_block(self, addr: int, length: int) -> bytes:
        return bytes(self.read_byte(addr + i) for i in range(length))

    def load_image(self, image: Dict[int, bytes]) -> None:
        """Install a program's initial data image.

        Inlined single-page path: images are dominated by thousands of
        small scattered blobs, so per-entry call overhead is the cost.
        """
        pages = self._pages
        for addr, payload in image.items():
            offset = addr & PAGE_MASK
            length = len(payload)
            if offset + length <= PAGE_SIZE:
                page_id = addr >> PAGE_SHIFT
                page = pages.get(page_id)
                if page is None:
                    page = bytearray(PAGE_SIZE)
                    pages[page_id] = page
                page[offset:offset + length] = payload
            else:
                self.write_block(addr, payload)

    def touched_pages(self) -> Iterable[Tuple[int, bytearray]]:
        """Yield (page_id, page) for every materialized page."""
        return self._pages.items()

    def copy(self) -> "MainMemory":
        clone = MainMemory()
        clone._pages = {pid: bytearray(p) for pid, p in self._pages.items()}
        return clone

    def equal_contents(self, other: "MainMemory") -> bool:
        """Structural equality ignoring untouched (all-zero) pages."""
        zero = bytes(PAGE_SIZE)
        mine = {p: bytes(b) for p, b in self._pages.items() if bytes(b) != zero}
        theirs = {
            p: bytes(b) for p, b in other._pages.items() if bytes(b) != zero
        }
        return mine == theirs
