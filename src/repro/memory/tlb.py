"""A small fully-associative TLB.

The paper's configuration does not size the TLB explicitly, but wrong-path
TLB fills are one of the non-reverted structures §2 lists, so the model
keeps one for the data path: misses add a fixed page-walk latency and fills
performed on the wrong path persist across squash (like every other
micro-architectural structure in this simulator).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.memory.memory import PAGE_SHIFT


class TLB:
    """Fully-associative, true-LRU translation buffer."""

    def __init__(self, entries: int = 64, walk_cycles: int = 30):
        if entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.entries = entries
        self.walk_cycles = walk_cycles
        self._pages: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> int:
        """Translate *addr*; returns the added latency (0 on a hit)."""
        page = addr >> PAGE_SHIFT
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return 0
        self.misses += 1
        self._pages[page] = None
        if len(self._pages) > self.entries:
            self._pages.popitem(last=False)
        return self.walk_cycles

    def probe(self, addr: int) -> bool:
        """Presence check without filling (covert-channel measurement)."""
        return (addr >> PAGE_SHIFT) in self._pages

    def flush(self) -> None:
        self._pages.clear()

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
