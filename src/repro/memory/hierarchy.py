"""The memory hierarchy: L1I + L1D over a shared L2 over DRAM.

Latency model (paper Table 3, round-trip latencies):

* L1 hit: 4 cycles.
* L1 miss, L2 hit: 40 cycles.
* L2 miss: 40 + 100 (50 ns DRAM at 2 GHz) = 140 cycles.

Off-chip misses occupy MSHRs; when all MSHRs are busy a new miss queues
behind the earliest completion.  The hierarchy records the completion time
of every outstanding off-chip miss so the statistics module can compute the
paper's MLP metric (average outstanding off-chip misses over cycles with at
least one outstanding — Chou et al., as cited in §6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import MemConfig
from repro.memory.cache import Cache
from repro.memory.prefetcher import make_prefetcher
from repro.memory.tlb import TLB


@dataclass
class AccessResult:
    """Outcome of one timed access."""

    latency: int  # total cycles until data is available
    l1_hit: bool
    l2_hit: bool  # meaningful only when not l1_hit
    offchip: bool  # went to DRAM

    @property
    def level(self) -> str:
        if self.l1_hit:
            return "l1"
        if self.l2_hit:
            return "l2"
        return "dram"


class MemoryHierarchy:
    """Shared cache hierarchy for one core.

    The instruction and data paths have private L1s and share the L2.  All
    fills — including wrong-path ones — persist across squash; that
    asymmetry between architectural and micro-architectural state is the
    substrate of every attack in the paper.
    """

    def __init__(self, config: MemConfig, replacement: Optional[str] = None,
                 l2: Optional[Cache] = None):
        config.validate()
        replacement = replacement or config.replacement
        self.config = config
        self.l1i = Cache(config.l1i, "l1i", replacement)
        self.l1d = Cache(config.l1d, "l1d", replacement)
        # An externally supplied L2 makes this hierarchy one slice of a
        # multi-core machine (repro.smt "l2" sharing): the L1s stay
        # private while every hierarchy fills/probes the same L2 object.
        self.l2 = l2 if l2 is not None else Cache(config.l2, "l2", replacement)
        self.dtlb = TLB()
        self.prefetcher = make_prefetcher(
            config.prefetcher, config.l1d.line_bytes, config.prefetch_degree
        )
        self.prefetch_fills = 0
        # Completion cycles of in-flight off-chip misses (MLP + MSHR model).
        self._offchip: List[int] = []
        self.offchip_misses = 0
        # Optional fill observer with on_data_fill(addr, now) and
        # on_inst_fill(addr, now); used by the fuzzing taint oracle
        # (repro.fuzz).  Fired only on demand-miss fills, never on
        # prefetches or invisible probes.
        self.observer = None
        # Optional telemetry EventBus (repro.obs.bus): same demand-fill
        # events, delivered as data_fill/inst_fill.  Coexists with the
        # taint observer above.
        self.obs = None

    # ------------------------------------------------------------------ #
    # MSHR bookkeeping.
    # ------------------------------------------------------------------ #

    def _reap(self, now: int) -> None:
        if self._offchip:
            self._offchip = [c for c in self._offchip if c > now]

    def _start_offchip(self, now: int, base_latency: int) -> int:
        """Allocate an MSHR; returns the total latency including queueing."""
        self._reap(now)
        queue_delay = 0
        if len(self._offchip) >= self.config.mshrs:
            earliest = min(self._offchip)
            queue_delay = max(0, earliest - now)
        done = now + queue_delay + base_latency
        self._offchip.append(done)
        self.offchip_misses += 1
        return queue_delay + base_latency

    def outstanding_offchip(self, now: int) -> int:
        """Number of off-chip misses in flight at cycle *now*."""
        count = 0
        for c in self._offchip:
            if c > now:
                count += 1
        return count

    def offchip_profile(self, start: int, end: int) -> Tuple[int, int]:
        """Aggregate MLP accounting for the half-open cycle span
        ``[start, end)``.

        Returns ``(mlp_sum, mlp_cycles)`` — exactly what accumulating
        ``outstanding_offchip(t)`` for every cycle ``t`` in the span would
        produce, computed in one pass over the in-flight misses.  Only
        legal when no new miss starts inside the span, which the core's
        idle-cycle fast-forward guarantees (a quiescent machine issues no
        memory accesses).
        """
        total = 0
        latest = start
        for c in self._offchip:
            overlap = (c if c < end else end) - start
            if overlap > 0:
                total += overlap
                if c > latest:
                    latest = c
        if not total:
            return 0, 0
        return total, (latest if latest < end else end) - start

    # ------------------------------------------------------------------ #
    # Data path.
    # ------------------------------------------------------------------ #

    def data_access(
        self, addr: int, now: int, fill: bool = True, translate: bool = True,
        pc: int = -1,
    ) -> AccessResult:
        """Timed data-side access to *addr* at cycle *now*.

        With ``fill=False`` the caches are probed but never modified on a
        miss (InvisiSpec's invisible speculative load); hits still update
        replacement state only when filling is allowed, so an invisible
        access leaves zero footprint.  *pc* trains the prefetcher (for
        every access, wrong-path ones included — the squash does not
        revert prefetcher state).
        """
        if pc >= 0 and fill:
            for target in self.prefetcher.observe(pc, addr):
                if not self.l1d.probe(target):
                    self.l1d.fill(target)
                    self.l2.fill(target)
                    self.prefetch_fills += 1
        latency = self.dtlb.access(addr) if translate else 0
        if fill:
            l1_hit = self.l1d.access(addr, fill=True)
            if not l1_hit:
                if self.observer is not None:
                    self.observer.on_data_fill(addr, now)
                obs = self.obs
                if obs is not None and obs.data_fill is not None:
                    obs.data_fill(addr, now)
        else:
            l1_hit = self.l1d.probe(addr)
            # count it for stats without disturbing state
            if l1_hit:
                self.l1d.stats.hits += 1
            else:
                self.l1d.stats.misses += 1
        if l1_hit:
            return AccessResult(latency + self.config.l1d.round_trip_cycles,
                                True, False, False)
        latency += self.config.l2.round_trip_cycles
        if fill:
            l2_hit = self.l2.access(addr, fill=True)
        else:
            l2_hit = self.l2.probe(addr)
            if l2_hit:
                self.l2.stats.hits += 1
            else:
                self.l2.stats.misses += 1
        if l2_hit:
            return AccessResult(latency, False, True, False)
        dram = self._start_offchip(now, self.config.dram_cycles)
        return AccessResult(latency + dram, False, False, True)

    def expose_fill(self, addr: int, now: int) -> AccessResult:
        """Re-issue a previously invisible access, this time filling caches.

        Used by the InvisiSpec model at the visibility point: the line is
        fetched again and installed normally.
        """
        return self.data_access(addr, now, fill=True, translate=False)

    def flush_data_line(self, addr: int) -> None:
        """CLFLUSH semantics: evict from both data-side levels."""
        self.l1d.invalidate(addr)
        self.l2.invalidate(addr)

    # ------------------------------------------------------------------ #
    # Instruction path.
    # ------------------------------------------------------------------ #

    def inst_access(self, addr: int, now: int) -> AccessResult:
        """Timed instruction fetch of the line holding *addr*."""
        if self.l1i.access(addr, fill=True):
            return AccessResult(self.config.l1i.round_trip_cycles,
                                True, False, False)
        if self.observer is not None:
            self.observer.on_inst_fill(addr, now)
        obs = self.obs
        if obs is not None and obs.inst_fill is not None:
            obs.inst_fill(addr, now)
        latency = self.config.l2.round_trip_cycles
        if self.l2.access(addr, fill=True):
            return AccessResult(latency, False, True, False)
        dram = self._start_offchip(now, self.config.dram_cycles)
        return AccessResult(latency + dram, False, False, True)

    # ------------------------------------------------------------------ #

    def warm_data(self, addresses) -> None:
        """Pre-install data lines (used by attack setup and tests)."""
        for addr in addresses:
            self.l1d.fill(addr)
            self.l2.fill(addr)

    def warm_inst(self, addresses) -> None:
        for addr in addresses:
            self.l1i.fill(addr)
            self.l2.fill(addr)
