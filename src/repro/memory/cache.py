"""Set-associative tag-array cache.

Data values always come from :class:`~repro.memory.memory.MainMemory` (plus
LSQ forwarding inside the core); the caches model *timing* and the covert-
channel state — which lines are resident and in what replacement order.
Crucially for the paper, speculative fills are **not** reverted on squash:
a wrong-path access that calls :meth:`Cache.access` leaves its line behind,
which is exactly the property Spectre-style transmit phases exploit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config import CacheConfig
from repro.memory.replacement import ReplacementPolicy, make_policy


class CacheStats:
    """Hit/miss accounting for one cache."""

    __slots__ = ("hits", "misses", "fills", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.invalidations = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class Cache:
    """One level of set-associative cache (tags only).

    Args:
        config: geometry and latency.
        name: label for stats/debugging.
        policy: replacement policy name (``lru`` by default).
    """

    def __init__(self, config: CacheConfig, name: str, policy: str = "lru"):
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.assoc = config.assoc
        self._line_shift = config.line_bytes.bit_length() - 1
        self._set_mask = self.num_sets - 1
        # Per set: way -> tag; tags stored both directions for O(1) lookup.
        self._tags: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._ways: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._repl: List[ReplacementPolicy] = [
            make_policy(policy, self.assoc, seed=i) for i in range(self.num_sets)
        ]
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #

    def line_addr(self, addr: int) -> int:
        return addr >> self._line_shift

    def _index(self, line: int) -> int:
        return line & self._set_mask

    def _tag(self, line: int) -> int:
        return line >> (self._set_mask.bit_length())

    # ------------------------------------------------------------------ #

    def probe(self, addr: int) -> bool:
        """Non-destructive presence check (no stats, no LRU update)."""
        line = self.line_addr(addr)
        return self._tag(line) in self._ways[self._index(line)]

    def access(self, addr: int, fill: bool = True) -> bool:
        """Look up *addr*; returns True on hit.

        On a hit the replacement state is updated.  On a miss, when *fill*
        is True the line is installed (evicting a victim if the set is
        full).  InvisiSpec's speculative loads pass ``fill=False`` so the
        d-cache is left untouched.
        """
        line = self.line_addr(addr)
        index = self._index(line)
        tag = self._tag(line)
        ways = self._ways[index]
        way = ways.get(tag)
        if way is not None:
            self.stats.hits += 1
            self._repl[index].touch(way)
            return True
        self.stats.misses += 1
        if fill:
            self._fill(index, tag)
        return False

    def _fill(self, index: int, tag: int) -> None:
        ways = self._ways[index]
        tags = self._tags[index]
        if len(ways) < self.assoc:
            way = next(w for w in range(self.assoc) if w not in tags)
        else:
            way = self._repl[index].victim()
            old_tag = tags.pop(way)
            del ways[old_tag]
        ways[tag] = way
        tags[way] = tag
        self._repl[index].touch(way)
        self.stats.fills += 1

    def fill(self, addr: int) -> None:
        """Install the line holding *addr* (used by delayed exposures)."""
        line = self.line_addr(addr)
        index = self._index(line)
        tag = self._tag(line)
        if tag not in self._ways[index]:
            self._fill(index, tag)
        else:
            self._repl[index].touch(self._ways[index][tag])

    def invalidate(self, addr: int) -> bool:
        """Remove the line holding *addr* (CLFLUSH). True if it was present."""
        line = self.line_addr(addr)
        index = self._index(line)
        tag = self._tag(line)
        ways = self._ways[index]
        way = ways.pop(tag, None)
        if way is None:
            return False
        del self._tags[index][way]
        self._repl[index].forget(way)
        self.stats.invalidations += 1
        return True

    def flush_all(self) -> None:
        """Empty the entire cache."""
        for index in range(self.num_sets):
            self._ways[index].clear()
            self._tags[index].clear()
            self._repl[index] = make_policy("lru", self.assoc, seed=index)

    def resident_lines(self) -> int:
        """Total number of valid lines (for tests)."""
        return sum(len(ways) for ways in self._ways)
