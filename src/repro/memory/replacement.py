"""Cache replacement policies.

The covert channels the paper studies (d-cache, and by analogy the BTB)
work because speculative fills change which lines survive in a set.  The
policies here therefore expose exactly the operations the tag arrays need:
record a touch, pick a victim, and forget an invalidated way.
"""

from __future__ import annotations

import random
from typing import List, Optional


class ReplacementPolicy:
    """Interface for per-set replacement state."""

    def __init__(self, assoc: int):
        self.assoc = assoc

    def touch(self, way: int) -> None:
        """Way *way* was accessed (hit or fresh fill)."""
        raise NotImplementedError

    def victim(self) -> int:
        """Pick the way to evict from a full set."""
        raise NotImplementedError

    def forget(self, way: int) -> None:
        """Way *way* was invalidated."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used ordering."""

    def __init__(self, assoc: int):
        super().__init__(assoc)
        # Most-recent at the end.  Ways not present are "least recent".
        self._order: List[int] = []

    def touch(self, way: int) -> None:
        if way in self._order:
            self._order.remove(way)
        self._order.append(way)

    def victim(self) -> int:
        if self._order:
            return self._order[0]
        return 0

    def forget(self, way: int) -> None:
        if way in self._order:
            self._order.remove(way)

    def recency_order(self) -> List[int]:
        """Ways, least-recent first (exposed for tests and channel PoCs)."""
        return list(self._order)


class TreePLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU, the common hardware approximation.

    Requires power-of-two associativity; used by tests to show NDA is
    independent of the replacement policy.
    """

    def __init__(self, assoc: int):
        if assoc & (assoc - 1):
            raise ValueError("tree PLRU needs power-of-two associativity")
        super().__init__(assoc)
        self._bits = [False] * max(assoc - 1, 1)

    def touch(self, way: int) -> None:
        node = 0
        span = self.assoc
        while span > 1:
            span //= 2
            go_right = way % (span * 2) >= span
            self._bits[node] = not go_right  # point away from touched half
            node = 2 * node + (2 if go_right else 1)

    def victim(self) -> int:
        node = 0
        way = 0
        span = self.assoc
        while span > 1:
            span //= 2
            if self._bits[node]:
                way += span
                node = 2 * node + 2
            else:
                node = 2 * node + 1
        return way

    def forget(self, way: int) -> None:
        # Steer the tree toward the invalidated way so it is refilled first.
        node = 0
        span = self.assoc
        while span > 1:
            span //= 2
            go_right = way % (span * 2) >= span
            self._bits[node] = go_right
            node = 2 * node + (2 if go_right else 1)


class RandomPolicy(ReplacementPolicy):
    """Seeded random replacement (deterministic across runs)."""

    def __init__(self, assoc: int, seed: int = 0):
        super().__init__(assoc)
        self._rng = random.Random(seed)

    def touch(self, way: int) -> None:
        pass

    def victim(self) -> int:
        return self._rng.randrange(self.assoc)

    def forget(self, way: int) -> None:
        pass


def make_policy(name: str, assoc: int, seed: int = 0) -> ReplacementPolicy:
    """Factory keyed by policy name: ``lru``, ``plru``, or ``random``."""
    if name == "lru":
        return LRUPolicy(assoc)
    if name == "plru":
        return TreePLRUPolicy(assoc)
    if name == "random":
        return RandomPolicy(assoc, seed)
    raise ValueError("unknown replacement policy %r" % name)
