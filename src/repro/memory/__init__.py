"""Memory substrate: backing store, caches, TLB, and the timed hierarchy."""

from repro.memory.cache import Cache, CacheStats
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.memory import MainMemory, PAGE_SIZE, U64_MASK
from repro.memory.prefetcher import (
    NextLinePrefetcher,
    NullPrefetcher,
    StridePrefetcher,
    make_prefetcher,
)
from repro.memory.replacement import (
    LRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
)
from repro.memory.tlb import TLB

__all__ = [
    "Cache",
    "CacheStats",
    "AccessResult",
    "MemoryHierarchy",
    "MainMemory",
    "NextLinePrefetcher",
    "NullPrefetcher",
    "StridePrefetcher",
    "make_prefetcher",
    "PAGE_SIZE",
    "U64_MASK",
    "LRUPolicy",
    "RandomPolicy",
    "TreePLRUPolicy",
    "make_policy",
    "TLB",
]
