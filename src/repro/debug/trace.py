"""Pipeline tracing: per-instruction lifecycle records and ASCII charts.

Attach a :class:`PipelineTracer` to a core and every retired or squashed
dynamic instruction is recorded with its fetch / dispatch / issue /
complete / broadcast / retire cycles — the raw material for debugging
scheduler behaviour and for *seeing* NDA's deferred wake-ups:

    core = OutOfOrderCore(program, config)
    tracer = PipelineTracer.attach(core, limit=200)
    core.run()
    print(tracer.render())

In the chart, each instruction is one row; NDA shows up as a widening gap
between ``C`` (complete) and ``B`` (broadcast).

The tracer is an :class:`~repro.obs.bus.EventBus` subscriber: records
are sourced from the bus's ``instr_retire`` / ``instr_squash`` events
(plus ``load_validate`` / ``load_expose`` for InvisiSpec and
``inorder_step`` for the in-order core), not from ad-hoc core pokes.
:meth:`PipelineTracer.attach` wires that up; records also convert
directly to Perfetto spans via
:func:`repro.obs.perfetto.lifecycle_trace_events`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.rob import DynInstr


@dataclass
class TraceRecord:
    """Lifecycle of one dynamic instruction."""

    seq: int
    pc: int
    disasm: str
    fetch: int
    dispatch: int
    issue: int
    complete: int
    broadcast: int
    retire: int
    squashed: bool
    #: InvisiSpec visibility cycles (-1 when the scheme never fired).
    validate: int = -1
    expose: int = -1

    @property
    def wakeup_delay(self) -> int:
        """Cycles the result sat completed-but-unbroadcast (NDA's deferral)."""
        if self.broadcast < 0 or self.complete < 0:
            return 0
        return self.broadcast - self.complete


class PipelineTracer:
    """Collects TraceRecords from a core via the telemetry event bus."""

    def __init__(self, limit: int = 1_000, include_squashed: bool = True):
        self.limit = limit
        self.include_squashed = include_squashed
        self.records: List[TraceRecord] = []
        self._validates: Dict[int, int] = {}
        self._exposes: Dict[int, int] = {}
        self._inorder_seq = 0

    @classmethod
    def attach(
        cls, core, limit: int = 1_000, include_squashed: bool = True,
    ) -> "PipelineTracer":
        """Subscribe a new tracer on *core*'s event bus (attaching a bus
        first if the core has none).  Works for both core classes."""
        from repro.obs.bus import ensure_bus

        tracer = cls(limit=limit, include_squashed=include_squashed)
        ensure_bus(core).subscribe(tracer)
        return tracer

    # Event-bus subscriber methods. ------------------------------------- #

    def instr_retire(self, entry: DynInstr, now: int) -> None:
        self._record(entry, now, squashed=False)

    def instr_squash(self, entry: DynInstr, now: int) -> None:
        if self.include_squashed:
            self._record(entry, now, squashed=True)
        else:
            self._validates.pop(entry.seq, None)
            self._exposes.pop(entry.seq, None)

    def load_validate(self, entry: DynInstr, now: int, latency: int) -> None:
        self._validates[entry.seq] = now

    def load_expose(self, entry: DynInstr, now: int) -> None:
        self._exposes[entry.seq] = now

    def inorder_step(self, pc: int, instr, start_cycle: int,
                     end_cycle: int) -> None:
        """One fully executed in-order instruction: fetch at the step's
        first cycle, retirement at its last."""
        if len(self.records) >= self.limit:
            return
        self.records.append(TraceRecord(
            seq=self._inorder_seq,
            pc=pc,
            disasm=repr(instr),
            fetch=start_cycle,
            dispatch=-1,
            issue=-1,
            complete=-1,
            broadcast=-1,
            retire=max(end_cycle - 1, start_cycle),
            squashed=False,
        ))
        self._inorder_seq += 1

    # Legacy hook spellings (pre-bus callers and subclasses). ----------- #

    retired = instr_retire
    squashed = instr_squash

    def _record(self, entry: DynInstr, now: int, squashed: bool) -> None:
        validate = self._validates.pop(entry.seq, -1)
        expose = self._exposes.pop(entry.seq, -1)
        if len(self.records) >= self.limit:
            return
        self.records.append(TraceRecord(
            seq=entry.seq,
            pc=entry.pc,
            disasm=repr(entry.instr),
            fetch=entry.fetched.fetch_cycle,
            dispatch=entry.dispatch_cycle,
            issue=entry.issue_cycle,
            complete=entry.complete_cycle,
            broadcast=entry.bcast_cycle,
            retire=now if not squashed else -1,
            squashed=squashed,
            validate=validate,
            expose=expose,
        ))

    # Reporting. --------------------------------------------------------- #

    def mean_wakeup_delay(self) -> float:
        """Average complete-to-broadcast gap over retired instructions."""
        delays = [
            r.wakeup_delay for r in self.records
            if not r.squashed and r.broadcast >= 0
        ]
        return sum(delays) / len(delays) if delays else 0.0

    def render(self, width: int = 64) -> str:
        """ASCII pipeline chart: one row per instruction.

        Stage letters: F fetch, D dispatch, I issue, C complete,
        B broadcast, R retire; ``x`` marks squashed instructions,
        ``=`` fills complete-to-broadcast deferral.
        """
        if not self.records:
            return "(no trace records)"
        start = min(r.fetch for r in self.records if r.fetch >= 0)
        lines = ["cycle offset from %d; one column per cycle" % start]
        for record in self.records:
            events = [
                ("F", record.fetch), ("D", record.dispatch),
                ("I", record.issue), ("C", record.complete),
                ("B", record.broadcast), ("R", record.retire),
            ]
            chart = {}
            for letter, cycle in events:
                if cycle is None or cycle < 0:
                    continue
                offset = cycle - start
                if 0 <= offset < width:
                    chart[offset] = letter
            if record.complete >= 0 and record.broadcast > record.complete:
                for offset in range(record.complete - start + 1,
                                    min(record.broadcast - start, width)):
                    chart.setdefault(offset, "=")
            row = "".join(chart.get(i, ".") for i in range(width))
            marker = "x" if record.squashed else " "
            lines.append(
                "%5d%s |%s| %s" % (record.seq, marker, row, record.disasm)
            )
        return "\n".join(lines)

    def to_tsv(self) -> str:
        """Machine-readable dump (one line per instruction)."""
        lines = ["seq\tpc\tfetch\tdispatch\tissue\tcomplete\tbroadcast"
                 "\tretire\tsquashed\tdisasm"]
        for r in self.records:
            lines.append(
                "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s"
                % (r.seq, r.pc, r.fetch, r.dispatch, r.issue, r.complete,
                   r.broadcast, r.retire, int(r.squashed), r.disasm)
            )
        return "\n".join(lines)
