"""Pipeline tracing: per-instruction lifecycle records and ASCII charts.

Attach a :class:`PipelineTracer` to an out-of-order core and every retired
or squashed dynamic instruction is recorded with its fetch / dispatch /
issue / complete / broadcast / retire cycles — the raw material for
debugging scheduler behaviour and for *seeing* NDA's deferred wake-ups:

    core = OutOfOrderCore(program, config)
    tracer = PipelineTracer.attach(core, limit=200)
    core.run()
    print(tracer.render())

In the chart, each instruction is one row; NDA shows up as a widening gap
between ``C`` (complete) and ``B`` (broadcast).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.ooo import OutOfOrderCore
from repro.core.rob import DynInstr


@dataclass
class TraceRecord:
    """Lifecycle of one dynamic instruction."""

    seq: int
    pc: int
    disasm: str
    fetch: int
    dispatch: int
    issue: int
    complete: int
    broadcast: int
    retire: int
    squashed: bool

    @property
    def wakeup_delay(self) -> int:
        """Cycles the result sat completed-but-unbroadcast (NDA's deferral)."""
        if self.broadcast < 0 or self.complete < 0:
            return 0
        return self.broadcast - self.complete


class PipelineTracer:
    """Collects TraceRecords from a core via its retire/squash hooks."""

    def __init__(self, limit: int = 1_000, include_squashed: bool = True):
        self.limit = limit
        self.include_squashed = include_squashed
        self.records: List[TraceRecord] = []

    @classmethod
    def attach(
        cls, core: OutOfOrderCore, limit: int = 1_000,
        include_squashed: bool = True,
    ) -> "PipelineTracer":
        tracer = cls(limit=limit, include_squashed=include_squashed)
        core.tracer = tracer
        return tracer

    # Hooks called by the core. ----------------------------------------- #

    def retired(self, entry: DynInstr, now: int) -> None:
        self._record(entry, now, squashed=False)

    def squashed(self, entry: DynInstr, now: int) -> None:
        if self.include_squashed:
            self._record(entry, now, squashed=True)

    def _record(self, entry: DynInstr, now: int, squashed: bool) -> None:
        if len(self.records) >= self.limit:
            return
        self.records.append(TraceRecord(
            seq=entry.seq,
            pc=entry.pc,
            disasm=repr(entry.instr),
            fetch=entry.fetched.fetch_cycle,
            dispatch=entry.dispatch_cycle,
            issue=entry.issue_cycle,
            complete=entry.complete_cycle,
            broadcast=entry.bcast_cycle,
            retire=now if not squashed else -1,
            squashed=squashed,
        ))

    # Reporting. --------------------------------------------------------- #

    def mean_wakeup_delay(self) -> float:
        """Average complete-to-broadcast gap over retired instructions."""
        delays = [
            r.wakeup_delay for r in self.records
            if not r.squashed and r.broadcast >= 0
        ]
        return sum(delays) / len(delays) if delays else 0.0

    def render(self, width: int = 64) -> str:
        """ASCII pipeline chart: one row per instruction.

        Stage letters: F fetch, D dispatch, I issue, C complete,
        B broadcast, R retire; ``x`` marks squashed instructions,
        ``=`` fills complete-to-broadcast deferral.
        """
        if not self.records:
            return "(no trace records)"
        start = min(r.fetch for r in self.records if r.fetch >= 0)
        lines = ["cycle offset from %d; one column per cycle" % start]
        for record in self.records:
            events = [
                ("F", record.fetch), ("D", record.dispatch),
                ("I", record.issue), ("C", record.complete),
                ("B", record.broadcast), ("R", record.retire),
            ]
            chart = {}
            for letter, cycle in events:
                if cycle is None or cycle < 0:
                    continue
                offset = cycle - start
                if 0 <= offset < width:
                    chart[offset] = letter
            if record.complete >= 0 and record.broadcast > record.complete:
                for offset in range(record.complete - start + 1,
                                    min(record.broadcast - start, width)):
                    chart.setdefault(offset, "=")
            row = "".join(chart.get(i, ".") for i in range(width))
            marker = "x" if record.squashed else " "
            lines.append(
                "%5d%s |%s| %s" % (record.seq, marker, row, record.disasm)
            )
        return "\n".join(lines)

    def to_tsv(self) -> str:
        """Machine-readable dump (one line per instruction)."""
        lines = ["seq\tpc\tfetch\tdispatch\tissue\tcomplete\tbroadcast"
                 "\tretire\tsquashed\tdisasm"]
        for r in self.records:
            lines.append(
                "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s"
                % (r.seq, r.pc, r.fetch, r.dispatch, r.issue, r.complete,
                   r.broadcast, r.retire, int(r.squashed), r.disasm)
            )
        return "\n".join(lines)
