"""Debugging tools: pipeline tracing."""

from repro.debug.trace import PipelineTracer, TraceRecord

__all__ = ["PipelineTracer", "TraceRecord"]
