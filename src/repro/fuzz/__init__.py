"""repro.fuzz: differential speculative-leak fuzzing.

The subsystem closes the loop the hand-written PoCs leave open: instead
of nine fixed attack programs, a *generator* emits endless randomized
speculation gadgets, a *taint oracle* watches each run for secret-
derived influence on squash-surviving state (d-/i-cache fills, BTB
updates, FPU wake-ups), and a *campaign* runs every program under every
protection scheme — a witness under a scheme that claims to block that
channel class is a counterexample, minimized by ddmin into a permanent
regression test.

Layers:

* :mod:`repro.fuzz.taint` — the oracle and its core hooks
* :mod:`repro.fuzz.generator` — gadget-aware program templates
* :mod:`repro.fuzz.campaign` — differential runner on the suite engine
* :mod:`repro.fuzz.minimize` — ddmin witness reduction
* :mod:`repro.fuzz.corpus` — JSON round-trip for minimized witnesses
"""

from repro.fuzz.campaign import (
    BASELINE,
    CampaignResult,
    Counterexample,
    FuzzJob,
    FuzzRunResult,
    SmtFuzzJob,
    claimed_blocked_channels,
    claimed_blocked_cross_channels,
    fuzz_configs,
    run_campaign,
    run_seed,
    run_smt_seed,
)
from repro.fuzz.corpus import load_witness_file, save_witness_file
from repro.fuzz.generator import (
    SMT_TEMPLATES,
    TEMPLATES,
    FuzzProgram,
    SmtFuzzProgram,
    generate,
    generate_smt,
    smt_template_for_seed,
    template_for_seed,
)
from repro.fuzz.minimize import (
    MinimizeResult,
    differential_predicate,
    minimize_program,
)
from repro.fuzz.taint import (
    CHANNELS,
    SHARED_CHANNELS,
    LeakWitness,
    TaintOracle,
    run_with_oracle,
)

__all__ = [
    "BASELINE",
    "CHANNELS",
    "CampaignResult",
    "Counterexample",
    "FuzzJob",
    "FuzzProgram",
    "FuzzRunResult",
    "LeakWitness",
    "MinimizeResult",
    "SHARED_CHANNELS",
    "SMT_TEMPLATES",
    "SmtFuzzJob",
    "SmtFuzzProgram",
    "TEMPLATES",
    "TaintOracle",
    "claimed_blocked_channels",
    "claimed_blocked_cross_channels",
    "differential_predicate",
    "fuzz_configs",
    "generate",
    "generate_smt",
    "load_witness_file",
    "minimize_program",
    "run_campaign",
    "run_seed",
    "run_smt_seed",
    "run_with_oracle",
    "save_witness_file",
    "smt_template_for_seed",
    "template_for_seed",
]
