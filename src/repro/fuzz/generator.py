"""Gadget-aware program generator for the speculative-leak fuzzer.

Uniform random programs almost never open a useful transient window, so
— like the paper's PoCs and unlike :mod:`repro.workloads.generator`'s
SPEC-like kernels — every generated program is built from one of five
*speculation-heavy templates*, then randomized around the skeleton:
train counts, secret placement and value, transmit strides, dependent-
chain depths and ALU filler all come from a deterministic per-seed RNG
stream, so ``generate(seed)`` is a pure function of the seed (string
sub-seeding, same discipline as the workload generator's data streams).

The five templates and the taxonomy attack whose Table 2 ground truth
they inherit (``FuzzProgram.analog``):

===============  =========  ==================  =======================
template         channel    analog              transient transmitter
===============  =========  ==================  =======================
bounds-check     d-cache    spectre_v1_cache    tainted-address load
indirect-table   btb        spectre_v1_btb      CALLR through a table
store-bypass     d-cache    ssb                 tainted-address load
fp-gadget        fpu        netspectre          FADD wakes gated FPU
cold-jump        i-cache    spectre_icache      JR into a cold stub
===============  =========  ==================  =======================

None of the programs carries a recover phase: leak detection is the
taint oracle's job, which keeps generated programs short (hundreds of
micro-ops) and campaign throughput high.  Secrets are only ever read on
transient paths, so architectural results are secret-independent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro.attacks.common import (
    ARRAY_SIZE,
    PROBE_BASE,
    PROBE_STRIDE,
    SCRATCH_BASE,
    victim_map,
)
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import (
    F0, F1, F2, LR,
    R0, R10, R11, R12, R13, R14, R15, R16, R17, R18, R19,
    R20, R21, R22, R23,
)

_MAP = victim_map("fuzz")
ARRAY_BASE = _MAP["array"]
SIZE_ADDR = _MAP["size"]
TABLE_BASE = _MAP["table"]
SLOT_ADDR = _MAP["slot"]

#: Registers the ALU filler may clobber (never part of a gadget chain).
_FILLER_REGS = (R14, R15, R16, R17)
_FILLER_OPS = ("add", "sub", "xor", "or_", "and_")


@dataclass(frozen=True)
class FuzzProgram:
    """One generated program plus the oracle configuration it needs."""

    program: Program = field(repr=False)
    template: str
    channel: str  # primary covert-channel class the gadget targets
    analog: str  # taxonomy attack name with matching ground truth
    seed: int
    secret_ranges: Tuple[Tuple[int, int], ...] = ()
    tainted_bytes: Tuple[int, ...] = ()


def _rng_for(seed: int) -> random.Random:
    # String sub-seeding: SHA-512 based, stable across processes (tuple
    # seeds would go through PYTHONHASHSEED-randomized ``hash()``).
    return random.Random("fuzz/%d" % seed)


def _filler(asm: Assembler, rng: random.Random, budget: int = 3) -> None:
    """Emit 0..budget harmless ALU ops (program-shape diversity)."""
    for _ in range(rng.randrange(0, budget + 1)):
        op = getattr(asm, rng.choice(_FILLER_OPS))
        op(rng.choice(_FILLER_REGS), rng.choice(_FILLER_REGS),
           rng.choice(_FILLER_REGS))


def _train_and_fire(
    asm: Assembler, rng: random.Random, oob_index: int
) -> None:
    """Shared attack driver: train the bounds check in-bounds, flush the
    bounds variable, then call once out-of-bounds."""
    train_calls = rng.randrange(3, 8)
    for train in range(train_calls):
        asm.li(R10, train % ARRAY_SIZE)
        asm.call("victim")
    asm.fence()
    asm.li(R20, SIZE_ADDR)
    asm.clflush(R20, 0)
    asm.fence()
    asm.li(R10, oob_index)
    asm.call("victim")
    asm.fence()


def _victim_prologue(asm: Assembler, rng: random.Random) -> None:
    """Common victim head: slow bounds load + mis-trained check."""
    asm.label("victim")
    asm.li(R20, SIZE_ADDR)
    asm.load(R20, R20, 0)  # flushed before the attack call
    _filler(asm, rng)
    asm.bge(R10, R20, "victim_done")
    asm.add(R21, R11, R10)
    asm.loadb(R21, R21, 0)  # the transient secret access


def _secret_site(rng: random.Random) -> Tuple[int, int, int]:
    """Random (offset, address, value) for this program's secret byte."""
    offset = rng.randrange(ARRAY_SIZE, 0x2000)
    return offset, ARRAY_BASE + offset, rng.randrange(1, 256)


def _build_bounds_check(seed: int, rng: random.Random) -> FuzzProgram:
    """Spectre-v1 shape: tainted-address load fills a probe line."""
    offset, secret_addr, secret = _secret_site(rng)
    stride = PROBE_STRIDE * rng.choice((1, 2))
    deep_chain = rng.random() < 0.5  # secret -> address -> second load

    asm = Assembler("fuzz-bounds-check-s%d" % seed)
    asm.word(SIZE_ADDR, ARRAY_SIZE)
    asm.data(ARRAY_BASE, bytes(ARRAY_SIZE))
    asm.data(secret_addr, bytes([secret]))
    asm.jmp("main")

    _victim_prologue(asm, rng)
    _filler(asm, rng)
    asm.mul(R21, R21, R13)
    asm.add(R21, R21, R12)
    asm.load(R21, R21, 0)  # transmit: tainted-address fill
    if deep_chain:
        # Double dereference: the (tainted) loaded word addresses a
        # second load — taint must survive one more hop.
        asm.andi(R21, R21, 0xFFF8)
        asm.add(R21, R21, R12)
        asm.load(R21, R21, 0)
    asm.label("victim_done")
    asm.ret()

    asm.label("main")
    asm.li(R11, ARRAY_BASE)
    asm.li(R12, PROBE_BASE)
    asm.li(R13, stride)
    asm.li(R20, secret_addr)
    asm.loadb(R21, R20, 0)  # warm the secret's line
    _train_and_fire(asm, rng, oob_index=offset)
    asm.halt()
    return FuzzProgram(
        program=asm.build(),
        template="bounds-check",
        channel="d-cache",
        analog="spectre_v1_cache",
        seed=seed,
        secret_ranges=((secret_addr, secret_addr + 1),),
    )


def _build_indirect_table(seed: int, rng: random.Random) -> FuzzProgram:
    """CALLR through a corruptible function-pointer table: the BTB
    learns a secret-selected target on the wrong path."""
    offset, secret_addr, secret = _secret_site(rng)
    n_targets = rng.choice((4, 8))

    asm = Assembler("fuzz-indirect-table-s%d" % seed)
    asm.word(SIZE_ADDR, ARRAY_SIZE)
    asm.data(ARRAY_BASE, bytes(ARRAY_SIZE))
    asm.data(secret_addr, bytes([secret]))
    asm.jmp("main")

    _victim_prologue(asm, rng)
    asm.andi(R21, R21, n_targets - 1)
    asm.shli(R21, R21, 3)
    asm.li(R22, TABLE_BASE)
    asm.add(R22, R22, R21)
    asm.load(R22, R22, 0)  # fn pointer: tainted value
    # Save/restore LR around the indirect call: the in-bounds training
    # path executes it architecturally, and CALLR clobbers LR.
    asm.li(R23, SCRATCH_BASE)
    asm.store(LR, R23, 0)
    asm.callr(R22)  # transmit: BTB install with a tainted target
    asm.li(R23, SCRATCH_BASE)
    asm.load(LR, R23, 0)
    asm.label("victim_done")
    asm.ret()

    # Call targets, each on its own i-cache line (cold until steered to).
    target_pcs = []
    asm.align(16)
    for index in range(n_targets):
        target_pcs.append(asm.here)
        asm.nops(rng.randrange(0, 3))
        asm.ret()
        asm.align(16)
    for index, pc in enumerate(target_pcs):
        asm.word(TABLE_BASE + index * 8, pc)

    asm.label("main")
    asm.li(R11, ARRAY_BASE)
    asm.li(R20, secret_addr)
    asm.loadb(R21, R20, 0)  # warm the secret's line
    # Warm the pointer table: the transient CALLR only fits inside the
    # window if its function-pointer load is an L1 hit.
    for index in range(n_targets):
        asm.li(R20, TABLE_BASE + index * 8)
        asm.load(R21, R20, 0)
    _train_and_fire(asm, rng, oob_index=offset)
    asm.halt()
    return FuzzProgram(
        program=asm.build(),
        template="indirect-table",
        channel="btb",
        analog="spectre_v1_btb",
        seed=seed,
        secret_ranges=((secret_addr, secret_addr + 1),),
    )


def _build_store_bypass(seed: int, rng: random.Random) -> FuzzProgram:
    """SSB window: a load outruns a slow-addressed store, reads the
    stale secret and transmits it before the violation squash."""
    secret = rng.randrange(1, 256)
    public = rng.randrange(1, 256)
    stride = PROBE_STRIDE * rng.choice((1, 2))
    chain_len = rng.randrange(1, 4)  # mul/div pairs delaying the address

    asm = Assembler("fuzz-store-bypass-s%d" % seed)
    asm.word(SLOT_ADDR, secret)  # stale (secret) contents
    asm.li(R12, PROBE_BASE)
    asm.li(R13, stride)
    asm.li(R20, SLOT_ADDR)
    asm.loadb(R21, R20, 0)  # warm: the bypassing load must be fast
    asm.fence()
    _filler(asm, rng)
    # Store address through a division chain (slow to resolve).
    asm.li(R18, SLOT_ADDR)
    for _ in range(chain_len):
        factor = rng.randrange(3, 9)
        asm.li(R17, factor)
        asm.mul(R18, R18, R17)
        asm.div(R18, R18, R17)  # == SLOT_ADDR, eventually
    asm.li(R20, public)
    asm.store(R20, R18, 0)  # the store the load will bypass
    asm.li(R21, SLOT_ADDR)
    asm.loadb(R10, R21, 0)  # bypasses -> reads the stale secret
    asm.mul(R21, R10, R13)
    asm.add(R21, R21, R12)
    asm.load(R21, R21, 0)  # transmit: tainted-address fill
    asm.fence()
    asm.halt()
    return FuzzProgram(
        program=asm.build(),
        template="store-bypass",
        channel="d-cache",
        analog="ssb",
        seed=seed,
        # Dynamic taint, not a static range: the committed public store
        # declassifies the slot, exactly like the architectural overwrite.
        tainted_bytes=tuple(range(SLOT_ADDR, SLOT_ADDR + 8)),
    )


def _emit_bit_steer(asm: Assembler, rng: random.Random, bit: int) -> None:
    """Secret bit -> indirect-jump target (the NetSpectre/i-cache trick).

    The jump lands on ``victim_done`` for bit 0 and on the instruction
    right after the JR for bit 1; the caller emits that instruction and
    a trailing NOP, then the ``victim_done`` label.
    """
    asm.shri(R21, R21, bit)
    asm.andi(R21, R21, 1)
    asm.shli(R23, R21, 1)
    asm.li(R22, asm.here + 5)  # pc of victim_done below
    asm.sub(R22, R22, R23)
    asm.jr(R22)  # done (bit=0) or the transmitter (bit=1)


def _build_fp_gadget(seed: int, rng: random.Random) -> FuzzProgram:
    """Secret-dependent FP op wakes the power-gated FPU transiently."""
    offset, secret_addr, secret = _secret_site(rng)
    bit = rng.choice([b for b in range(8) if (secret >> b) & 1])

    asm = Assembler("fuzz-fp-gadget-s%d" % seed)
    asm.word(SIZE_ADDR, ARRAY_SIZE)
    asm.data(ARRAY_BASE, bytes(ARRAY_SIZE))  # benign values: bit == 0
    asm.data(secret_addr, bytes([secret]))
    asm.jmp("main")

    _victim_prologue(asm, rng)
    _emit_bit_steer(asm, rng, bit)
    asm.fadd(F0, F1, F2)  # transmit: wake the FPU
    asm.nop()
    asm.label("victim_done")
    asm.ret()

    # No FP op ever executes architecturally, so the FPU stays gated
    # from reset — no sleep spin needed before the attack call.
    asm.label("main")
    asm.li(R11, ARRAY_BASE)
    asm.li(R20, secret_addr)
    asm.loadb(R21, R20, 0)  # warm the secret's line
    _train_and_fire(asm, rng, oob_index=offset)
    asm.halt()
    return FuzzProgram(
        program=asm.build(),
        template="fp-gadget",
        channel="fpu",
        analog="netspectre",
        seed=seed,
        secret_ranges=((secret_addr, secret_addr + 1),),
    )


def _build_cold_jump(seed: int, rng: random.Random) -> FuzzProgram:
    """Tainted JR steers fetch into a cold stub: the i-line fill leaks."""
    offset, secret_addr, secret = _secret_site(rng)
    bit = rng.choice([b for b in range(8) if (secret >> b) & 1])

    asm = Assembler("fuzz-cold-jump-s%d" % seed)
    asm.word(SIZE_ADDR, ARRAY_SIZE)
    asm.data(ARRAY_BASE, bytes(ARRAY_SIZE))
    asm.data(secret_addr, bytes([secret]))
    asm.jmp("main")

    _victim_prologue(asm, rng)
    _emit_bit_steer(asm, rng, bit)
    asm.jmp("stub")  # transmit: fetch fills the stub's i-line
    asm.nop()
    asm.label("victim_done")
    asm.ret()

    # The cold stub: alone on its own i-cache line, never fetched
    # architecturally.
    asm.align(16)
    asm.label("stub")
    asm.nops(rng.randrange(0, 3))
    asm.ret()
    asm.align(16)

    asm.label("main")
    asm.li(R11, ARRAY_BASE)
    asm.li(R20, secret_addr)
    asm.loadb(R21, R20, 0)  # warm the secret's line
    _train_and_fire(asm, rng, oob_index=offset)
    asm.halt()
    return FuzzProgram(
        program=asm.build(),
        template="cold-jump",
        channel="i-cache",
        analog="spectre_icache",
        seed=seed,
        secret_ranges=((secret_addr, secret_addr + 1),),
    )


SMT_SLOT_ADDR = victim_map("smt_fuzz")["slot"]


@dataclass(frozen=True)
class SmtFuzzProgram:
    """A co-resident pair: attacker noise program + victim gadget.

    The victim is a regular single-context fuzz gadget; what makes the
    pair cross-context is the machine it runs on (repro.smt) and the
    oracle configuration — the victim's oracle is told which channels
    are shared, so its squash-surviving footprints on those structures
    come back as ``cross-*`` witnesses.  The attacker context never
    shares an address range with the victim's secrets; it exists to
    exercise the shared structures concurrently (arbiter interleaving,
    shared-predictor pollution, shared-cache pressure).
    """

    attacker: Program = field(repr=False)
    victim: FuzzProgram
    template: str
    sharing: str  # "smt" or "l2"
    channel: str  # cross-channel class the victim gadget targets
    seed: int

    @property
    def analog(self) -> str:
        return self.victim.analog


def _build_smt_attacker(seed: int, rng: random.Random) -> Program:
    """A benign co-resident context: a bounded loop of ALU work and
    loads into its own block.  No secrets, no gadgets — its job is to
    run *concurrently*, keeping the round-robin arbiter and the shared
    structures busy while the victim's window opens."""
    iterations = rng.randrange(8, 33)
    asm = Assembler("smt-fuzz-attacker-s%d" % seed)
    asm.li(R18, 0)
    asm.li(R19, iterations)
    asm.label("loop")
    _filler(asm, rng, budget=5)
    if rng.random() < 0.7:
        asm.li(R20, SMT_SLOT_ADDR + 64 * rng.randrange(0, 8))
        asm.load(R21, R20, 0)
    asm.addi(R18, R18, 1)
    asm.blt(R18, R19, "loop")
    asm.halt()
    return asm.build()


#: SMT template -> (victim gadget template, sharing mode).  The fpu
#: gadget is deliberately absent: functional units stay per-context even
#: under SMT partitioning, so that channel cannot cross.
_SMT_VICTIMS: Dict[str, Tuple[str, str]] = {
    "smt-prime-probe": ("bounds-check", "l2"),
    "smt-btb-poison": ("indirect-table", "smt"),
    "smt-cold-steer": ("cold-jump", "smt"),
}

#: SMT template names in round-robin order (seed -> template mapping).
SMT_TEMPLATES: Tuple[str, ...] = tuple(_SMT_VICTIMS)


def smt_template_for_seed(seed: int) -> str:
    """Round-robin SMT template choice."""
    return SMT_TEMPLATES[seed % len(SMT_TEMPLATES)]


def generate_smt(seed: int, template: str = "") -> SmtFuzzProgram:
    """Build the deterministic attacker/victim pair for *seed*."""
    name = template or smt_template_for_seed(seed)
    try:
        victim_template, sharing = _SMT_VICTIMS[name]
    except KeyError:
        raise ValueError(
            "unknown SMT fuzz template %r (have: %s)"
            % (name, ", ".join(SMT_TEMPLATES))
        )
    victim = generate(seed, template=victim_template)
    attacker = _build_smt_attacker(
        seed, random.Random("smt-fuzz/%d" % seed)
    )
    return SmtFuzzProgram(
        attacker=attacker,
        victim=victim,
        template=name,
        sharing=sharing,
        channel="cross-" + victim.channel,
        seed=seed,
    )


_BUILDERS: Dict[str, Callable[[int, random.Random], FuzzProgram]] = {
    "bounds-check": _build_bounds_check,
    "indirect-table": _build_indirect_table,
    "store-bypass": _build_store_bypass,
    "fp-gadget": _build_fp_gadget,
    "cold-jump": _build_cold_jump,
}

#: Template names in round-robin order (seed -> template mapping).
TEMPLATES: Tuple[str, ...] = tuple(_BUILDERS)


def template_for_seed(seed: int) -> str:
    """Round-robin template choice: every window of five consecutive
    seeds covers all four covert-channel classes."""
    return TEMPLATES[seed % len(TEMPLATES)]


def generate(seed: int, template: str = "") -> FuzzProgram:
    """Build the deterministic fuzz program for *seed*.

    Passing *template* overrides the round-robin choice (used by replay
    and the minimizer, which must regenerate exactly what a campaign
    ran).
    """
    name = template or template_for_seed(seed)
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            "unknown fuzz template %r (have: %s)"
            % (name, ", ".join(TEMPLATES))
        )
    return builder(seed, _rng_for(seed))
