"""Witness minimization: ddmin over a leaking program's instructions.

Generated fuzz programs carry training loops, warm-up loads and ALU
filler that are irrelevant to the leak they witnessed.  The minimizer
shrinks a program to (near-)1-minimal form with classic delta debugging
[Zeller/Hildebrandt 2002]: repeatedly try removing chunks of the
instruction stream, keep any removal after which the *predicate* still
holds, and halve the chunk size when no chunk can go.

Removing instructions shifts every later PC, so each candidate remaps
static branch/call targets (and the fault handler) across the removed
set; a candidate that would orphan a branch target is rejected without
simulating.  Indirect targets (JR/CALLR through a register) and PCs
baked into immediates or data words cannot be remapped statically —
removals that break them simply fail the predicate and are rolled back,
which is the ddmin contract: the predicate is the only oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.config import config_registry
from repro.isa.instruction import Instr
from repro.isa.program import Program
from repro.fuzz.taint import run_with_oracle

#: A predicate deciding whether a candidate still reproduces the bug.
Predicate = Callable[[Program], bool]


def rebuild(program: Program, keep: Sequence[int]) -> Optional[Program]:
    """*program* restricted to the instruction indices in *keep*.

    Returns ``None`` when the subset is not statically linkable: empty,
    a kept branch targets a removed instruction, or the fault handler
    was removed.
    """
    if not keep:
        return None
    keep = sorted(keep)
    new_pc = {old: new for new, old in enumerate(keep)}

    fault_handler = program.fault_handler
    if fault_handler is not None:
        if fault_handler not in new_pc:
            return None
        fault_handler = new_pc[fault_handler]

    instrs: List[Instr] = []
    for old in keep:
        instr = program.instrs[old]
        target = instr.target
        if target is not None:
            if target not in new_pc:
                return None
            target = new_pc[target]
        srcs = instr.srcs
        instrs.append(Instr(
            instr.op,
            rd=instr.rd,
            rs1=srcs[0] if len(srcs) > 0 else None,
            rs2=srcs[1] if len(srcs) > 1 else None,
            imm=instr.imm,
            target=target,
        ))
    return Program(
        instrs,
        data=program.data,
        privileged=program.privileged,
        msrs=program.msrs,
        fault_handler=fault_handler,
        initial_regs=program.initial_regs,
        name=program.name + ".min",
    )


def differential_predicate(
    secret_ranges: Tuple[Tuple[int, int], ...] = (),
    tainted_bytes: Tuple[int, ...] = (),
    channel: Optional[str] = None,
    leak_under: str = "ooo",
    blocked_under: Sequence[str] = ("full-protection",),
    max_cycles: int = 20_000,
) -> Predicate:
    """The standard witness predicate: still leaks where it should, still
    blocked where the scheme claims.

    True iff the candidate produces at least one witness (on *channel*,
    when given) under *leak_under* AND zero witnesses under every config
    in *blocked_under*.  Keeping the blocked side in the predicate means
    a minimized reproducer stays a *differential* test case, not just a
    leak.

    ``max_cycles`` is deliberately tight: removing a branch often turns
    a candidate into an endless loop, and the cap is what makes those
    candidates *cheap* rejections instead of 200k-cycle burns.  Witness
    programs finish in a few thousand cycles, far under the default.
    """
    registry = config_registry()
    leak_spec = registry[leak_under]
    blocked_specs = [registry[name] for name in blocked_under]

    def predicate(candidate: Program) -> bool:
        try:
            _, witnesses = run_with_oracle(
                candidate, leak_spec.config,
                secret_ranges=secret_ranges,
                tainted_bytes=tainted_bytes,
                max_cycles=max_cycles,
            )
            if channel is not None:
                witnesses = [w for w in witnesses if w.channel == channel]
            if not witnesses:
                return False
            for spec in blocked_specs:
                _, blocked_wits = run_with_oracle(
                    candidate, spec.config,
                    secret_ranges=secret_ranges,
                    tainted_bytes=tainted_bytes,
                    max_cycles=max_cycles,
                )
                if blocked_wits:
                    return False
            return True
        except Exception:
            # Unlinkable / diverging candidates are simply "not the bug".
            return False

    return predicate


@dataclass
class MinimizeResult:
    """Outcome of one ddmin run."""

    program: Program
    kept: Tuple[int, ...]  # surviving indices into the original program
    original_size: int
    tests: int  # predicate evaluations spent

    @property
    def size(self) -> int:
        return len(self.kept)

    def describe(self) -> str:
        return "minimized %d -> %d instructions (%d predicate runs)" % (
            self.original_size, self.size, self.tests,
        )


def minimize_program(
    program: Program,
    predicate: Predicate,
    max_tests: int = 400,
) -> MinimizeResult:
    """Shrink *program* while *predicate* keeps holding.

    ``predicate(program)`` must be True on entry (raises ``ValueError``
    otherwise — minimizing a non-reproducer silently would hand back
    garbage).  ``max_tests`` bounds predicate evaluations, so worst-case
    runtime is predictable; the result is 1-minimal only if ddmin
    converges within the budget.
    """
    if not predicate(program):
        raise ValueError(
            "predicate does not hold on the input program; nothing to "
            "minimize"
        )
    tests = 1
    kept: List[int] = list(range(len(program.instrs)))
    granularity = 2

    while len(kept) >= 2 and tests < max_tests:
        chunk = max(1, len(kept) // granularity)
        reduced = False
        start = 0
        while start < len(kept) and tests < max_tests:
            candidate_keep = kept[:start] + kept[start + chunk:]
            candidate = rebuild(program, candidate_keep)
            if candidate is not None:
                tests += 1
                if predicate(candidate):
                    kept = candidate_keep
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    # Re-test from the same offset: the next chunk now
                    # sits where the removed one was.
                    continue
            start += chunk
        if not reduced:
            if chunk == 1:
                break  # 1-minimal
            granularity = min(len(kept), granularity * 2)

    final = rebuild(program, kept)
    assert final is not None  # kept is never emptied past a passing state
    return MinimizeResult(
        program=final,
        kept=tuple(kept),
        original_size=len(program.instrs),
        tests=tests,
    )
