"""Transient taint oracle for the out-of-order core.

The oracle answers one question about a single simulation: *did secret
data influence microarchitectural state that survived a squash?*  It is
a pure observer — attached through four lightweight hook points
(``core.taint``, ``hierarchy.observer``, ``btb.observer``,
``lsq.taint_hook``), all of which are ``None`` by default so the
simulator's hot path and its idle-cycle fast-forward stay bit-identical
whether or not an oracle is attached.  The oracle never mutates
simulator state and draws no randomness.

Taint sources are configured per run: static *secret address ranges*
(any load overlapping one returns tainted data, forever) and an initial
set of dynamically *tainted bytes* (cleared when an architecturally
committed store overwrites them with untainted data — this is how the
speculative-store-bypass slot is modelled: the stale value is secret,
the public overwrite declassifies it).

Propagation follows the dynamic dataflow of the pipeline itself:

* register writes — a completing micro-op taints its physical
  destination iff any physical source was tainted at issue;
* store-to-load forwarding — a load forwarding from a store whose data
  register was tainted becomes tainted (``lsq.taint_hook``);
* address computation — a load whose *address* operand is tainted is
  itself tainted (double-dereference chains), and its cache fill is a
  transmission;
* control steering — a branch that redirects fetch using tainted
  operands (indirect target or secret-dependent direction) opens a
  *tainted-steered* window: everything younger executes under control
  taint until the branch commits or squashes.

A **candidate** is recorded whenever a tainted micro-op touches state
that squashes do not roll back: a d-cache line fill with a tainted
address (or on a tainted-steered path), a BTB install with a tainted
target, an FPU wake-up paid by a tainted FP op, or an i-cache line fill
while a tainted steer is in flight.  Candidates are *promoted* to
:class:`LeakWitness` records only when the responsible micro-op is
squashed — i.e. the update was transient yet persists — and are
discarded when it commits (architectural execution is allowed to touch
the caches).  See DESIGN.md for the full hook contract and schema.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.isa.opcodes import FUType, Opcode

#: Covert-channel classes the oracle can witness, matching the channel
#: spellings used by :data:`repro.attacks.taxonomy.IMPLEMENTED`.
CHANNELS: Tuple[str, ...] = ("d-cache", "i-cache", "btb", "fpu")

#: Structures a co-resident context can observe, per sharing mode
#: (repro.smt).  An SMT pair shares the whole L1/L2 hierarchy and the
#: BTB; a shared-L2 pair shares only the L2, but every L1 fill also
#: fills the L2, so d-/i-cache footprints are cross-visible there too.
#: The per-context functional units stay private in both modes, so the
#: fpu channel never crosses.
SHARED_CHANNELS = {
    "smt": ("d-cache", "i-cache", "btb"),
    "l2": ("d-cache", "i-cache"),
}


@dataclass(frozen=True)
class LeakWitness:
    """One observed transient leak: the witness schema (see DESIGN.md).

    ``channel``
        Covert-channel class, one of :data:`CHANNELS`.
    ``seq``
        ROB sequence number of the squashed micro-op responsible.
    ``pc``
        Program counter of that micro-op.
    ``addr``
        Channel-specific payload: filled line address (d-/i-cache),
        installed target (btb), or ``-1`` (fpu).
    ``cycle``
        Cycle at which the persistent state was touched.
    ``detail``
        Human-readable one-liner for reports.
    """

    channel: str
    seq: int
    pc: int
    addr: int
    cycle: int
    detail: str

    def to_dict(self) -> dict:
        return asdict(self)


class _Rec:
    """Per-in-flight-micro-op taint state (keyed by ROB seq)."""

    __slots__ = ("val", "addr", "data", "fwd", "ctl")

    def __init__(self):
        self.val = False  # any source register tainted at issue
        self.addr = False  # address operand tainted (loads/stores)
        self.data = False  # data operand tainted (stores)
        self.fwd = False  # forwarded from a tainted store
        self.ctl = False  # issued under an older tainted steer


class TaintOracle:
    """Observe one :class:`OutOfOrderCore` run for transient leaks.

    Attach with :meth:`attach` *before* ``core.run()``; inspect
    :attr:`witnesses` afterwards.  The oracle is single-use: attach a
    fresh instance per simulation.
    """

    def __init__(
        self,
        secret_ranges: Iterable[Tuple[int, int]] = (),
        tainted_bytes: Iterable[int] = (),
        secret_msrs: Iterable[int] = (),
        max_witnesses: int = 256,
        ctx: int = 0,
        shared_channels: Iterable[str] = (),
    ):
        #: Hardware context this oracle (and its secrets) belongs to.  In
        #: a two-context run each context gets its own oracle: the taint
        #: sources are that context's secrets, so a witness here is a
        #: transient promotion of *this* context's data.
        self.ctx = ctx
        #: Channels whose persistent state the co-resident context can
        #: observe (see :data:`SHARED_CHANNELS`).  Witnesses on these are
        #: renamed ``cross-<channel>``: the same squash-surviving update,
        #: but readable without any shared address space.
        self.shared_channels = frozenset(shared_channels)
        self.secret_ranges: Tuple[Tuple[int, int], ...] = tuple(
            (int(lo), int(hi)) for lo, hi in secret_ranges
        )
        for lo, hi in self.secret_ranges:
            if hi <= lo:
                raise ValueError("empty secret range [%#x, %#x)" % (lo, hi))
        self._mem: Set[int] = {int(a) for a in tainted_bytes}
        self.secret_msrs = frozenset(secret_msrs)
        self.max_witnesses = max_witnesses
        self.witnesses: List[LeakWitness] = []
        self.core = None
        #: Micro-op currently touching the hierarchy/BTB (set by the
        #: core around ``data_access`` and ``_complete``); fills and BTB
        #: installs with no context (commit-store write-allocate,
        #: InvisiSpec expose) are architectural and ignored.
        self.exec_ctx = None
        self._reg = bytearray()  # physical-register taint bits
        self._recs: Dict[int, _Rec] = {}
        self._steer: Dict[int, int] = {}  # seq -> pc of tainted steers
        self._cands: Dict[int, List[LeakWitness]] = {}
        self._icands: List[Tuple[int, LeakWitness]] = []

    # ------------------------------------------------------------------ #
    # Attachment.
    # ------------------------------------------------------------------ #

    def attach(self, core) -> "TaintOracle":
        """Wire the oracle into *core*'s four hook points."""
        if self.core is not None:
            raise ValueError("oracle is already attached")
        self.core = core
        self._reg = bytearray(len(core.prf.value))
        core.taint = self
        core.hierarchy.observer = self
        core.btb.observer = self
        core.lsq.taint_hook = self.on_forward
        return self

    def detach(self) -> None:
        core = self.core
        if core is not None:
            core.taint = None
            core.hierarchy.observer = None
            core.btb.observer = None
            core.lsq.taint_hook = None
        self.core = None

    # ------------------------------------------------------------------ #
    # Queries.
    # ------------------------------------------------------------------ #

    def channels(self) -> Set[str]:
        """Covert-channel classes with at least one witness."""
        return {w.channel for w in self.witnesses}

    def by_channel(self) -> Dict[str, List[LeakWitness]]:
        out: Dict[str, List[LeakWitness]] = {}
        for w in self.witnesses:
            out.setdefault(w.channel, []).append(w)
        return out

    # ------------------------------------------------------------------ #
    # Taint helpers.
    # ------------------------------------------------------------------ #

    def _secret_data(self, addr: int, size: int) -> bool:
        """Does memory ``[addr, addr+size)`` hold tainted data?"""
        end = addr + size
        for lo, hi in self.secret_ranges:
            if addr < hi and end > lo:
                return True
        if self._mem:
            for byte in range(addr, end):
                if byte in self._mem:
                    return True
        return False

    def _under_steer(self, seq: int) -> bool:
        for steer_seq in self._steer:
            if steer_seq < seq:
                return True
        return False

    def _cross(self, channel: str, detail: str) -> Tuple[str, str]:
        """Rename a witness on a shared structure to its cross-* channel."""
        if channel in self.shared_channels:
            return (
                "cross-" + channel,
                detail + " (context %d secret, structure shared with the "
                         "co-resident context)" % self.ctx,
            )
        return channel, detail

    def _cand(self, entry, channel: str, addr: int, detail: str) -> None:
        channel, detail = self._cross(channel, detail)
        witness = LeakWitness(
            channel=channel,
            seq=entry.seq,
            pc=entry.pc,
            addr=addr,
            cycle=self.core.cycle,
            detail=detail,
        )
        self._cands.setdefault(entry.seq, []).append(witness)

    def _emit(self, witnesses: List[LeakWitness]) -> None:
        room = self.max_witnesses - len(self.witnesses)
        if room > 0:
            self.witnesses.extend(witnesses[:room])

    # ------------------------------------------------------------------ #
    # Pipeline hooks (called by OutOfOrderCore when an oracle is
    # attached; every call site is a no-op when ``core.taint is None``).
    # ------------------------------------------------------------------ #

    def on_issue(self, entry, now: int) -> None:
        """A micro-op left the issue queue with its operands read."""
        reg = self._reg
        rec = _Rec()
        for src in entry.phys_srcs:
            if reg[src]:
                rec.val = True
                break
        if self._steer and self._under_steer(entry.seq):
            rec.ctl = True
        srcs = entry.phys_srcs
        if entry.is_load:
            rec.addr = bool(srcs) and bool(reg[srcs[0]])
        elif entry.is_store:
            rec.addr = bool(srcs) and bool(reg[srcs[0]])
            rec.data = len(srcs) > 1 and bool(reg[srcs[1]])
        self._recs[entry.seq] = rec
        if (
            entry.issue_penalty > 0
            and entry.instr.info.fu is FUType.FP
            and (rec.val or rec.ctl)
        ):
            # Waking a power-gated FPU is persistent, timeable state
            # (the NetSpectre channel).
            self._cand(
                entry, "fpu", -1,
                "FPU woken by a tainted FP op" if rec.val
                else "FPU woken on a tainted-steered path",
            )

    def on_forward(self, load, store) -> None:
        """LSQ forwarded *store*'s data to *load* (store-to-load)."""
        rec = self._recs.get(load.seq)
        srec = self._recs.get(store.seq)
        if rec is not None and srec is not None and srec.data:
            rec.fwd = True

    def on_load_executed(self, entry, from_memory: bool) -> None:
        """A load obtained its value (memory or forwarding path)."""
        rec = self._recs.get(entry.seq)
        if rec is None:
            return
        if rec.addr or rec.fwd:
            rec.val = True
        elif from_memory and self._secret_data(entry.addr, entry.mem_size):
            rec.val = True

    def on_complete(self, entry) -> None:
        """A micro-op finished executing (result already in the PRF)."""
        rec = self._recs.get(entry.seq)
        if rec is None:
            return
        instr = entry.instr
        if instr.op is Opcode.RDMSR and instr.imm in self.secret_msrs:
            rec.val = True
        if entry.phys_dest is not None:
            self._reg[entry.phys_dest] = 1 if rec.val else 0
        if instr.info.is_branch and rec.val:
            fetched = entry.fetched
            if fetched.unpredicted or \
                    entry.actual_next_pc != fetched.pred_next_pc:
                # Resolution redirected fetch to a tainted-derived
                # target (or direction): a tainted-steered window opens.
                self._steer[entry.seq] = entry.pc

    def on_squash(self, entry) -> None:
        """*entry* was squashed: its candidates were transient — promote."""
        seq = entry.seq
        pending = self._cands.pop(seq, None)
        if pending:
            self._emit(pending)
        self._recs.pop(seq, None)
        self._steer.pop(seq, None)
        if entry.phys_dest is not None:
            self._reg[entry.phys_dest] = 0

    def after_squash(self, boundary_seq: int) -> None:
        """All entries younger than *boundary_seq* are gone; i-cache
        fills attributed to a squashed steer were transient."""
        if not self._icands:
            return
        keep: List[Tuple[int, LeakWitness]] = []
        for steer_seq, witness in self._icands:
            if steer_seq > boundary_seq:
                self._emit([witness])
            else:
                keep.append((steer_seq, witness))
        self._icands = keep

    def on_commit(self, entry) -> None:
        """*entry* retired: its footprint is architectural, not a leak."""
        seq = entry.seq
        self._cands.pop(seq, None)
        rec = self._recs.pop(seq, None)
        if self._steer:
            self._steer.pop(seq, None)
        if self._icands:
            self._icands = [
                (s, w) for s, w in self._icands if s != seq
            ]
        if entry.is_store and rec is not None and entry.addr is not None:
            span = range(entry.addr, entry.addr + entry.mem_size)
            if rec.data:
                self._mem.update(span)
            else:
                # Declassify-by-overwrite: a committed store of public
                # data clears the dynamic taint on those bytes (static
                # secret_ranges are never declassified).
                for byte in span:
                    self._mem.discard(byte)
        if entry.prev_phys is not None:
            self._reg[entry.prev_phys] = 0

    # ------------------------------------------------------------------ #
    # Structure observers (hierarchy / BTB).
    # ------------------------------------------------------------------ #

    def on_data_fill(self, addr: int, now: int) -> None:
        """The d-side hierarchy filled a line for the current context."""
        entry = self.exec_ctx
        if entry is None:
            return  # architectural fill (commit store, expose, warmup)
        rec = self._recs.get(entry.seq)
        if rec is None or not (rec.addr or rec.ctl):
            return
        self._cand(
            entry, "d-cache", addr,
            "d-cache fill at a tainted address" if rec.addr
            else "d-cache fill on a tainted-steered path",
        )

    def on_inst_fill(self, addr: int, now: int) -> None:
        """The i-cache filled a line; attribute it to the youngest
        in-flight tainted steer, if any."""
        if not self._steer:
            return
        steer_seq = max(self._steer)
        channel, detail = self._cross(
            "i-cache", "i-cache fill on a tainted-steered path"
        )
        witness = LeakWitness(
            channel=channel,
            seq=steer_seq,
            pc=self._steer[steer_seq],
            addr=addr,
            cycle=now,
            detail=detail,
        )
        self._icands.append((steer_seq, witness))

    def on_btb_update(self, pc: int, target: int) -> None:
        """The BTB installed/refreshed ``pc -> target``."""
        entry = self.exec_ctx
        if entry is None:
            return
        rec = self._recs.get(entry.seq)
        if rec is None or not (rec.val or rec.ctl):
            return
        self._cand(
            entry, "btb", target,
            "BTB install with a tainted target" if rec.val
            else "BTB install on a tainted-steered path",
        )


def run_with_oracle(
    program,
    config=None,
    *,
    secret_ranges: Iterable[Tuple[int, int]] = (),
    tainted_bytes: Iterable[int] = (),
    secret_msrs: Iterable[int] = (),
    max_cycles: int = 400_000,
    direction_predictor: str = "tournament",
    fast_forward: bool = True,
    max_witnesses: int = 256,
):
    """Simulate *program* on the out-of-order core with a fresh oracle.

    Returns ``(outcome, witnesses)``.  This is the one-call entry point
    the campaign runner, the corpus replay test, and the CLI all share.
    """
    from repro.core import make_core

    core = make_core(
        program, config,
        direction_predictor=direction_predictor,
        fast_forward=fast_forward,
    )
    oracle = TaintOracle(
        secret_ranges=secret_ranges,
        tainted_bytes=tainted_bytes,
        secret_msrs=secret_msrs,
        max_witnesses=max_witnesses,
    )
    oracle.attach(core)
    try:
        outcome = core.run(max_cycles=max_cycles)
    finally:
        oracle.detach()
    return outcome, oracle.witnesses
