"""Witness corpus: JSON round-trip for minimized fuzz reproducers.

A corpus file is one self-contained differential test case: the full
program (instructions, data image, privileged ranges, MSRs, initial
registers), the oracle configuration it needs (secret ranges / tainted
bytes), and provenance metadata (template, channel, seed, taxonomy
analog).  ``tests/golden/fuzz_corpus/`` holds one file per covert
channel; the replay test re-runs each under the unprotected baseline
(must leak on the recorded channel) and under full NDA (must not leak).

New files are written as versioned result envelopes
(``"schema": "repro.result/v1"``, ``"kind": "fuzz-witness"`` — see
:mod:`repro.envelope`); the loader also accepts the pre-envelope layout
(``"schema": 1``) so the golden corpus keeps replaying unmodified.

Body (shared by both layouts)::

    {
      "schema": "repro.result/v1",
      "kind": "fuzz-witness",
      "meta": {"template": ..., "channel": ..., "seed": ...,
               "analog": ..., "config_name": ...},
      "oracle": {"secret_ranges": [[lo, hi], ...],
                 "tainted_bytes": [addr, ...]},
      "program": {
        "name": ...,
        "instrs": [{"op": "LOAD", "rd": 21, "rs1": 21, "imm": 0,
                    "target": null}, ...],
        "data": {"4259840": "002a..."},        # addr -> hex bytes
        "privileged": [[lo, hi], ...],
        "msrs": {"1": 99},
        "fault_handler": null,
        "initial_regs": {"2": 7}
      }
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Tuple

from repro.envelope import RESULT_SCHEMA, make_envelope
from repro.isa.instruction import Instr, Opcode
from repro.isa.program import Program

#: The pre-envelope corpus tag, still accepted on load.
LEGACY_SCHEMA = 1


def instr_to_dict(instr: Instr) -> dict:
    srcs = instr.srcs
    return {
        "op": instr.op.name,
        "rd": instr.rd,
        "rs1": srcs[0] if len(srcs) > 0 else None,
        "rs2": srcs[1] if len(srcs) > 1 else None,
        "imm": instr.imm,
        "target": instr.target,
    }


def instr_from_dict(payload: dict) -> Instr:
    return Instr(
        Opcode[payload["op"]],
        rd=payload.get("rd"),
        rs1=payload.get("rs1"),
        rs2=payload.get("rs2"),
        imm=payload.get("imm", 0),
        target=payload.get("target"),
    )


def program_to_dict(program: Program) -> dict:
    return {
        "name": program.name,
        "instrs": [instr_to_dict(i) for i in program.instrs],
        "data": {
            str(addr): blob.hex() for addr, blob in sorted(
                program.data.items()
            )
        },
        "privileged": [list(r) for r in program.privileged],
        "msrs": {str(k): v for k, v in sorted(program.msrs.items())},
        "fault_handler": program.fault_handler,
        "initial_regs": {
            str(k): v for k, v in sorted(program.initial_regs.items())
        },
    }


def program_from_dict(payload: dict) -> Program:
    return Program(
        [instr_from_dict(i) for i in payload["instrs"]],
        data={
            int(addr): bytes.fromhex(blob)
            for addr, blob in payload.get("data", {}).items()
        },
        privileged=[tuple(r) for r in payload.get("privileged", [])],
        msrs={int(k): v for k, v in payload.get("msrs", {}).items()},
        fault_handler=payload.get("fault_handler"),
        initial_regs={
            int(k): v for k, v in payload.get("initial_regs", {}).items()
        },
        name=payload.get("name", "corpus"),
    )


def save_witness_file(
    path,
    program: Program,
    *,
    meta: Dict[str, object],
    secret_ranges: Tuple[Tuple[int, int], ...] = (),
    tainted_bytes: Tuple[int, ...] = (),
) -> None:
    """Write one corpus entry (pretty-printed, key-sorted, stable)."""
    payload = make_envelope(
        "fuzz-witness",
        meta=dict(meta),
        oracle={
            "secret_ranges": [list(r) for r in secret_ranges],
            "tainted_bytes": list(tainted_bytes),
        },
        program=program_to_dict(program),
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


def load_witness_file(path) -> dict:
    """Load one corpus entry.

    Returns ``{"program": Program, "meta": dict,
    "secret_ranges": tuple, "tainted_bytes": tuple}``.
    """
    payload = json.loads(Path(path).read_text())
    schema = payload.get("schema")
    if schema == RESULT_SCHEMA:
        if payload.get("kind") != "fuzz-witness":
            raise ValueError(
                "envelope kind %r is not a corpus entry in %s"
                % (payload.get("kind"), path)
            )
    elif schema != LEGACY_SCHEMA:
        raise ValueError(
            "unsupported corpus schema %r in %s" % (schema, path)
        )
    oracle = payload.get("oracle", {})
    return {
        "program": program_from_dict(payload["program"]),
        "meta": payload.get("meta", {}),
        "secret_ranges": tuple(
            tuple(r) for r in oracle.get("secret_ranges", [])
        ),
        "tainted_bytes": tuple(oracle.get("tainted_bytes", [])),
    }
