"""Differential fuzzing campaigns over the protection-scheme registry.

A campaign runs every generated program under every (out-of-order)
registry configuration and compares the taint oracle's leak witnesses
against each scheme's *claims*.  The claims are not hand-maintained:
:func:`claimed_blocked_channels` derives them from the attack taxonomy's
``expected_leak`` ground truth — a channel class is claimed-blocked by a
scheme exactly when the taxonomy says every implemented attack on that
channel is blocked (paper Table 2, folded down to channels).

A witness on a claimed-blocked channel is a :class:`Counterexample`:
either the scheme's implementation has a hole or the oracle has a false
positive — both are bugs worth a minimized reproducer.  Witnesses on
unclaimed channels are expected signal (e.g. InvisiSpec leaking through
the BTB) and are kept for the per-channel coverage report.

Campaigns run through the suite engine's parallel scheduler
(:func:`repro.engine.run_jobs`) with the result cache disabled — fuzz
jobs are cheap (hundreds of instructions) and novelty-seeking, so disk
caching would only add I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attacks.taxonomy import (
    CROSS_CHANNELS,
    CROSS_IMPLEMENTED,
    IMPLEMENTED,
    expected_leak,
)
from repro.config import ConfigSpec, config_registry
from repro.fuzz.generator import (
    generate,
    generate_smt,
    smt_template_for_seed,
    template_for_seed,
)
from repro.fuzz.taint import (
    CHANNELS,
    SHARED_CHANNELS,
    LeakWitness,
    run_with_oracle,
)

#: Baseline configuration a witness must reproduce under to count as
#: channel coverage (the unprotected out-of-order core).
BASELINE = "ooo"


def fuzz_configs() -> List[str]:
    """Registry configurations worth fuzzing: every out-of-order scheme.

    The in-order core is excluded — it has no transient window by
    construction, so fuzzing it only burns cycles.
    """
    return [
        name for name, spec in config_registry().items() if not spec.in_order
    ]


def claimed_blocked_channels(spec: ConfigSpec) -> Tuple[str, ...]:
    """Channel classes *spec* claims to block, from taxonomy ground truth.

    A channel is claimed-blocked iff every implemented attack using that
    channel has ``expected_leak(attack, spec) == False``.  This is
    deliberately conservative: a scheme that blocks some-but-not-all
    d-cache attacks (e.g. NDA permissive, which stops Spectre but not
    Meltdown/LazyFP) claims nothing for d-cache, so expected witnesses
    there never count as counterexamples.
    """
    claimed = []
    for channel in CHANNELS:
        attacks = [a for a in IMPLEMENTED if a.channel == channel]
        if attacks and not any(
            expected_leak(a, spec.config, in_order=spec.in_order)
            for a in attacks
        ):
            claimed.append(channel)
    return tuple(claimed)


def claimed_blocked_cross_channels(spec: ConfigSpec) -> Tuple[str, ...]:
    """Cross-context channels *spec* claims to block, same derivation as
    :func:`claimed_blocked_channels` but over the cross-context taxonomy.

    cross-i-cache has no dedicated PoC, so no scheme claims it and a
    cross-i-cache witness is never a counterexample — expected signal
    only.
    """
    claimed = []
    for channel in CROSS_CHANNELS:
        attacks = [a for a in CROSS_IMPLEMENTED if a.channel == channel]
        if attacks and not any(
            expected_leak(a, spec.config) for a in attacks
        ):
            claimed.append(channel)
    return tuple(claimed)


@dataclass(frozen=True)
class FuzzRunResult:
    """One (seed, config) fuzz run — picklable, returned by workers."""

    seed: int
    config_name: str
    template: str
    channel: str  # the template's target channel class
    analog: str
    witnesses: Tuple[LeakWitness, ...]
    cycles: int

    @property
    def leaked(self) -> bool:
        return bool(self.witnesses)

    def witness_channels(self) -> Tuple[str, ...]:
        return tuple(sorted({w.channel for w in self.witnesses}))

    def to_dict(self) -> dict:
        """JSON form (checkpoint manifests round-trip through this)."""
        return {
            "seed": self.seed,
            "config_name": self.config_name,
            "template": self.template,
            "channel": self.channel,
            "analog": self.analog,
            "witnesses": [w.to_dict() for w in self.witnesses],
            "cycles": self.cycles,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FuzzRunResult":
        return cls(
            seed=int(payload["seed"]),
            config_name=payload["config_name"],
            template=payload["template"],
            channel=payload["channel"],
            analog=payload["analog"],
            witnesses=tuple(
                LeakWitness(**w) for w in payload["witnesses"]
            ),
            cycles=int(payload["cycles"]),
        )


@dataclass(frozen=True)
class FuzzJob:
    """One fuzz execution for the engine scheduler (picklable)."""

    seed: int
    config_name: str
    template: str
    max_cycles: int = 400_000

    @property
    def coordinates(self) -> tuple:
        return (self.seed, self.config_name)

    def describe(self) -> str:
        return "fuzz seed %d [%s] on %s" % (
            self.seed, self.template, self.config_name,
        )

    def execute(self) -> FuzzRunResult:
        """Regenerate the program and run it under the taint oracle.

        Regenerating in the worker (rather than shipping the program)
        keeps the job tiny on the wire; generation is deterministic, so
        every worker builds the identical program.
        """
        return run_seed(
            self.seed,
            self.config_name,
            template=self.template,
            max_cycles=self.max_cycles,
        )


@dataclass(frozen=True)
class SmtFuzzJob:
    """One two-context fuzz execution for the engine scheduler."""

    seed: int
    config_name: str
    template: str
    max_cycles: int = 400_000

    @property
    def coordinates(self) -> tuple:
        return (self.seed, self.config_name)

    def describe(self) -> str:
        return "smt-fuzz seed %d [%s] on %s" % (
            self.seed, self.template, self.config_name,
        )

    def execute(self) -> FuzzRunResult:
        return run_smt_seed(
            self.seed,
            self.config_name,
            template=self.template,
            max_cycles=self.max_cycles,
        )


def run_smt_seed(
    seed: int,
    config_name: str,
    template: str = "",
    max_cycles: int = 400_000,
) -> FuzzRunResult:
    """Run one fuzz seed as a co-resident pair under one configuration.

    The victim context (context 1) gets the taint oracle, configured
    with the pair's sharing mode so squash-surviving footprints on
    shared structures surface as ``cross-*`` witnesses.  The attacker
    context carries no secrets and needs no oracle.
    """
    from dataclasses import replace

    from repro.fuzz.taint import TaintOracle
    from repro.smt import SmtMachine

    spec = config_registry()[config_name]
    pair = generate_smt(seed, template=template)
    config = replace(
        spec.config, num_contexts=2, sharing=pair.sharing,
        engine="reference",
    ).validate()
    machine = SmtMachine([pair.attacker, pair.victim.program], config)
    oracle = TaintOracle(
        secret_ranges=pair.victim.secret_ranges,
        tainted_bytes=pair.victim.tainted_bytes,
        ctx=1,
        shared_channels=SHARED_CHANNELS[pair.sharing],
    )
    oracle.attach(machine.cores[1])
    try:
        outcomes = machine.run(max_cycles=max_cycles)
    finally:
        oracle.detach()
    return FuzzRunResult(
        seed=seed,
        config_name=config_name,
        template=pair.template,
        channel=pair.channel,
        analog=pair.analog,
        witnesses=tuple(oracle.witnesses),
        cycles=outcomes[1].stats.cycles,
    )


def run_seed(
    seed: int,
    config_name: str,
    template: str = "",
    max_cycles: int = 400_000,
) -> FuzzRunResult:
    """Run one fuzz seed under one registry configuration."""
    spec = config_registry()[config_name]
    fp = generate(seed, template=template)
    outcome, witnesses = run_with_oracle(
        fp.program,
        spec.config,
        secret_ranges=fp.secret_ranges,
        tainted_bytes=fp.tainted_bytes,
        max_cycles=max_cycles,
    )
    return FuzzRunResult(
        seed=seed,
        config_name=config_name,
        template=fp.template,
        channel=fp.channel,
        analog=fp.analog,
        witnesses=tuple(witnesses),
        cycles=outcome.stats.cycles,
    )


@dataclass(frozen=True)
class Counterexample:
    """A witness under a scheme that claims to block that channel."""

    seed: int
    config_name: str
    template: str
    witness: LeakWitness

    def describe(self) -> str:
        return (
            "seed %d [%s]: %s witness under %s (claimed blocked) — "
            "pc=%#x addr=%#x cycle=%d"
            % (
                self.seed, self.template, self.witness.channel,
                self.config_name, self.witness.pc, self.witness.addr,
                self.witness.cycle,
            )
        )


@dataclass
class CampaignResult:
    """Everything a differential campaign learned."""

    results: List[FuzzRunResult] = field(default_factory=list)
    counterexamples: List[Counterexample] = field(default_factory=list)
    #: seeds whose simulation raised, with the failure reason
    failures: List[Tuple[str, str]] = field(default_factory=list)
    #: scheduler accounting for the run (EngineStats; backend, resumed,
    #: executed counts — preemption tests assert on these)
    engine: object = None

    def baseline_channel_counts(self) -> Dict[str, int]:
        """Witness count per channel class under the unprotected core.

        Cross-context campaigns produce ``cross-*`` channels beyond the
        single-context :data:`CHANNELS` set; those appear as extra keys.
        """
        counts = {channel: 0 for channel in CHANNELS}
        for result in self.results:
            if result.config_name != BASELINE:
                continue
            for witness in result.witnesses:
                counts[witness.channel] = counts.get(witness.channel, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        return not self.counterexamples and not self.failures

    def describe(self) -> str:
        lines = []
        seeds = sorted({r.seed for r in self.results})
        configs = sorted({r.config_name for r in self.results})
        lines.append(
            "campaign: %d seeds x %d configs = %d runs"
            % (len(seeds), len(configs), len(self.results))
        )
        counts = self.baseline_channel_counts()
        channel_order = list(CHANNELS) + sorted(
            set(counts) - set(CHANNELS)
        )
        lines.append(
            "baseline (%s) witnesses by channel: %s"
            % (
                BASELINE,
                "  ".join(
                    "%s=%d" % (channel, counts[channel])
                    for channel in channel_order
                ),
            )
        )
        leaks_by_config: Dict[str, int] = {}
        for result in self.results:
            if result.leaked:
                leaks_by_config[result.config_name] = (
                    leaks_by_config.get(result.config_name, 0) + 1
                )
        for name in configs:
            lines.append(
                "  %-20s %d/%d seeds leaked"
                % (name, leaks_by_config.get(name, 0), len(seeds))
            )
        if self.counterexamples:
            lines.append("COUNTEREXAMPLES (%d):" % len(self.counterexamples))
            for cex in self.counterexamples:
                lines.append("  " + cex.describe())
        else:
            lines.append("no counterexamples")
        if self.failures:
            lines.append("failures (%d):" % len(self.failures))
            for what, why in self.failures:
                lines.append("  %s: %s" % (what, why))
        return "\n".join(lines)


def _execute_jobs_lockstep(fuzz_jobs, windows: int, progress=None):
    """In-process lockstep alternative to the engine's worker pool.

    Batches *windows* fuzz jobs at a time: regenerates every program in
    the batch, builds one core + taint oracle per job (all setup paid up
    front), then drives the cores round-robin through the lockstep
    runner.  Results are bit-identical to ``job.execute()`` — the cores
    share nothing — and come back in job order.  On a single-CPU host
    this beats the fork pool: no worker spawn, no pickling, and every
    run uses the core's hoisted ``run_slice`` loop.

    Returns ``(results, failures, stats)`` shaped like ``run_jobs``'s.
    A failing batch falls back to executing its jobs one by one, so a
    poisoned seed degrades that batch, not the campaign.
    """
    import time as _time

    from repro.core import make_core
    from repro.engine.jobs import JobResult, execute_job
    from repro.engine.scheduler import EngineStats, JobFailure
    from repro.fuzz.taint import TaintOracle
    from repro.harness.multiwindow import run_cores_lockstep

    from repro.obs.spans import maybe_tracer

    tracer = maybe_tracer()
    start_wall = _time.perf_counter()
    total = len(fuzz_jobs)
    registry = config_registry()
    results, failures = [], []
    for base in range(0, len(fuzz_jobs), windows):
        batch = fuzz_jobs[base:base + windows]
        batch_start_unix = _time.time()
        try:
            fps = [
                generate(job.seed, template=job.template) for job in batch
            ]
            cores, oracles = [], []
            try:
                for job, fp in zip(batch, fps):
                    core = make_core(
                        fp.program, registry[job.config_name].config,
                    )
                    oracle = TaintOracle(
                        secret_ranges=fp.secret_ranges,
                        tainted_bytes=fp.tainted_bytes,
                    )
                    oracle.attach(core)
                    cores.append(core)
                    oracles.append(oracle)
                outcomes = run_cores_lockstep(
                    cores, max_cycles=batch[0].max_cycles,
                )
            finally:
                for oracle in oracles:
                    oracle.detach()
            for job, fp, oracle, outcome in zip(
                batch, fps, oracles, outcomes
            ):
                run = FuzzRunResult(
                    seed=job.seed,
                    config_name=job.config_name,
                    template=fp.template,
                    channel=fp.channel,
                    analog=fp.analog,
                    witnesses=tuple(oracle.witnesses),
                    cycles=outcome.stats.cycles,
                )
                result = JobResult(
                    job=job, window=run,
                    elapsed=outcome.stats.sim_wall_seconds,
                )
                results.append(result)
                if tracer is not None:
                    # Lockstep batches interleave their seeds, so the
                    # span is a retroactive batch-wide interval tagged
                    # with the seed's own outcome.
                    tracer.record(
                        "fuzz.seed", batch_start_unix, _time.time(),
                        attrs={
                            "seed": job.seed,
                            "config": job.config_name,
                            "template": fp.template,
                            "witnesses": len(run.witnesses),
                            "cycles": run.cycles,
                        },
                    )
                if progress is not None:
                    progress(len(results) + len(failures), total, result)
        except Exception:
            # Localize the failure: rerun this batch serially so only
            # the genuinely broken job(s) land in `failures`.
            for job in batch:
                try:
                    result = execute_job(job)
                except Exception as error:  # mirror the engine's shape
                    failures.append(JobFailure(job=job, error=repr(error)))
                    if progress is not None:
                        progress(
                            len(results) + len(failures), total, None,
                        )
                else:
                    results.append(result)
                    if progress is not None:
                        progress(
                            len(results) + len(failures), total, result,
                        )
    stats = EngineStats(
        jobs=len(fuzz_jobs),
        executed=len(results),
        failures=len(failures),
        workers=1,
        backend="lockstep",
        wall_seconds=_time.perf_counter() - start_wall,
        sim_seconds=sum(r.elapsed for r in results),
    )
    return results, failures, stats


def run_campaign(
    seeds: Sequence[int],
    config_names: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    progress=None,
    max_cycles: int = 400_000,
    backend=None,
    backend_options: Optional[dict] = None,
    checkpoint: Optional[str] = None,
    checkpoint_interval: int = 25,
    resume=None,
    windows: int = 1,
    smt: bool = False,
) -> CampaignResult:
    """Run the differential campaign: ``seeds x configs`` fuzz runs.

    With ``smt=True`` every seed runs as a co-resident attacker/victim
    pair on the two-context machine (repro.smt) and witnesses are judged
    against each scheme's *cross-context* claims
    (:func:`claimed_blocked_cross_channels`).  SMT pairs run through the
    reference engine's two-context lockstep already, so ``windows > 1``
    does not combine with ``smt``.

    Executes through the suite engine's parallel scheduler (fork-based
    workers, deterministic results, serial fallback on worker failure);
    ``jobs`` has the same meaning as the engine's ``--jobs`` and
    ``backend``/``checkpoint``/``resume`` as ``run_jobs``'s.  With
    ``checkpoint`` a preempted campaign leaves a resumable manifest
    behind; rerunning the same seeds/configs with ``resume`` replays the
    completed runs and executes only the remainder, converging on the
    identical witness corpus (fuzz jobs are deterministic).

    ``windows > 1`` batches that many runs at a time through the
    in-process lockstep runner instead of the engine — bit-identical
    results, no worker pool; the fast path on single-CPU hosts.  It is
    mutually exclusive with the engine-only knobs (``backend``,
    ``checkpoint``/``resume``).
    """
    from repro.engine import run_jobs  # deferred: engine pulls in pools

    if windows > 1 and (backend or checkpoint or resume):
        raise ValueError(
            "windows > 1 runs in-process and cannot combine with "
            "backend/checkpoint/resume"
        )
    if smt and windows > 1:
        raise ValueError(
            "smt campaigns drive the two-context machine directly and "
            "cannot combine with the lockstep windows runner"
        )
    names = list(config_names) if config_names else fuzz_configs()
    registry = config_registry()
    claims_for = (
        claimed_blocked_cross_channels if smt else claimed_blocked_channels
    )
    claimed = {
        name: frozenset(claims_for(registry[name])) for name in names
    }
    if smt:
        fuzz_jobs = [
            SmtFuzzJob(
                seed=seed,
                config_name=name,
                template=smt_template_for_seed(seed),
                max_cycles=max_cycles,
            )
            for seed in seeds
            for name in names
        ]
    else:
        fuzz_jobs = [
            FuzzJob(
                seed=seed,
                config_name=name,
                template=template_for_seed(seed),
                max_cycles=max_cycles,
            )
            for seed in seeds
            for name in names
        ]
    def _execute():
        if windows > 1:
            return _execute_jobs_lockstep(
                fuzz_jobs, windows, progress=progress,
            )
        _register_checkpoint_codec()
        return run_jobs(
            fuzz_jobs, jobs=jobs, cache=None, progress=progress,
            backend=backend, backend_options=backend_options,
            checkpoint=checkpoint, checkpoint_interval=checkpoint_interval,
            checkpoint_label="fuzz", resume=resume,
        )

    from repro.obs.spans import maybe_tracer

    tracer = maybe_tracer()
    if tracer is None:
        results, failures, stats = _execute()
    else:
        with tracer.span(
            "fuzz.campaign",
            attrs={"runs": len(fuzz_jobs), "configs": len(names),
                   "smt": bool(smt), "windows": windows},
        ) as span:
            results, failures, stats = _execute()
            span.attrs["failures"] = len(failures)

    campaign = CampaignResult(engine=stats)
    for job_result in results:
        run: FuzzRunResult = job_result.window
        campaign.results.append(run)
        blocked = claimed[run.config_name]
        for witness in run.witnesses:
            if witness.channel in blocked:
                campaign.counterexamples.append(Counterexample(
                    seed=run.seed,
                    config_name=run.config_name,
                    template=run.template,
                    witness=witness,
                ))
    for failure in failures:
        campaign.failures.append(
            (failure.job.describe(), failure.error)
        )
    return campaign


def _register_checkpoint_codec() -> None:
    """Teach checkpoint manifests to round-trip FuzzRunResult payloads.

    Deferred to campaign start (rather than module import) so loading
    this module for witness replay stays engine-free; any resume path
    necessarily goes through :func:`run_campaign` first.
    """
    from repro.engine.checkpoint import register_result_codec

    register_result_codec(
        "FuzzRunResult",
        lambda result: result.to_dict(),
        FuzzRunResult.from_dict,
    )
