"""The structured event bus.

The bus is the single object the simulator's observer slots point at.
Every emit site in the pipeline follows the same two-level guard the
taint oracle established (PR 4):

    obs = self.obs
    if obs is not None and obs.instr_retire is not None:
        obs.instr_retire(entry, now)

* ``self.obs is None`` (the default) — one predicate per site, the
  simulation is bit-identical to a build without the bus, and the
  idle-cycle fast-forward is unaffected.  This is the **detached**
  contract, pinned by ``tests/test_obs_bus.py``.
* attached with no subscriber for that event — the per-event attribute
  is still ``None``, so the site costs two attribute loads and a test.
* attached with exactly one subscriber — the attribute *is* the bound
  subscriber method: dispatch is a direct call, no fan-out loop.
* attached with several subscribers — the attribute is a small fan-out
  closure over the subscriber methods.

Subscribers are duck-typed: any object defining one or more of the
:data:`EVENT_NAMES` methods receives those events.  Observers must be
pure — they may read simulator state but never mutate it; bit-identity
with the bus attached is part of the contract and is pinned by tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Every event the bus can carry, with the payload each site sends.
#: (This tuple is the machine-readable half of the taxonomy table in
#: DESIGN.md §3.5; keep the two in sync.)
EVENT_NAMES = (
    # out-of-order core lifecycle -------------------------------------- #
    "instr_dispatch",   # (entry, now)   micro-op entered ROB/IQ/LSQ
    "instr_issue",      # (entry, now)   left the issue queue
    "instr_complete",   # (entry, now)   result computed / data returned
    "instr_broadcast",  # (entry, now)   result tag woke dependents
    "instr_defer",      # (entry, now)   broadcast deferred (NDA / ports)
    "instr_retire",     # (entry, now)   architecturally committed
    "instr_squash",     # (entry, now)   discarded on the wrong path
    # in-order core lifecycle ------------------------------------------ #
    "inorder_step",     # (pc, instr, start_cycle, end_cycle)
    # protection schemes ----------------------------------------------- #
    "load_validate",    # (entry, now, latency)  InvisiSpec validation
    "load_expose",      # (entry, now)           InvisiSpec exposure
    # memory hierarchy ------------------------------------------------- #
    "data_fill",        # (addr, now)    demand miss filled a d-side line
    "inst_fill",        # (addr, now)    demand miss filled an i-side line
    # load/store queue ------------------------------------------------- #
    "store_forward",    # (load, store)  store-to-load forwarding
    # frontend --------------------------------------------------------- #
    "btb_update",       # (pc, target)   BTB install/refresh
)


class EventBus:
    """Typed event dispatch plus the periodic-sampler clock.

    Construct, optionally :meth:`subscribe` observers and
    :meth:`add_sampler` samplers, then :meth:`attach` to a core.  All
    slots the bus occupies are restored to ``None`` by :meth:`detach`.
    """

    def __init__(self) -> None:
        self._subscribers: List[object] = []
        self._handlers: Dict[str, List] = {name: [] for name in EVENT_NAMES}
        for name in EVENT_NAMES:
            setattr(self, name, None)
        self._samplers: List[object] = []
        #: Next cycle at which :meth:`sample` must run; ``inf`` while no
        #: sampler is registered, so the per-cycle check in ``step()``
        #: never fires.
        self.sample_due: float = float("inf")
        self._core = None

    # ------------------------------------------------------------------ #
    # Subscription.
    # ------------------------------------------------------------------ #

    def subscribe(self, subscriber: object):
        """Register *subscriber* for every event method it defines."""
        self._subscribers.append(subscriber)
        for name in EVENT_NAMES:
            method = getattr(subscriber, name, None)
            if method is None or not callable(method):
                continue
            handlers = self._handlers[name]
            handlers.append(method)
            if len(handlers) == 1:
                setattr(self, name, method)
            else:
                setattr(self, name, _fan_out(tuple(handlers)))
        return subscriber

    def add_sampler(self, sampler: object, start_cycle: int = 0):
        """Register a periodic sampler (``interval`` attribute, cycles;
        ``on_sample(core, now)`` callback)."""
        sampler._next_due = start_cycle
        self._samplers.append(sampler)
        self.sample_due = min(s._next_due for s in self._samplers)
        return sampler

    def sample(self, core, now: int) -> None:
        """Run every due sampler and advance the shared deadline.

        Called by the cores when ``now >= sample_due`` — including once
        at the end of a fast-forward jump, so quiescent spans collapse
        to a single sample at the landing cycle (the sampled state is
        frozen across the span anyway; see the overhead contract).
        """
        for sampler in self._samplers:
            if now >= sampler._next_due:
                sampler.on_sample(core, now)
                sampler._next_due = now + sampler.interval
        self.sample_due = min(s._next_due for s in self._samplers)

    # ------------------------------------------------------------------ #
    # Attachment.
    # ------------------------------------------------------------------ #

    def attach(self, core) -> "EventBus":
        """Occupy the observer slots of *core* and its subsystems.

        Works for both core classes: the out-of-order core exposes
        LSQ/BTB slots, the in-order core only the hierarchy's.
        """
        self._core = core
        core.obs = self
        hierarchy = getattr(core, "hierarchy", None)
        if hierarchy is not None:
            hierarchy.obs = self
        lsq = getattr(core, "lsq", None)
        if lsq is not None:
            lsq.obs = self
        btb = getattr(core, "btb", None)
        if btb is not None:
            btb.obs = self
        return self

    def detach(self) -> None:
        """Release every slot taken by :meth:`attach`."""
        core = self._core
        if core is None:
            return
        if getattr(core, "obs", None) is self:
            core.obs = None
        for sub in ("hierarchy", "lsq", "btb"):
            owner = getattr(core, sub, None)
            if owner is not None and getattr(owner, "obs", None) is self:
                owner.obs = None
        self._core = None

    @property
    def core(self):
        """The core this bus is attached to (None when detached)."""
        return self._core


def _fan_out(handlers):
    def emit(*args):
        for handler in handlers:
            handler(*args)
    return emit


def ensure_bus(core) -> EventBus:
    """Return the core's attached :class:`EventBus`, creating one if the
    observer slot is empty."""
    obs = getattr(core, "obs", None)
    if isinstance(obs, EventBus):
        return obs
    return EventBus().attach(core)
