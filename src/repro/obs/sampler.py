"""Periodic in-simulation metrics sampler.

A :class:`MetricsSampler` registered on an :class:`~repro.obs.bus.EventBus`
records a time series of structural occupancy every ``interval`` cycles:
ROB/IQ/LQ/SQ entries in use, outstanding off-chip misses, and the
deltas of the deferred-broadcast counters since the previous sample
(i.e. deferred broadcasts per sampling window, "per kilocycle" at the
default interval).

The sampler never participates in the idle-cycle fast-forward decision:
when the core jumps over a quiescent span, all samples that would have
landed inside the span collapse to a single one at the landing cycle.
That is lossless for occupancy (the sampled state is frozen across a
quiescent span by definition) and keeps the fast-forward bit-identical.

Sample rows are plain dicts so the series embeds directly in manifests
and converts to Perfetto counter tracks
(:func:`repro.obs.perfetto.counter_trace_events`).
"""

from __future__ import annotations

from typing import Dict, List

#: Columns of every sample row, in emission order.
SAMPLE_COLUMNS = (
    "cycle",
    "rob",             # reorder-buffer occupancy
    "iq",              # issue-queue occupancy
    "lq",              # load-queue occupancy
    "sq",              # store-queue occupancy
    "outstanding_misses",      # off-chip misses in flight
    "deferred_broadcasts",     # NDA defers since previous sample
    "port_conflicts",          # port-conflict defers since previous sample
)


class MetricsSampler:
    """Time-series sampler for pipeline occupancy.

    Parameters
    ----------
    interval:
        Sampling period in cycles (default: one kilocycle).
    limit:
        Maximum rows retained; sampling keeps running but the series
        stops growing once the cap is reached (bounded memory on long
        runs).
    """

    def __init__(self, interval: int = 1000, limit: int = 100_000) -> None:
        if interval < 1:
            raise ValueError("sampling interval must be positive")
        self.interval = interval
        self.limit = limit
        self.rows: List[Dict[str, int]] = []
        self._prev_deferred = 0
        self._prev_conflicts = 0

    def on_sample(self, core, now: int) -> None:
        """Record one row.  Works on both core classes — structures the
        in-order core lacks read as zero occupancy."""
        stats = core.stats
        deferred = stats.deferred_broadcasts
        conflicts = stats.broadcast_port_conflicts
        if len(self.rows) < self.limit:
            rob = getattr(core, "rob", None)
            iq = getattr(core, "iq", None)
            lsq = getattr(core, "lsq", None)
            hierarchy = getattr(core, "hierarchy", None)
            self.rows.append({
                "cycle": now,
                "rob": len(rob) if rob is not None else 0,
                "iq": len(iq) if iq is not None else 0,
                "lq": len(lsq.loads) if lsq is not None else 0,
                "sq": len(lsq.stores) if lsq is not None else 0,
                "outstanding_misses": (
                    hierarchy.outstanding_offchip(now)
                    if hierarchy is not None else 0
                ),
                "deferred_broadcasts": deferred - self._prev_deferred,
                "port_conflicts": conflicts - self._prev_conflicts,
            })
        self._prev_deferred = deferred
        self._prev_conflicts = conflicts

    def series(self, column: str) -> List[int]:
        """One column of the time series, by name."""
        if column not in SAMPLE_COLUMNS:
            raise KeyError(
                "unknown sample column %r (have: %s)"
                % (column, ", ".join(SAMPLE_COLUMNS))
            )
        return [row[column] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)
