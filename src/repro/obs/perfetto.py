"""Chrome trace-event (Perfetto) JSON export.

Converts the repo's telemetry into the `Chrome trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_,
loadable at https://ui.perfetto.dev or ``chrome://tracing``:

* :func:`lifecycle_trace_events` — per-instruction pipeline spans from
  :class:`~repro.debug.trace.TraceRecord` rows: ``fetch`` / ``queue`` /
  ``execute`` / ``commit`` slices, an explicit ``defer`` slice for the
  NDA complete-to-broadcast gap, and flow arrows from a load's execute
  slice to its InvisiSpec validate/expose point.
* :func:`counter_trace_events` — Perfetto counter tracks from a
  :class:`~repro.obs.sampler.MetricsSampler` time series.
* :func:`engine_trace_events` — queue-wait and execute spans for suite
  engine jobs (cache hits become instants).

The convention throughout: **1 simulated cycle = 1 µs** of trace time
(the format's ``ts``/``dur`` unit), so cycle counts read directly off
the Perfetto ruler.  Engine spans use real microseconds.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional

#: pid used for simulated-pipeline tracks.
PIPELINE_PID = 1
#: pid used for suite-engine tracks.
ENGINE_PID = 2

_STAGES = (
    # (slice name, start attr, end attr)
    ("fetch", "fetch", "dispatch"),
    ("queue", "dispatch", "issue"),
    ("execute", "issue", "complete"),
    ("commit", "broadcast", "retire"),
)


def _span(record) -> Optional[tuple]:
    """(start, end) cycles of a record, or None if it never progressed."""
    cycles = [c for c in (record.fetch, record.dispatch, record.issue,
                          record.complete, record.broadcast, record.retire)
              if c is not None and c >= 0]
    if not cycles:
        return None
    return min(cycles), max(cycles)


def lifecycle_trace_events(
    records: Iterable,
    pid: int = PIPELINE_PID,
    max_lanes: int = 64,
    process_name: str = "simulated pipeline",
) -> List[dict]:
    """Trace events for per-instruction lifecycle records.

    Lanes (``tid``) are assigned greedily: each instruction takes the
    first lane that is free at its fetch cycle, so overlapping
    instructions render stacked and the lane count approximates the
    occupancy of the window.
    """
    events: List[dict] = []
    lane_free_at: List[int] = []
    flow_id = 0
    for record in records:
        span = _span(record)
        if span is None:
            continue
        start, end = span
        tid = None
        for lane, free_at in enumerate(lane_free_at):
            if free_at <= start:
                tid = lane
                break
        if tid is None:
            if len(lane_free_at) < max_lanes:
                lane_free_at.append(0)
                tid = len(lane_free_at) - 1
            else:
                tid = min(range(len(lane_free_at)),
                          key=lane_free_at.__getitem__)
        lane_free_at[tid] = end + 1

        name = record.disasm
        if record.squashed:
            name = "[squashed] " + name
        args = {"seq": record.seq, "pc": record.pc}
        for stage, start_attr, end_attr in _STAGES:
            lo = getattr(record, start_attr)
            hi = getattr(record, end_attr)
            if lo is None or hi is None or lo < 0 or hi < 0 or hi < lo:
                continue
            events.append({
                "ph": "X", "pid": pid, "tid": tid,
                "name": "%s %s" % (stage, name),
                "cat": "pipeline," + stage,
                "ts": lo, "dur": max(hi - lo, 1), "args": args,
            })
        # NDA's deferral: the result sat completed-but-unbroadcast.
        if (record.complete >= 0 and record.broadcast >= 0
                and record.broadcast > record.complete + 1):
            events.append({
                "ph": "X", "pid": pid, "tid": tid,
                "name": "defer " + name,
                "cat": "pipeline,defer,nda",
                "ts": record.complete + 1,
                "dur": record.broadcast - record.complete - 1,
                "args": dict(args, deferred_cycles=(
                    record.broadcast - record.complete - 1)),
            })
        if record.squashed:
            events.append({
                "ph": "i", "pid": pid, "tid": tid, "s": "t",
                "name": "squash " + name, "cat": "pipeline,squash",
                "ts": end, "args": args,
            })
        # InvisiSpec validate/expose: flow arrow from the execute slice
        # to the visibility point on a dedicated lane.
        for kind in ("validate", "expose"):
            cycle = getattr(record, kind, -1)
            if cycle is None or cycle < 0:
                continue
            flow_id += 1
            anchor = record.issue if record.issue >= 0 else start
            events.append({
                "ph": "s", "pid": pid, "tid": tid, "id": flow_id,
                "name": kind, "cat": "invisispec",
                "ts": max(anchor, 0),
            })
            events.append({
                "ph": "f", "pid": pid, "tid": tid, "bp": "e",
                "id": flow_id, "name": kind, "cat": "invisispec",
                "ts": cycle,
            })
            events.append({
                "ph": "i", "pid": pid, "tid": tid, "s": "t",
                "name": "%s %s" % (kind, name), "cat": "invisispec",
                "ts": cycle, "args": args,
            })
    events.extend(_process_meta(pid, process_name))
    return events


def smt_trace_events(
    records_by_context: Iterable[Iterable],
    base_pid: int = PIPELINE_PID,
    max_lanes: int = 64,
) -> List[dict]:
    """Per-context pipeline lanes for a co-residency (:mod:`repro.smt`) run.

    *records_by_context* holds one record sequence per hardware context
    (e.g. from a :class:`~repro.debug.trace.PipelineTracer` attached to
    each of ``SmtMachine.cores``).  Context ``i`` becomes Perfetto
    process ``base_pid + i`` named ``context i pipeline``, so the two
    contexts render as stacked process groups on a shared cycle ruler —
    cross-context interleaving reads directly off the trace.
    """
    events: List[dict] = []
    for ctx, records in enumerate(records_by_context):
        events.extend(lifecycle_trace_events(
            records,
            pid=base_pid + ctx,
            max_lanes=max_lanes,
            process_name="context %d pipeline" % ctx,
        ))
    return events


#: Sampler columns grouped into Perfetto counter tracks.
_COUNTER_TRACKS = (
    ("occupancy", ("rob", "iq", "lq", "sq")),
    ("memory", ("outstanding_misses",)),
    ("defers/window", ("deferred_broadcasts", "port_conflicts")),
)


def counter_trace_events(sampler, pid: int = PIPELINE_PID) -> List[dict]:
    """Perfetto counter tracks from a sampler's time series."""
    events: List[dict] = []
    for row in sampler.rows:
        ts = row["cycle"]
        for track, columns in _COUNTER_TRACKS:
            events.append({
                "ph": "C", "pid": pid, "name": track, "ts": ts,
                "args": {column: row[column] for column in columns},
            })
    return events


def engine_trace_events(job_trace: Iterable[dict],
                        pid: int = ENGINE_PID) -> List[dict]:
    """Queue-wait / execute spans for suite-engine jobs.

    *job_trace* rows come from ``EngineStats.job_trace`` (see
    :mod:`repro.engine.scheduler`): dicts with ``name``, ``submit``,
    ``start``, ``end`` (seconds on a shared monotonic clock),
    ``from_cache`` and ``retried`` flags.
    """
    events: List[dict] = []
    rows = sorted(job_trace, key=lambda row: row["submit"])
    if not rows:
        return events
    origin = rows[0]["submit"]

    def usec(seconds: float) -> int:
        return int(round((seconds - origin) * 1e6))

    for tid, row in enumerate(rows):
        args = {"job": row["name"], "retried": bool(row.get("retried"))}
        if row.get("from_cache"):
            events.append({
                "ph": "i", "pid": pid, "tid": tid, "s": "t",
                "name": "cache hit " + row["name"], "cat": "engine,cache",
                "ts": usec(row["end"]), "args": args,
            })
            continue
        if row["start"] > row["submit"]:
            events.append({
                "ph": "X", "pid": pid, "tid": tid,
                "name": "queued " + row["name"], "cat": "engine,queue",
                "ts": usec(row["submit"]),
                "dur": max(usec(row["start"]) - usec(row["submit"]), 1),
                "args": args,
            })
        events.append({
            "ph": "X", "pid": pid, "tid": tid,
            "name": "execute " + row["name"], "cat": "engine,execute",
            "ts": usec(row["start"]),
            "dur": max(usec(row["end"]) - usec(row["start"]), 1),
            "args": args,
        })
    events.extend(_process_meta(pid, "suite engine"))
    return events


def _process_meta(pid: int, name: str) -> List[dict]:
    return [{
        "ph": "M", "pid": pid, "name": "process_name",
        "args": {"name": name},
    }]


def write_chrome_trace(path: str, events: List[dict],
                       metadata: Optional[Dict] = None) -> str:
    """Write a Chrome trace-event JSON file (object form) atomically."""
    payload: Dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metadata:
        payload["metadata"] = metadata
    problems = validate_chrome_trace(payload)
    if problems:
        raise ValueError("refusing to write invalid trace: "
                         + "; ".join(problems[:5]))
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, separators=(",", ":"))
    os.replace(tmp, path)
    return path


def validate_chrome_trace(payload) -> List[str]:
    """Structural validation of a trace payload.

    Accepts both the array form (a bare event list) and the object form
    (``{"traceEvents": [...]}``).  Returns a list of human-readable
    problems; empty means the payload is a loadable Chrome trace.
    """
    problems: List[str] = []
    if isinstance(payload, list):
        events = payload
    elif isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            return ["object form requires a 'traceEvents' list"]
    else:
        return ["payload must be a JSON array or object"]
    for index, event in enumerate(events):
        where = "event[%d]" % index
        if not isinstance(event, dict):
            problems.append(where + ": not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            problems.append(where + ": missing 'ph'")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(where + ": missing 'name'")
        if "pid" not in event:
            problems.append(where + ": missing 'pid'")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(where + ": missing numeric 'ts'")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(where + ": 'X' needs non-negative 'dur'")
        if phase in ("s", "f", "t") and "id" not in event:
            problems.append(where + ": flow event needs 'id'")
    return problems
