"""Chrome trace-event (Perfetto) JSON export.

Converts the repo's telemetry into the `Chrome trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_,
loadable at https://ui.perfetto.dev or ``chrome://tracing``:

* :func:`lifecycle_trace_events` — per-instruction pipeline spans from
  :class:`~repro.debug.trace.TraceRecord` rows: ``fetch`` / ``queue`` /
  ``execute`` / ``commit`` slices, an explicit ``defer`` slice for the
  NDA complete-to-broadcast gap, and flow arrows from a load's execute
  slice to its InvisiSpec validate/expose point.
* :func:`counter_trace_events` — Perfetto counter tracks from a
  :class:`~repro.obs.sampler.MetricsSampler` time series.
* :func:`engine_trace_events` — queue-wait and execute spans for suite
  engine jobs (cache hits become instants).
* :func:`merge_span_spools` — stitches the per-process distributed-trace
  spools written by :mod:`repro.obs.spans` into one trace: each process
  becomes a Perfetto process group, parent→child span links become flow
  arrows, so a submit renders causally connected to the socket worker
  that executed it three processes away.

The convention throughout: **1 simulated cycle = 1 µs** of trace time
(the format's ``ts``/``dur`` unit), so cycle counts read directly off
the Perfetto ruler.  Engine and distributed spans use real microseconds.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional

from repro.obs.spans import SPAN_SPOOL_SUFFIX

#: pid used for simulated-pipeline tracks.
PIPELINE_PID = 1
#: pid used for suite-engine tracks.
ENGINE_PID = 2
#: first pid used for distributed-span process groups.
SPAN_PID_BASE = 10

_STAGES = (
    # (slice name, start attr, end attr)
    ("fetch", "fetch", "dispatch"),
    ("queue", "dispatch", "issue"),
    ("execute", "issue", "complete"),
    ("commit", "broadcast", "retire"),
)


def _span(record) -> Optional[tuple]:
    """(start, end) cycles of a record, or None if it never progressed."""
    cycles = [c for c in (record.fetch, record.dispatch, record.issue,
                          record.complete, record.broadcast, record.retire)
              if c is not None and c >= 0]
    if not cycles:
        return None
    return min(cycles), max(cycles)


def lifecycle_trace_events(
    records: Iterable,
    pid: int = PIPELINE_PID,
    max_lanes: int = 64,
    process_name: str = "simulated pipeline",
) -> List[dict]:
    """Trace events for per-instruction lifecycle records.

    Lanes (``tid``) are assigned greedily: each instruction takes the
    first lane that is free at its fetch cycle, so overlapping
    instructions render stacked and the lane count approximates the
    occupancy of the window.
    """
    events: List[dict] = []
    lane_free_at: List[int] = []
    flow_id = 0
    for record in records:
        span = _span(record)
        if span is None:
            continue
        start, end = span
        tid = None
        for lane, free_at in enumerate(lane_free_at):
            if free_at <= start:
                tid = lane
                break
        if tid is None:
            if len(lane_free_at) < max_lanes:
                lane_free_at.append(0)
                tid = len(lane_free_at) - 1
            else:
                tid = min(range(len(lane_free_at)),
                          key=lane_free_at.__getitem__)
        lane_free_at[tid] = end + 1

        name = record.disasm
        if record.squashed:
            name = "[squashed] " + name
        args = {"seq": record.seq, "pc": record.pc}
        for stage, start_attr, end_attr in _STAGES:
            lo = getattr(record, start_attr)
            hi = getattr(record, end_attr)
            if lo is None or hi is None or lo < 0 or hi < 0 or hi < lo:
                continue
            events.append({
                "ph": "X", "pid": pid, "tid": tid,
                "name": "%s %s" % (stage, name),
                "cat": "pipeline," + stage,
                "ts": lo, "dur": max(hi - lo, 1), "args": args,
            })
        # NDA's deferral: the result sat completed-but-unbroadcast.
        if (record.complete >= 0 and record.broadcast >= 0
                and record.broadcast > record.complete + 1):
            events.append({
                "ph": "X", "pid": pid, "tid": tid,
                "name": "defer " + name,
                "cat": "pipeline,defer,nda",
                "ts": record.complete + 1,
                "dur": record.broadcast - record.complete - 1,
                "args": dict(args, deferred_cycles=(
                    record.broadcast - record.complete - 1)),
            })
        if record.squashed:
            events.append({
                "ph": "i", "pid": pid, "tid": tid, "s": "t",
                "name": "squash " + name, "cat": "pipeline,squash",
                "ts": end, "args": args,
            })
        # InvisiSpec validate/expose: flow arrow from the execute slice
        # to the visibility point on a dedicated lane.
        for kind in ("validate", "expose"):
            cycle = getattr(record, kind, -1)
            if cycle is None or cycle < 0:
                continue
            flow_id += 1
            anchor = record.issue if record.issue >= 0 else start
            events.append({
                "ph": "s", "pid": pid, "tid": tid, "id": flow_id,
                "name": kind, "cat": "invisispec",
                "ts": max(anchor, 0),
            })
            events.append({
                "ph": "f", "pid": pid, "tid": tid, "bp": "e",
                "id": flow_id, "name": kind, "cat": "invisispec",
                "ts": cycle,
            })
            events.append({
                "ph": "i", "pid": pid, "tid": tid, "s": "t",
                "name": "%s %s" % (kind, name), "cat": "invisispec",
                "ts": cycle, "args": args,
            })
    events.extend(_process_meta(pid, process_name))
    return events


def smt_trace_events(
    records_by_context: Iterable[Iterable],
    base_pid: int = PIPELINE_PID,
    max_lanes: int = 64,
) -> List[dict]:
    """Per-context pipeline lanes for a co-residency (:mod:`repro.smt`) run.

    *records_by_context* holds one record sequence per hardware context
    (e.g. from a :class:`~repro.debug.trace.PipelineTracer` attached to
    each of ``SmtMachine.cores``).  Context ``i`` becomes Perfetto
    process ``base_pid + i`` named ``context i pipeline``, so the two
    contexts render as stacked process groups on a shared cycle ruler —
    cross-context interleaving reads directly off the trace.
    """
    events: List[dict] = []
    for ctx, records in enumerate(records_by_context):
        events.extend(lifecycle_trace_events(
            records,
            pid=base_pid + ctx,
            max_lanes=max_lanes,
            process_name="context %d pipeline" % ctx,
        ))
    return events


#: Sampler columns grouped into Perfetto counter tracks.
_COUNTER_TRACKS = (
    ("occupancy", ("rob", "iq", "lq", "sq")),
    ("memory", ("outstanding_misses",)),
    ("defers/window", ("deferred_broadcasts", "port_conflicts")),
)


def counter_trace_events(sampler, pid: int = PIPELINE_PID) -> List[dict]:
    """Perfetto counter tracks from a sampler's time series."""
    events: List[dict] = []
    for row in sampler.rows:
        ts = row["cycle"]
        for track, columns in _COUNTER_TRACKS:
            events.append({
                "ph": "C", "pid": pid, "name": track, "ts": ts,
                "args": {column: row[column] for column in columns},
            })
    return events


def engine_trace_events(job_trace: Iterable[dict],
                        pid: int = ENGINE_PID) -> List[dict]:
    """Queue-wait / execute spans for suite-engine jobs.

    *job_trace* rows come from ``EngineStats.job_trace`` (see
    :mod:`repro.engine.scheduler`): dicts with ``name``, ``submit``,
    ``start``, ``end`` (seconds on a shared monotonic clock),
    ``from_cache`` and ``retried`` flags.
    """
    events: List[dict] = []
    rows = sorted(job_trace, key=lambda row: row["submit"])
    if not rows:
        return events
    origin = rows[0]["submit"]

    def usec(seconds: float) -> int:
        return int(round((seconds - origin) * 1e6))

    for tid, row in enumerate(rows):
        args = {"job": row["name"], "retried": bool(row.get("retried"))}
        if row.get("from_cache"):
            events.append({
                "ph": "i", "pid": pid, "tid": tid, "s": "t",
                "name": "cache hit " + row["name"], "cat": "engine,cache",
                "ts": usec(row["end"]), "args": args,
            })
            continue
        if row["start"] > row["submit"]:
            events.append({
                "ph": "X", "pid": pid, "tid": tid,
                "name": "queued " + row["name"], "cat": "engine,queue",
                "ts": usec(row["submit"]),
                "dur": max(usec(row["start"]) - usec(row["submit"]), 1),
                "args": args,
            })
        events.append({
            "ph": "X", "pid": pid, "tid": tid,
            "name": "execute " + row["name"], "cat": "engine,execute",
            "ts": usec(row["start"]),
            "dur": max(usec(row["end"]) - usec(row["start"]), 1),
            "args": args,
        })
    events.extend(_process_meta(pid, "suite engine"))
    return events


def read_span_spools(directory: str) -> List[dict]:
    """Load every ``*.spans.jsonl`` spool under *directory*.

    Tolerant by design: unreadable files, blank lines, and malformed or
    truncated rows (a worker killed mid-write) are skipped, never
    raised.  Rows come back sorted by start time.
    """
    rows: List[dict] = []
    if not os.path.isdir(directory):
        return rows
    for name in sorted(os.listdir(directory)):
        if not name.endswith(SPAN_SPOOL_SUFFIX):
            continue
        try:
            with open(os.path.join(directory, name)) as handle:
                text = handle.read()
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue
            if (
                isinstance(row, dict)
                and isinstance(row.get("name"), str)
                and isinstance(row.get("start_unix"), (int, float))
                and isinstance(row.get("end_unix"), (int, float))
            ):
                rows.append(row)
    rows.sort(key=lambda row: (
        row["start_unix"], row["end_unix"], str(row.get("span_id") or ""),
    ))
    return rows


def span_trace_events(
    spans: Iterable[dict],
    base_pid: int = SPAN_PID_BASE,
    max_lanes: int = 64,
) -> List[dict]:
    """Trace events for distributed spans (:mod:`repro.obs.spans`).

    Each emitting process ``(service, pid)`` becomes a Perfetto process
    group; within a group, spans pack greedily into lanes like the
    pipeline view.  Every span whose parent is present in the batch gets
    a flow arrow from the parent slice to its own start, so the
    submit → queue → lease → execute chain reads as connected arrows
    across process groups.
    """
    rows = sorted(
        (
            row for row in spans
            if isinstance(row.get("name"), str)
            and isinstance(row.get("start_unix"), (int, float))
            and isinstance(row.get("end_unix"), (int, float))
        ),
        key=lambda row: (
            row["start_unix"], row["end_unix"],
            str(row.get("span_id") or ""),
        ),
    )
    if not rows:
        return []
    origin = min(row["start_unix"] for row in rows)

    def usec(unix: float) -> int:
        return int(round((unix - origin) * 1e6))

    process_pids: Dict[tuple, int] = {}
    lane_free_at: Dict[int, List[int]] = {}
    placed: Dict[str, tuple] = {}
    events: List[dict] = []
    for row in rows:
        proc = (str(row.get("service") or "?"), row.get("pid") or 0)
        pid = process_pids.setdefault(proc, base_pid + len(process_pids))
        lanes = lane_free_at.setdefault(pid, [])
        start = usec(row["start_unix"])
        dur = max(usec(row["end_unix"]) - start, 1)
        tid = None
        for lane, free_at in enumerate(lanes):
            if free_at <= start:
                tid = lane
                break
        if tid is None:
            if len(lanes) < max_lanes:
                lanes.append(0)
                tid = len(lanes) - 1
            else:
                tid = min(range(len(lanes)), key=lanes.__getitem__)
        lanes[tid] = start + dur + 1

        status = str(row.get("status") or "ok")
        args = {
            "trace_id": row.get("trace_id"),
            "span_id": row.get("span_id"),
            "status": status,
        }
        if row.get("parent_id"):
            args["parent_id"] = row["parent_id"]
        attrs = row.get("attrs")
        if isinstance(attrs, dict):
            args.update(attrs)
        name = row["name"]
        if status != "ok":
            name = "[%s] %s" % (status, name)
        events.append({
            "ph": "X", "pid": pid, "tid": tid, "name": name,
            "cat": "spans," + row["name"], "ts": start, "dur": dur,
            "args": args,
        })
        span_id = row.get("span_id")
        if isinstance(span_id, str) and span_id:
            placed[span_id] = (pid, tid, start, dur)

    flow_id = 0
    for row in rows:
        parent_id = row.get("parent_id")
        span_id = row.get("span_id")
        if not parent_id or parent_id not in placed or span_id not in placed:
            continue
        p_pid, p_tid, p_ts, p_dur = placed[parent_id]
        c_pid, c_tid, c_ts, _ = placed[span_id]
        flow_id += 1
        anchor = min(max(c_ts, p_ts), p_ts + p_dur)
        events.append({
            "ph": "s", "pid": p_pid, "tid": p_tid, "id": flow_id,
            "name": row["name"], "cat": "spans,flow", "ts": anchor,
        })
        events.append({
            "ph": "f", "pid": c_pid, "tid": c_tid, "bp": "e",
            "id": flow_id, "name": row["name"], "cat": "spans,flow",
            "ts": c_ts,
        })

    for (service, pid), perfetto_pid in process_pids.items():
        events.extend(_process_meta(
            perfetto_pid, "%s (pid %s)" % (service, pid),
        ))
    return events


def merge_span_spools(
    directory: str,
    output: str,
    metadata: Optional[Dict] = None,
    base_pid: int = SPAN_PID_BASE,
) -> dict:
    """Merge every per-process span spool under *directory* into one
    validated Chrome trace at *output*.

    Returns a summary dict (``path``, ``spans``, ``traces``,
    ``processes``) — what ``nda-repro obs trace merge`` prints.
    """
    rows = read_span_spools(directory)
    events = span_trace_events(rows, base_pid=base_pid)
    processes = sorted({
        "%s:%s" % (row.get("service") or "?", row.get("pid") or 0)
        for row in rows
    })
    summary = {
        "path": output,
        "spans": len(rows),
        "traces": len({row.get("trace_id") for row in rows}),
        "processes": processes,
    }
    meta = {
        "span_spool_dir": os.path.abspath(directory),
        "spans": len(rows),
        "processes": processes,
    }
    if metadata:
        meta.update(metadata)
    write_chrome_trace(output, events, metadata=meta)
    return summary


def _process_meta(pid: int, name: str) -> List[dict]:
    return [{
        "ph": "M", "pid": pid, "name": "process_name",
        "args": {"name": name},
    }]


def write_chrome_trace(path: str, events: List[dict],
                       metadata: Optional[Dict] = None) -> str:
    """Write a Chrome trace-event JSON file (object form) atomically."""
    payload: Dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metadata:
        payload["metadata"] = metadata
    problems = validate_chrome_trace(payload)
    if problems:
        raise ValueError("refusing to write invalid trace: "
                         + "; ".join(problems[:5]))
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(payload, handle, separators=(",", ":"))
    os.replace(tmp, path)
    return path


def validate_chrome_trace(payload) -> List[str]:
    """Structural validation of a trace payload.

    Accepts both the array form (a bare event list) and the object form
    (``{"traceEvents": [...]}``).  Returns a list of human-readable
    problems; empty means the payload is a loadable Chrome trace.
    """
    problems: List[str] = []
    if isinstance(payload, list):
        events = payload
    elif isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            return ["object form requires a 'traceEvents' list"]
    else:
        return ["payload must be a JSON array or object"]
    for index, event in enumerate(events):
        where = "event[%d]" % index
        if not isinstance(event, dict):
            problems.append(where + ": not an object")
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or not phase:
            problems.append(where + ": missing 'ph'")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(where + ": missing 'name'")
        if "pid" not in event:
            problems.append(where + ": missing 'pid'")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(where + ": missing numeric 'ts'")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(where + ": 'X' needs non-negative 'dur'")
        if phase in ("s", "f", "t") and "id" not in event:
            problems.append(where + ": flow event needs 'id'")
    return problems
