"""``repro.obs``: the unified telemetry layer.

One cross-cutting observability stack for the whole simulator:

* :class:`EventBus` — a structured event bus attached to the cores, LSQ,
  memory hierarchy, and BTB through the same no-op-when-None observer
  slots the taint oracle uses.  Detached (the default), every hook is a
  single ``is None`` test and simulation is bit-identical to a build
  without the bus; attached, subscribers receive typed pipeline events.
* :class:`MetricsRegistry` — counters, gauges, and histograms with
  labels, unifying :class:`~repro.stats.counters.PipelineStats`, engine
  cache statistics, and fuzz campaign witness counts behind one
  ``collect()`` snapshot that round-trips through JSON.
* :class:`MetricsSampler` — a periodic in-simulation sampler producing
  occupancy/MLP/deferred-broadcast time series.
* :mod:`repro.obs.perfetto` — Chrome trace-event (Perfetto) JSON export
  of per-instruction lifecycle spans and engine job spans.
* :mod:`repro.obs.spans` — distributed trace spans: W3C-traceparent
  contexts propagated from submit through queue, lease, and socket
  worker, spooled per process and merged into one Perfetto trace.
* :mod:`repro.obs.log` — structured JSON-lines logging with
  ``job_id``/``trace_id`` correlation fields.
* :mod:`repro.obs.manifest` — JSON run manifests: a provenance record
  (config hash, seed, scheme, git revision, host, timings, metric
  snapshot) for every run that asks for one, written under
  ``results/manifests/``.

See DESIGN.md §3.5 ("Observability") for the event taxonomy, the
overhead contract, and the manifest schema; §3.10 covers the span
taxonomy and the spool/merger formats.
"""

from repro.obs.bus import EventBus, ensure_bus
from repro.obs.log import JsonLogger, get_logger
from repro.obs.spans import (
    Span,
    SpanContext,
    Tracer,
    install_tracer,
    maybe_tracer,
    parse_traceparent,
    span_latency_summary,
    uninstall_tracer,
)
from repro.obs.metrics import (
    MetricsRegistry,
    metrics_from_campaign,
    metrics_from_run,
    text_exposition,
)
from repro.obs.sampler import MetricsSampler
from repro.obs.perfetto import (
    counter_trace_events,
    engine_trace_events,
    lifecycle_trace_events,
    merge_span_spools,
    read_span_spools,
    smt_trace_events,
    span_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_checkpoint_manifest,
    build_manifest,
    validate_checkpoint,
    latest_manifest,
    list_manifests,
    load_manifest,
    manifest_dir,
    validate_manifest,
    write_manifest,
)

__all__ = [
    "EventBus",
    "ensure_bus",
    "MetricsRegistry",
    "metrics_from_campaign",
    "metrics_from_run",
    "text_exposition",
    "MetricsSampler",
    "JsonLogger",
    "get_logger",
    "Span",
    "SpanContext",
    "Tracer",
    "install_tracer",
    "maybe_tracer",
    "parse_traceparent",
    "span_latency_summary",
    "uninstall_tracer",
    "counter_trace_events",
    "engine_trace_events",
    "lifecycle_trace_events",
    "merge_span_spools",
    "read_span_spools",
    "smt_trace_events",
    "span_trace_events",
    "validate_chrome_trace",
    "write_chrome_trace",
    "MANIFEST_SCHEMA_VERSION",
    "build_checkpoint_manifest",
    "build_manifest",
    "validate_checkpoint",
    "latest_manifest",
    "list_manifests",
    "load_manifest",
    "manifest_dir",
    "validate_manifest",
    "write_manifest",
]
