"""Distributed trace spans: W3C-traceparent contexts across processes.

Every entry point (``POST /v1/jobs``, CLI ``run``/``attack``/``fuzz``/
``submit``, :func:`repro.api.simulate`) can open a **span** — a named
interval with a 128-bit ``trace_id`` shared by everything one request
caused, a 64-bit ``span_id``, an optional parent link, and free-form
attributes.  The context crosses process boundaries as a standard
traceparent string (``00-<trace_id>-<span_id>-01``): the server stores
it on the durable :class:`~repro.server.queue.JobRecord`, the engine
hands it to execution backends, and the worker protocol carries it
inside the length-prefixed job frame, so an external ``nda-repro
worker`` three hops away still tags its spans with the submitting
client's trace id.

Each process owns at most one :class:`Tracer`.  Finished spans land in
two places:

* a **flight recorder** — a bounded in-memory ring the job server reads
  to derive ``GET /v1/status`` latency percentiles and the span
  histograms on ``/metrics``; and
* a **JSONL spool** — one append-only file per process under the trace
  directory (``<service>-<pid>.spans.jsonl``), which
  :func:`repro.obs.perfetto.merge_span_spools` stitches into a single
  Perfetto trace after the run.

Tracing follows the telemetry layer's no-op-when-detached contract
(:mod:`repro.obs.bus`): with no tracer installed and ``REPRO_TRACE_DIR``
unset, :func:`maybe_tracer` returns ``None`` and every instrumentation
site reduces to one ``is None`` test — detached runs are bit-identical
to the golden files, and the attached overhead is CI-gated next to the
sampler's (``measure_obs_overhead`` grows a ``tracing`` variant).
Activation is environment-driven precisely so spawned worker
interpreters and external worker processes inherit it without any
protocol change.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional

#: Schema version stamped on every spooled span row.
SPAN_SCHEMA = 1

#: Environment variable holding the spool directory; set = tracing on.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"
#: Optional service-name override for the process tracer.
TRACE_SERVICE_ENV = "REPRO_TRACE_SERVICE"

#: Filename suffix of per-process span spools (see ``Tracer.spool_path``).
SPAN_SPOOL_SUFFIX = ".spans.jsonl"

#: Flight-recorder capacity (finished spans kept in memory).
DEFAULT_RING_SIZE = 2048

_TRACEPARENT_VERSION = "00"
_TRACE_FLAGS = "01"


def new_trace_id() -> str:
    return os.urandom(16).hex()


def new_span_id() -> str:
    return os.urandom(8).hex()


class SpanContext:
    """An immutable ``(trace_id, span_id)`` pair.

    Serializes to/from the W3C ``traceparent`` header format so the
    context survives JSON job payloads, durable queue records, and
    pickled worker frames without a custom wire format.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def traceparent(self) -> str:
        return "%s-%s-%s-%s" % (
            _TRACEPARENT_VERSION, self.trace_id, self.span_id, _TRACE_FLAGS,
        )

    def child(self) -> "SpanContext":
        """A fresh span id under the same trace."""
        return SpanContext(self.trace_id, new_span_id())

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, SpanContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:
        return "SpanContext(%r)" % self.traceparent()


def parse_traceparent(header) -> Optional[SpanContext]:
    """Parse a traceparent string; ``None`` on anything malformed.

    Lenient by design — a bad or missing header means "start a new
    trace", never an error, so stale records and old clients keep
    working.
    """
    if not isinstance(header, str):
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id = parts[0], parts[1], parts[2]
    if len(version) != 2 or len(trace_id) != 32 or len(span_id) != 16:
        return None
    try:
        int(version, 16), int(trace_id, 16), int(span_id, 16)
    except ValueError:
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return SpanContext(trace_id, span_id)


class Span:
    """One in-flight named interval; finalized through its tracer."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id",
        "start_unix", "attrs", "_tracer", "_finished",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start_unix: float,
        tracer: "Tracer",
        attrs: Optional[Dict] = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_unix = start_unix
        self.attrs = attrs if attrs is not None else {}
        self._tracer = tracer
        self._finished = False

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def traceparent(self) -> str:
        return self.context.traceparent()

    def end(self, end: Optional[float] = None, status: str = "ok") -> None:
        """Finalize once: into the ring buffer and (if spooling) disk."""
        if self._finished:
            return
        self._finished = True
        self._tracer._finish(self, end=end, status=status)


class Tracer:
    """Per-process span factory, flight recorder, and JSONL spool.

    ``spool_dir=None`` keeps spans in memory only (the job server uses
    this for its always-on status ring); a directory turns on the
    per-process spool file that the Perfetto merger consumes.
    """

    def __init__(
        self,
        service: str = "repro",
        spool_dir: Optional[str] = None,
        ring_size: int = DEFAULT_RING_SIZE,
    ) -> None:
        self.service = str(service)
        self.pid = os.getpid()
        self.spool_dir = str(spool_dir) if spool_dir else None
        self.spool_path: Optional[str] = None
        if self.spool_dir is not None:
            os.makedirs(self.spool_dir, exist_ok=True)
            safe = "".join(
                ch if ch.isalnum() or ch in "-_." else "-"
                for ch in self.service
            ) or "repro"
            self.spool_path = os.path.join(
                self.spool_dir, "%s-%d%s" % (safe, self.pid,
                                             SPAN_SPOOL_SUFFIX),
            )
        self._ring: deque = deque(maxlen=ring_size)
        self._lock = threading.Lock()
        self._tls = threading.local()
        self.finished_total = 0
        self.spool_errors = 0

    # ------------------------------------------------------------------ #
    # Context resolution.
    # ------------------------------------------------------------------ #

    def current(self) -> Optional[SpanContext]:
        """This thread's innermost active span context, if any."""
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    def _resolve_parent(self, parent) -> Optional[SpanContext]:
        if parent is None:
            return self.current()
        if isinstance(parent, Span):
            return parent.context
        if isinstance(parent, SpanContext):
            return parent
        if isinstance(parent, str):
            return parse_traceparent(parent)
        return None

    # ------------------------------------------------------------------ #
    # Span creation.
    # ------------------------------------------------------------------ #

    def start_span(
        self,
        name: str,
        parent=None,
        attrs: Optional[Dict] = None,
        start: Optional[float] = None,
    ) -> Span:
        """An unfinished span; *parent* accepts a Span, a SpanContext, a
        traceparent string, or None (inherits the thread's current)."""
        ctx = self._resolve_parent(parent)
        return Span(
            name=str(name),
            trace_id=ctx.trace_id if ctx is not None else new_trace_id(),
            span_id=new_span_id(),
            parent_id=ctx.span_id if ctx is not None else None,
            start_unix=time.time() if start is None else float(start),
            tracer=self,
            attrs=dict(attrs) if attrs else {},
        )

    @contextmanager
    def span(self, name: str, parent=None, attrs: Optional[Dict] = None):
        """Scoped span that becomes this thread's current context, so
        nested instrumentation (engine inside a server job, windows
        inside a campaign) parents itself automatically."""
        sp = self.start_span(name, parent=parent, attrs=attrs)
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        stack.append(sp.context)
        try:
            yield sp
        except BaseException:
            stack.pop()
            sp.end(status="error")
            raise
        stack.pop()
        sp.end()

    def record(
        self,
        name: str,
        start: float,
        end: float,
        parent=None,
        attrs: Optional[Dict] = None,
        status: str = "ok",
    ) -> dict:
        """A retroactive finished span with explicit unix timestamps —
        how queue-wait and lease intervals are reconstructed after the
        fact."""
        sp = self.start_span(name, parent=parent, attrs=attrs, start=start)
        sp._finished = True
        return self._finish(sp, end=end, status=status)

    # ------------------------------------------------------------------ #
    # Finalization + readback.
    # ------------------------------------------------------------------ #

    def _finish(self, span: Span, end: Optional[float], status: str) -> dict:
        end_unix = time.time() if end is None else float(end)
        if end_unix < span.start_unix:
            end_unix = span.start_unix
        row = {
            "schema": SPAN_SCHEMA,
            "name": span.name,
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "service": self.service,
            "pid": self.pid,
            "start_unix": span.start_unix,
            "end_unix": end_unix,
            "status": status,
        }
        if span.attrs:
            row["attrs"] = span.attrs
        with self._lock:
            self._ring.append(row)
            self.finished_total += 1
        if self.spool_path is not None:
            try:
                line = json.dumps(row, sort_keys=True)
                with open(self.spool_path, "a") as handle:
                    handle.write(line + "\n")
            except (OSError, TypeError, ValueError):
                with self._lock:
                    self.spool_errors += 1
        return row

    def finished(self, name: Optional[str] = None) -> List[dict]:
        """Flight-recorder contents (oldest first), optionally by name."""
        with self._lock:
            rows = list(self._ring)
        if name is None:
            return rows
        return [row for row in rows if row["name"] == name]

    def since(self, cursor: int):
        """Spans finished after *cursor* (a prior ``finished_total``)
        that are still in the ring; returns ``(new_cursor, rows)``.
        The incremental read the server's histogram ingestion uses so a
        repeated ``/metrics`` scrape never double-counts a span."""
        with self._lock:
            total = self.finished_total
            fresh = total - int(cursor)
            if fresh <= 0:
                return total, []
            rows = list(self._ring)
            return total, rows[-min(fresh, len(rows)):]

    def describe(self) -> dict:
        return {
            "service": self.service,
            "pid": self.pid,
            "spool": self.spool_path,
            "finished": self.finished_total,
            "spool_errors": self.spool_errors,
        }


# ---------------------------------------------------------------------- #
# The process tracer.
# ---------------------------------------------------------------------- #

_PROCESS_TRACER: Optional[Tracer] = None
_ENV_CHECKED = False
_GLOBAL_LOCK = threading.Lock()


def maybe_tracer(service: Optional[str] = None) -> Optional[Tracer]:
    """The process tracer, or ``None`` when tracing is detached.

    Detached is the default: without an installed tracer or a
    ``REPRO_TRACE_DIR`` environment variable this returns ``None`` and
    callers skip all span work (the no-op-when-detached contract).  The
    first call with the env var set creates the spooling tracer;
    *service* only names it at that creation (later hints are ignored).
    """
    global _PROCESS_TRACER, _ENV_CHECKED
    if _PROCESS_TRACER is not None:
        return _PROCESS_TRACER
    if _ENV_CHECKED:
        return None
    with _GLOBAL_LOCK:
        if _PROCESS_TRACER is None and not _ENV_CHECKED:
            directory = os.environ.get(TRACE_DIR_ENV)
            if directory:
                _PROCESS_TRACER = Tracer(
                    service=(service
                             or os.environ.get(TRACE_SERVICE_ENV)
                             or "repro"),
                    spool_dir=directory,
                )
            _ENV_CHECKED = True
    return _PROCESS_TRACER


def install_tracer(tracer: Tracer) -> Tracer:
    """Make *tracer* the process tracer (tests, embedded servers)."""
    global _PROCESS_TRACER, _ENV_CHECKED
    with _GLOBAL_LOCK:
        _PROCESS_TRACER = tracer
        _ENV_CHECKED = True
    return tracer


def uninstall_tracer() -> None:
    """Detach: back to the env-driven default on the next lookup."""
    global _PROCESS_TRACER, _ENV_CHECKED
    with _GLOBAL_LOCK:
        _PROCESS_TRACER = None
        _ENV_CHECKED = False


# ---------------------------------------------------------------------- #
# Latency summaries (the /v1/status observatory reads these).
# ---------------------------------------------------------------------- #


def _percentile(ordered: List[float], quantile: float) -> float:
    """Nearest-rank percentile of an already-sorted list."""
    if not ordered:
        return 0.0
    rank = max(
        0, min(len(ordered) - 1, int(round(quantile * (len(ordered) - 1))))
    )
    return ordered[rank]


def span_latency_summary(rows: Iterable[dict], name: str) -> dict:
    """p50/p95/max/mean duration (ms) of the spans named *name*."""
    durations = sorted(
        (row["end_unix"] - row["start_unix"]) * 1e3
        for row in rows
        if row.get("name") == name
    )
    if not durations:
        return {"count": 0, "p50_ms": 0.0, "p95_ms": 0.0,
                "max_ms": 0.0, "mean_ms": 0.0}
    return {
        "count": len(durations),
        "p50_ms": round(_percentile(durations, 0.50), 3),
        "p95_ms": round(_percentile(durations, 0.95), 3),
        "max_ms": round(durations[-1], 3),
        "mean_ms": round(sum(durations) / len(durations), 3),
    }
