"""The metrics registry: counters, gauges, and histograms with labels.

One registry unifies everything the repo used to report through three
unrelated channels — :class:`~repro.stats.counters.PipelineStats`,
the engine's :class:`~repro.engine.scheduler.EngineStats` / cache
statistics, and fuzz-campaign witness counts — behind a single
``MetricsRegistry.collect()`` snapshot:

    registry = MetricsRegistry()
    registry.ingest_pipeline_stats(outcome.stats, scheme="nda-strict",
                                   workload="mcf")
    payload = registry.collect()          # JSON-serializable
    restored = MetricsRegistry.restore(payload)   # exact round-trip

The snapshot embeds in run manifests (:mod:`repro.obs.manifest`) and
renders with ``nda-repro obs metrics``.  Histograms use the same
power-of-two bucketing as ``PipelineStats.record_dispatch_to_issue`` so
the existing dispatch-to-issue histogram imports losslessly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Schema version of the ``collect()`` payload.
METRICS_SCHEMA = 1


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up (got %r)" % (amount,))
        self.value += amount


class Gauge:
    """Point-in-time value (may go up or down)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Power-of-two bucketed distribution (bucket key = lower bound)."""

    kind = "histogram"
    __slots__ = ("buckets", "sum", "count")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.sum = 0
        self.count = 0

    def observe(self, value: int, count: int = 1) -> None:
        self.sum += value * count
        self.count += count
        bucket = 0
        while (1 << (bucket + 1)) <= value:
            bucket += 1
        key = 0 if value <= 0 else (1 << bucket)
        self.buckets[key] = self.buckets.get(key, 0) + count

    def load(self, buckets: Dict[int, int], total: int, count: int) -> None:
        """Install a pre-bucketed distribution verbatim."""
        for key, item in buckets.items():
            key = int(key)
            self.buckets[key] = self.buckets.get(key, 0) + item
        self.sum += total
        self.count += count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class Metric:
    """One named metric: a family of instruments keyed by label set."""

    __slots__ = ("name", "kind", "help", "series")

    def __init__(self, name: str, kind: str, help: str = "") -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.series: Dict[LabelKey, object] = {}

    def labels(self, **labels: str):
        """The instrument for this label set (created on first use)."""
        key = _label_key(labels)
        instrument = self.series.get(key)
        if instrument is None:
            instrument = _KINDS[self.kind]()
            self.series[key] = instrument
        return instrument


class MetricsRegistry:
    """Name-keyed metric store with a JSON-stable ``collect()`` snapshot."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------ #
    # Creation.
    # ------------------------------------------------------------------ #

    def _metric(self, name: str, kind: str, help: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Metric(name, kind, help)
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                "metric %r already registered as a %s, not a %s"
                % (name, metric.kind, kind)
            )
        return metric

    def counter(self, name: str, help: str = "") -> Metric:
        return self._metric(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> Metric:
        return self._metric(name, "gauge", help)

    def histogram(self, name: str, help: str = "") -> Metric:
        return self._metric(name, "histogram", help)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    # ------------------------------------------------------------------ #
    # Snapshot.
    # ------------------------------------------------------------------ #

    def collect(self) -> dict:
        """JSON-serializable snapshot of every metric, deterministically
        ordered (metrics by name, samples by label key)."""
        metrics = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            samples = []
            for key in sorted(metric.series):
                instrument = metric.series[key]
                sample: dict = {"labels": dict(key)}
                if metric.kind == "histogram":
                    sample["sum"] = instrument.sum
                    sample["count"] = instrument.count
                    sample["buckets"] = {
                        str(k): v
                        for k, v in sorted(instrument.buckets.items())
                    }
                else:
                    sample["value"] = instrument.value
                samples.append(sample)
            metrics.append({
                "name": metric.name,
                "kind": metric.kind,
                "help": metric.help,
                "samples": samples,
            })
        return {"schema": METRICS_SCHEMA, "metrics": metrics}

    @classmethod
    def restore(cls, payload: dict) -> "MetricsRegistry":
        """Inverse of :meth:`collect` (exact round-trip)."""
        registry = cls()
        for entry in payload.get("metrics", ()):
            metric = registry._metric(
                entry["name"], entry["kind"], entry.get("help", "")
            )
            for sample in entry.get("samples", ()):
                instrument = metric.labels(**sample.get("labels", {}))
                if metric.kind == "histogram":
                    instrument.load(
                        {int(k): v
                         for k, v in sample.get("buckets", {}).items()},
                        sample.get("sum", 0),
                        sample.get("count", 0),
                    )
                elif metric.kind == "counter":
                    instrument.inc(sample.get("value", 0))
                else:
                    instrument.set(sample.get("value", 0.0))
        return registry

    def render(self) -> str:
        """Monospace table of the snapshot (``nda-repro obs metrics``)."""
        from repro.stats.report import render_table

        rows: List[Tuple[str, str, str, str]] = []
        for entry in self.collect()["metrics"]:
            for sample in entry["samples"]:
                labels = ",".join(
                    "%s=%s" % pair for pair in sorted(sample["labels"].items())
                )
                if entry["kind"] == "histogram":
                    count = sample["count"]
                    mean = sample["sum"] / count if count else 0.0
                    value = "n=%d mean=%.2f" % (count, mean)
                else:
                    value = _fmt_value(sample["value"])
                rows.append((entry["name"], entry["kind"], labels, value))
        return render_table(("metric", "kind", "labels", "value"), rows)

    # ------------------------------------------------------------------ #
    # Ingestion: the three legacy stat channels.
    # ------------------------------------------------------------------ #

    def ingest_pipeline_stats(self, stats, **labels: str) -> None:
        """Fold one :class:`PipelineStats` block in under *labels*."""
        for name, help_text in _PIPELINE_COUNTERS:
            self.counter("sim_" + name, help_text).labels(**labels).inc(
                getattr(stats, name)
            )
        cycle_class = self.counter(
            "sim_cycle_class_cycles", "Fig 9a cycle classification"
        )
        for class_name, count in stats.cycle_class.items():
            cycle_class.labels(cycle_class=class_name, **labels).inc(count)
        self.histogram(
            "sim_dispatch_to_issue_cycles",
            "dispatch-to-issue latency of committed micro-ops (Fig 9d)",
        ).labels(**labels).load(
            dict(stats.dispatch_to_issue_hist),
            stats.dispatch_to_issue_sum,
            stats.dispatch_to_issue_count,
        )
        for name, value, help_text in (
            ("sim_cpi", stats.cpi, "cycles per committed instruction"),
            ("sim_ilp", stats.ilp, "issue parallelism over busy cycles"),
            ("sim_mlp", stats.mlp, "outstanding off-chip misses (Chou)"),
            ("sim_mispredict_rate", stats.mispredict_rate,
             "branch mispredicts / resolved"),
            ("host_wall_seconds", stats.sim_wall_seconds,
             "host wall-clock of the run (nondeterministic)"),
            ("host_kilo_cycles_per_sec", stats.kilo_cycles_per_sec,
             "simulator speed (nondeterministic)"),
        ):
            if value == float("inf"):
                value = 0.0
            self.gauge(name, help_text).labels(**labels).set(value)

    def ingest_engine_stats(self, engine, **labels: str) -> None:
        """Fold one engine run's :class:`EngineStats` in.

        Every series carries a ``backend`` label (read off the stats,
        defaulting to ``local-pool`` for pre-backend EngineStats
        objects) so ``/metrics`` distinguishes where work ran; the
        lease counters only move under the worker-protocol backend.
        """
        labels.setdefault(
            "backend", getattr(engine, "backend", "") or "local-pool"
        )
        for name in ("jobs", "executed", "cache_hits", "cache_misses",
                     "stores", "retries", "failures", "resumed",
                     "leases", "lease_requeues"):
            self.counter(
                "engine_" + name, "suite engine accounting"
            ).labels(**labels).inc(getattr(engine, name, 0))
        self.gauge("engine_workers", "worker processes used").labels(
            **labels
        ).set(engine.workers)
        self.gauge("engine_wall_seconds", "sweep wall-clock").labels(
            **labels
        ).set(engine.wall_seconds)
        self.gauge(
            "engine_sim_seconds", "summed per-job simulation time"
        ).labels(**labels).set(engine.sim_seconds)
        hist = self.histogram(
            "engine_job_milliseconds", "per-job execution time"
        ).labels(**labels)
        for elapsed in engine.job_seconds.values():
            hist.observe(int(elapsed * 1000.0))

    def ingest_cache_stats(self, cache_stats, **labels: str) -> None:
        """Fold a :class:`~repro.engine.cache.CacheStats` block in."""
        for name in ("hits", "misses", "stores", "errors"):
            self.counter(
                "cache_" + name, "result-cache accounting"
            ).labels(**labels).inc(getattr(cache_stats, name))

    def ingest_campaign(self, campaign, **labels: str) -> None:
        """Fold a fuzz :class:`CampaignResult` in: per-channel baseline
        witness counts, per-config leak counts, counterexamples."""
        witnesses = self.counter(
            "fuzz_witnesses", "leak witnesses per (config, channel)"
        )
        for result in campaign.results:
            for witness in result.witnesses:
                witnesses.labels(
                    config=result.config_name, channel=witness.channel,
                    **labels
                ).inc()
        runs = self.counter("fuzz_runs", "fuzz (seed, config) executions")
        leaked = self.counter("fuzz_leaked_runs", "runs with >=1 witness")
        for result in campaign.results:
            runs.labels(config=result.config_name, **labels).inc()
            if result.leaked:
                leaked.labels(config=result.config_name, **labels).inc()
        self.counter(
            "fuzz_counterexamples",
            "witnesses under a scheme claiming that channel blocked",
        ).labels(**labels).inc(len(campaign.counterexamples))
        self.counter("fuzz_failures", "seeds whose simulation raised").labels(
            **labels
        ).inc(len(campaign.failures))


#: PipelineStats integer counters mirrored 1:1 (name, help).
_PIPELINE_COUNTERS = tuple(
    (name, help_text) for name, help_text in (
        ("cycles", "simulated cycles"),
        ("committed", "architecturally committed instructions"),
        ("fetched", "fetched micro-ops (wrong path included)"),
        ("dispatched", "dispatched micro-ops"),
        ("issued", "issued micro-ops"),
        ("squashes", "pipeline squashes"),
        ("squashed_ops", "micro-ops discarded by squashes"),
        ("branch_mispredicts", "mispredicted branches"),
        ("branches_resolved", "resolved branches"),
        ("memory_violations", "load-store ordering violations"),
        ("faults", "architectural faults delivered"),
        ("deferred_broadcasts", "NDA deferred wake-ups"),
        ("broadcast_port_conflicts", "broadcasts deferred on ports"),
        ("invisible_loads", "InvisiSpec invisible loads"),
        ("validations", "InvisiSpec blocking validations"),
        ("exposures", "InvisiSpec off-critical-path exposures"),
    )
)


def _fmt_value(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return "%.3f" % value
    return str(int(value))


def _expo_value(value) -> str:
    """Prometheus sample value: integers bare, floats repr'd."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _expo_labels(labels: Dict[str, str], extra: str = "") -> str:
    pairs = [
        '%s="%s"' % (k, str(v).replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in sorted(labels.items())
    ]
    if extra:
        pairs.append(extra)
    return "{%s}" % ",".join(pairs) if pairs else ""


def text_exposition(registry) -> str:
    """Prometheus-style text rendering of a registry (or a ``collect()``
    payload) — what the job server returns from ``GET /metrics``.

    Counters and gauges render one sample per label set; histograms
    render cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``
    (the power-of-two lower bounds become upper-bound ``le`` edges).
    """
    payload = registry.collect() if hasattr(registry, "collect") else registry
    lines: List[str] = []
    for entry in payload.get("metrics", ()):
        name, kind = entry["name"], entry["kind"]
        if entry.get("help"):
            lines.append("# HELP %s %s" % (name, entry["help"]))
        lines.append("# TYPE %s %s" % (
            name, "gauge" if kind == "gauge" else
            "counter" if kind == "counter" else "histogram",
        ))
        for sample in entry.get("samples", ()):
            labels = sample.get("labels", {})
            if kind == "histogram":
                cumulative = 0
                for bucket, count in sorted(
                    (int(k), v) for k, v in sample["buckets"].items()
                ):
                    cumulative += count
                    upper = bucket * 2 if bucket else 1
                    lines.append("%s_bucket%s %d" % (
                        name, _expo_labels(labels, 'le="%d"' % upper),
                        cumulative,
                    ))
                lines.append("%s_bucket%s %d" % (
                    name, _expo_labels(labels, 'le="+Inf"'),
                    sample["count"],
                ))
                lines.append("%s_sum%s %s" % (
                    name, _expo_labels(labels), _expo_value(sample["sum"]),
                ))
                lines.append("%s_count%s %d" % (
                    name, _expo_labels(labels), sample["count"],
                ))
            else:
                lines.append("%s%s %s" % (
                    name, _expo_labels(labels),
                    _expo_value(sample["value"]),
                ))
    return "\n".join(lines) + "\n"


def metrics_from_run(stats, **labels: str) -> MetricsRegistry:
    """Registry holding one run's pipeline stats (the common case)."""
    registry = MetricsRegistry()
    registry.ingest_pipeline_stats(stats, **labels)
    return registry


def metrics_from_campaign(campaign, **labels: str) -> MetricsRegistry:
    """Registry holding one fuzz campaign's outcome."""
    registry = MetricsRegistry()
    registry.ingest_campaign(campaign, **labels)
    return registry
