"""Run manifests: JSON provenance records for simulation runs.

A manifest answers "what exactly produced this number?" months later:
the full configuration and its cache hash, the workload and seed, the
git revision and host that ran it, wall-clock timings, and a metrics
snapshot (:meth:`MetricsRegistry.collect`).  Manifests are plain JSON
files under ``results/manifests/`` (override with the
``REPRO_MANIFEST_DIR`` environment variable) and are listed/inspected
with ``nda-repro obs manifest``.

Writing is **opt-in**: the thousands of ``simulate()`` calls the test
suite makes must not spray files, so only callers that pass
``simulate(..., manifest=True)`` — the CLI commands do — produce one.

Validation is hand-rolled (:func:`validate_manifest`) so the repo keeps
its no-new-dependencies rule; the schema it enforces is documented in
DESIGN.md §3.5.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time
from typing import Dict, List, Optional

from repro.envelope import RESULT_SCHEMA

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1

#: Default output directory (relative to the working directory).
DEFAULT_DIR = os.path.join("results", "manifests")

#: (field, type, required) triples of the top-level schema.  ``schema``
#: is the shared result-envelope tag (``repro.result/v1``, PR 6); it is
#: optional on read so pre-envelope manifests still load and validate.
_SCHEMA = (
    ("schema", str, False),
    ("schema_version", int, True),
    ("kind", str, True),
    ("label", str, True),
    ("created_unix", (int, float), True),
    ("config", dict, True),
    ("config_hash", str, True),
    ("scheme", str, True),
    ("workload", str, False),
    ("seed", (int, type(None)), False),
    ("git_revision", str, True),
    ("host", dict, True),
    ("timings", dict, True),
    ("metrics", dict, False),
    ("extra", dict, False),
)


def manifest_dir(directory: Optional[str] = None) -> str:
    """Resolve the manifest directory: explicit argument, then the
    ``REPRO_MANIFEST_DIR`` environment variable, then the default."""
    if directory:
        return directory
    return os.environ.get("REPRO_MANIFEST_DIR") or DEFAULT_DIR


def git_revision(default: str = "unknown") -> str:
    """Current git commit hash, or *default* outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return default
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else default


def host_info() -> Dict[str, str]:
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def build_manifest(
    config,
    *,
    kind: str = "run",
    workload: str = "",
    seed: Optional[int] = None,
    stats=None,
    metrics: Optional[dict] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Assemble a manifest for one run of *config*.

    ``stats`` is an optional :class:`PipelineStats`; its wall-clock
    fields populate ``timings`` and, when ``metrics`` is not given, its
    counters become the metric snapshot.  ``metrics`` accepts an
    already-collected :meth:`MetricsRegistry.collect` payload (or a
    registry, which is collected here).
    """
    timings: Dict[str, float] = {}
    if stats is not None:
        timings = {
            "sim_wall_seconds": stats.sim_wall_seconds,
            "kilo_cycles_per_sec": stats.kilo_cycles_per_sec,
            "cycles": stats.cycles,
        }
        if metrics is None:
            from repro.obs.metrics import metrics_from_run
            labels = {"scheme": config.scheme}
            if workload:
                labels["workload"] = workload
            metrics = metrics_from_run(stats, **labels).collect()
    if metrics is not None and hasattr(metrics, "collect"):
        metrics = metrics.collect()
    manifest = {
        "schema": RESULT_SCHEMA,
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "kind": kind,
        "label": config.label(),
        "created_unix": time.time(),
        "config": config.to_dict(),
        "config_hash": config.cache_key(),
        "scheme": config.scheme,
        "workload": workload,
        "seed": seed,
        "git_revision": git_revision(),
        "host": host_info(),
        "timings": timings,
    }
    if metrics is not None:
        manifest["metrics"] = metrics
    if extra:
        manifest["extra"] = extra
    return manifest


def build_checkpoint_manifest(
    *,
    label: str,
    backend: str,
    total: int,
    completed: Dict[str, dict],
    pending: List[str],
    failed: Optional[Dict[str, str]] = None,
) -> dict:
    """Assemble a resumable ``kind="checkpoint"`` manifest.

    Checkpoints reuse the run-manifest envelope (same provenance fields,
    same validator) but describe a *job set* rather than one config:
    ``config`` is empty, ``config_hash`` is a digest over the sorted job
    keys (so two checkpoints of the same sweep share an identity), and
    the progress state lives under ``extra["checkpoint"]`` —
    ``{total, backend, completed: {key: entry}, pending: [key],
    failed: {key: error}}``, where each completed entry is the
    engine codec's ``{type, data, elapsed}`` record
    (:mod:`repro.engine.checkpoint`).
    """
    import hashlib

    keys = sorted(list(completed) + list(pending))
    identity = hashlib.sha256("\n".join(keys).encode("utf-8")).hexdigest()
    return {
        "schema": RESULT_SCHEMA,
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "kind": "checkpoint",
        "label": label,
        "created_unix": time.time(),
        "config": {},  # a checkpoint spans configs; identity is the keys
        "config_hash": identity,
        "scheme": "mixed",
        "git_revision": git_revision(),
        "host": host_info(),
        "timings": {},
        "extra": {
            "checkpoint": {
                "total": int(total),
                "backend": backend,
                "completed": dict(completed),
                "pending": list(pending),
                "failed": dict(failed or {}),
            },
        },
    }


def validate_checkpoint(manifest) -> List[str]:
    """Checkpoint-specific validation on top of :func:`validate_manifest`."""
    problems = validate_manifest(manifest)
    if not isinstance(manifest, dict):
        return problems
    if manifest.get("kind") != "checkpoint":
        problems.append(
            "kind is %r, not 'checkpoint'" % (manifest.get("kind"),)
        )
    state = (manifest.get("extra") or {}).get("checkpoint")
    if not isinstance(state, dict):
        problems.append("extra.checkpoint must be an object")
        return problems
    if not isinstance(state.get("total"), int):
        problems.append("extra.checkpoint.total must be an int")
    completed = state.get("completed")
    if not isinstance(completed, dict):
        problems.append("extra.checkpoint.completed must be an object")
    else:
        for key, entry in completed.items():
            if not (isinstance(entry, dict) and isinstance(
                    entry.get("type"), str) and "data" in entry):
                problems.append(
                    "completed[%r] is not a {type, data} entry" % (key,)
                )
                break
    if not isinstance(state.get("pending"), list):
        problems.append("extra.checkpoint.pending must be a list")
    return problems


def validate_manifest(manifest) -> List[str]:
    """Check *manifest* against the schema; return a problem list
    (empty == valid)."""
    problems: List[str] = []
    if not isinstance(manifest, dict):
        return ["manifest must be a JSON object"]
    for field, types, required in _SCHEMA:
        if field not in manifest:
            if required:
                problems.append("missing required field %r" % field)
            continue
        if not isinstance(manifest[field], types):
            problems.append(
                "field %r has type %s" % (field, type(manifest[field]).__name__)
            )
    if manifest.get("schema") not in (None, RESULT_SCHEMA):
        problems.append(
            "unknown schema %r (this build reads %r)"
            % (manifest.get("schema"), RESULT_SCHEMA)
        )
    if manifest.get("schema_version") not in (None, MANIFEST_SCHEMA_VERSION):
        problems.append(
            "unknown schema_version %r (this build reads %d)"
            % (manifest.get("schema_version"), MANIFEST_SCHEMA_VERSION)
        )
    host = manifest.get("host")
    if isinstance(host, dict):
        for key in ("hostname", "platform", "python"):
            if not isinstance(host.get(key), str):
                problems.append("host.%s must be a string" % key)
    metrics = manifest.get("metrics")
    if isinstance(metrics, dict) and not isinstance(
            metrics.get("metrics"), list):
        problems.append("metrics snapshot missing its 'metrics' list")
    unknown = set(manifest) - {field for field, _, _ in _SCHEMA}
    for field in sorted(unknown):
        problems.append("unknown field %r" % field)
    return problems


def write_manifest(manifest: dict, directory: Optional[str] = None) -> str:
    """Validate and atomically write *manifest*; return its path.

    Filenames are ``<kind>-<label>-<created>-<hash8>.json`` — sortable
    by creation time and collision-free across configs.
    """
    problems = validate_manifest(manifest)
    if problems:
        raise ValueError("refusing to write invalid manifest: "
                         + "; ".join(problems[:5]))
    directory = manifest_dir(directory)
    os.makedirs(directory, exist_ok=True)
    safe_label = "".join(
        ch if ch.isalnum() or ch in "-_" else "_"
        for ch in manifest["label"]
    )[:48]
    name = "%s-%s-%d-%s.json" % (
        manifest["kind"], safe_label,
        int(manifest["created_unix"] * 1000),
        manifest["config_hash"][:8],
    )
    path = os.path.join(directory, name)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def load_manifest(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def list_manifests(directory: Optional[str] = None) -> List[str]:
    """Manifest paths in *directory*, oldest first."""
    directory = manifest_dir(directory)
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".json")
    )


def latest_manifest(directory: Optional[str] = None) -> Optional[dict]:
    """The most recently written manifest, or None."""
    paths = list_manifests(directory)
    return load_manifest(paths[-1]) if paths else None
