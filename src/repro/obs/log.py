"""Structured JSON-lines logging with trace correlation.

Replaces the ad-hoc ``print``/stderr writes in the job server and the
worker protocol with one-line JSON records::

    {"ts": 1754650000.123, "level": "info", "service": "server",
     "event": "job.done", "job_id": "3f9c...", "trace_id": "4bf9..."}

Every record carries ``ts``/``level``/``service``/``event``; call sites
add correlation fields (``job_id``, ``trace_id``, ``worker``, ...) as
keywords.  ``trace_id`` is the same 128-bit id :mod:`repro.obs.spans`
propagates, so a log line greps straight to its spans in the merged
Perfetto trace.

Records go to stderr by default — machine-parseable but still visible
under ``nda-repro serve``.  Set ``REPRO_LOG_PATH`` to append to a file
instead (spawned socket workers run with stderr detached, so the file
sink is how their logs survive).  Non-serializable field values are
``repr()``-ed rather than raised: logging must never take down the
server loop.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Optional

#: Environment variable routing log records to an append-only file.
LOG_PATH_ENV = "REPRO_LOG_PATH"

_LEVELS = ("debug", "info", "warning", "error")


def _jsonable(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return repr(value)


class JsonLogger:
    """One service's JSON-lines emitter.

    *stream* defaults to ``sys.stderr`` (looked up per write, so pytest
    capture and test substitution work); a path set through *path* or
    ``REPRO_LOG_PATH`` wins and appends one line per record.
    """

    def __init__(
        self,
        service: str,
        stream=None,
        path: Optional[str] = None,
        **static,
    ) -> None:
        self.service = str(service)
        self.stream = stream
        self.path = path if path is not None else os.environ.get(LOG_PATH_ENV)
        self.static = {k: _jsonable(v) for k, v in static.items()}
        self._lock = threading.Lock()
        self.emitted = 0
        self.errors = 0

    def bind(self, **fields) -> "JsonLogger":
        """A child logger with extra static correlation fields."""
        merged = dict(self.static)
        merged.update({k: _jsonable(v) for k, v in fields.items()})
        child = JsonLogger(
            self.service, stream=self.stream, path=self.path,
        )
        child.static = merged
        return child

    def log(self, level: str, event: str, **fields) -> None:
        if level not in _LEVELS:
            level = "info"
        record = {
            "ts": round(time.time(), 6),
            "level": level,
            "service": self.service,
            "event": str(event),
        }
        record.update(self.static)
        for key, value in fields.items():
            if value is not None:
                record[key] = _jsonable(value)
        try:
            line = json.dumps(record, sort_keys=True)
        except (TypeError, ValueError):
            self.errors += 1
            return
        with self._lock:
            try:
                if self.path:
                    with open(self.path, "a") as handle:
                        handle.write(line + "\n")
                else:
                    stream = (
                        self.stream if self.stream is not None
                        else sys.stderr
                    )
                    stream.write(line + "\n")
                    if hasattr(stream, "flush"):
                        stream.flush()
                self.emitted += 1
            except (OSError, ValueError):
                self.errors += 1

    def debug(self, event: str, **fields) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.log("error", event, **fields)


_LOGGERS = {}
_LOGGERS_LOCK = threading.Lock()


def get_logger(service: str) -> JsonLogger:
    """The shared per-service logger (created on first use)."""
    with _LOGGERS_LOCK:
        logger = _LOGGERS.get(service)
        if logger is None:
            logger = JsonLogger(service)
            _LOGGERS[service] = logger
        return logger
