"""Suite runner: one sweep powers every performance figure and table.

Runs every (benchmark, configuration) pair with SMARTS-style sampling and
keeps the per-window counters, so Fig. 7 (CPI), Fig. 9a (breakdown),
Fig. 9b/9c (MLP/ILP), Fig. 9d (wake-up latency) and Table 2 (overheads)
are all views over a single :class:`SuiteResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import ConfigSpec, config_registry
from repro.engine.jobs import expand_jobs
from repro.engine.store import ResultStore, open_store
from repro.engine.scheduler import EngineStats, ProgressFn, run_jobs
from repro.errors import SimulationError
from repro.stats.sampling import Sample, SampledRun
from repro.workloads.profiles import DEFAULT_SUITE

IN_ORDER_LABEL = "In-Order"
BASELINE_LABEL = "OoO"


def figure7_config_specs() -> List[ConfigSpec]:
    """The ten configurations of Fig. 7, in the paper's legend order.

    This is simply the canonical :func:`repro.config.config_registry`
    sweep (the registry's insertion order *is* the legend order, with
    In-Order between the NDA policies and InvisiSpec).
    """
    return list(config_registry().values())


@dataclass
class SuiteResult:
    """All sampled runs of one sweep."""

    benchmarks: List[str]
    labels: List[str]
    runs: Dict[Tuple[str, str], SampledRun] = field(default_factory=dict)
    # Filled in by run_suite(): job/cache/timing accounting of the sweep.
    engine: Optional[EngineStats] = None

    def run(self, benchmark: str, label: str) -> SampledRun:
        return self.runs[(benchmark, label)]

    # -------------------------------------------------------------- #
    # CPI views.
    # -------------------------------------------------------------- #

    def normalized_cpi(self, benchmark: str, label: str) -> float:
        """CPI normalized to the insecure OoO baseline (Fig. 7 x-axis)."""
        baseline = self.run(benchmark, BASELINE_LABEL).mean_cpi
        return self.run(benchmark, label).mean_cpi / baseline

    def normalized_ci(self, benchmark: str, label: str) -> float:
        baseline = self.run(benchmark, BASELINE_LABEL).mean_cpi
        return self.run(benchmark, label).ci95 / baseline

    def mean_normalized_cpi(self, label: str) -> float:
        """Arithmetic mean over benchmarks of normalized CPI."""
        values = [
            self.normalized_cpi(bench, label) for bench in self.benchmarks
        ]
        return sum(values) / len(values)

    def overhead_pct(self, label: str) -> float:
        """Average slowdown vs. the OoO baseline, in percent (Table 2)."""
        return (self.mean_normalized_cpi(label) - 1.0) * 100.0

    def speedup_over_inorder(self, label: str) -> float:
        """How many times faster than In-Order this config runs."""
        inorder = self.mean_normalized_cpi(IN_ORDER_LABEL)
        return inorder / self.mean_normalized_cpi(label)

    def gap_closed_pct(self, label: str) -> float:
        """Fraction of the In-Order <-> OoO gap recovered (paper abstract)."""
        inorder = self.mean_normalized_cpi(IN_ORDER_LABEL)
        mine = self.mean_normalized_cpi(label)
        if inorder <= 1.0:
            return 100.0
        return (inorder - mine) / (inorder - 1.0) * 100.0

    # -------------------------------------------------------------- #
    # Aggregated counter views (Fig. 9).
    # -------------------------------------------------------------- #

    def breakdown(self, label: str) -> Dict[str, float]:
        """Cycle-class shares across the suite, normalized to OoO cycles.

        Each benchmark is normalized to *its own* baseline cycle count
        before averaging (as in the paper's Fig. 9a bars), so memory-bound
        benchmarks with huge absolute cycle counts do not swamp the mix.
        """
        sums: Dict[str, float] = {}
        for bench in self.benchmarks:
            base_cycles = self.run(bench, BASELINE_LABEL).aggregate().cycles
            aggregate = self.run(bench, label).aggregate()
            for name, count in aggregate.cycle_class.items():
                sums[name] = sums.get(name, 0.0) + count / base_cycles
        count = len(self.benchmarks)
        return {name: value / count for name, value in sums.items()}

    def geomean_metric(self, label: str, metric: str) -> float:
        """Geometric mean over benchmarks of a PipelineStats property."""
        product = 1.0
        count = 0
        for bench in self.benchmarks:
            value = getattr(self.run(bench, label).aggregate(), metric)
            if value > 0:
                product *= value
                count += 1
        return product ** (1.0 / count) if count else 0.0

    def mean_metric(self, label: str, metric: str) -> float:
        values = [
            getattr(self.run(bench, label).aggregate(), metric)
            for bench in self.benchmarks
        ]
        return sum(values) / len(values)

    # -------------------------------------------------------------- #
    # Persistence.
    # -------------------------------------------------------------- #

    def summary(self) -> dict:
        """Headline numbers per configuration, JSON-serializable."""
        out = {}
        for label in self.labels:
            out[label] = {
                "mean_normalized_cpi": self.mean_normalized_cpi(label),
                "overhead_pct": self.overhead_pct(label),
                "gap_closed_pct": self.gap_closed_pct(label),
                "speedup_vs_inorder": self.speedup_over_inorder(label),
                "mlp": self.geomean_metric(label, "mlp"),
                "ilp": self.geomean_metric(label, "ilp"),
                "dispatch_to_issue": self.mean_metric(
                    label, "mean_dispatch_to_issue"
                ),
            }
        return out

    def save_summary(self, path) -> None:
        """Write the per-config summary (plus per-benchmark CPI) as JSON."""
        import json

        payload = {
            "benchmarks": self.benchmarks,
            "labels": self.labels,
            "summary": self.summary(),
            "normalized_cpi": {
                bench: {
                    label: self.normalized_cpi(bench, label)
                    for label in self.labels
                }
                for bench in self.benchmarks
            },
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)


def run_suite(
    benchmarks: Sequence[str] = DEFAULT_SUITE,
    configs: Optional[Sequence[ConfigSpec]] = None,
    samples: int = 3,
    warmup: int = 2_000,
    measure: int = 8_000,
    instructions: int = 14_000,
    seed0: int = 0,
    verbose: bool = False,
    jobs: Optional[int] = None,
    cache: Union[bool, ResultStore, None] = False,
    cache_dir=None,
    remote_cache: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    collect_trace: bool = False,
    backend=None,
    backend_options: Optional[dict] = None,
    checkpoint: Optional[str] = None,
    checkpoint_interval: int = 25,
    resume=None,
) -> SuiteResult:
    """Run the full sweep and return every sampled run.

    The sweep is expanded into independent ``(benchmark, config, sample)``
    jobs and executed by the :mod:`repro.engine` scheduler:

    * ``jobs`` — worker processes (default ``os.cpu_count()``; ``jobs=1``
      runs serially in-process).  Results are identical either way.
    * ``cache`` — ``True`` (or any :class:`ResultStore`) serves repeated
      jobs from the on-disk store under ``results/.cache/``; ``cache_dir``
      overrides the location and ``remote_cache`` (a job-server URL)
      tiers it with the server's shared ``/v1/artifacts`` store.
    * ``backend`` — execution backend name or instance (see
      :mod:`repro.engine.backends`); results are bit-identical across
      backends.
    * ``checkpoint``/``resume`` — keep / replay a resumable manifest of
      completed jobs (preempted sweeps restart from where they died).
    * ``progress`` — per-job callback ``(done, total, job_result)``.

    Job/cache/timing accounting lands on ``result.engine``.
    """
    specs = (
        [ConfigSpec.coerce(spec) for spec in configs]
        if configs is not None else figure7_config_specs()
    )
    result_cache: Optional[ResultStore]
    if isinstance(cache, ResultStore):
        result_cache = cache
        if remote_cache:
            result_cache = open_store(result_cache, remote=remote_cache)
    elif cache or cache_dir is not None or remote_cache:
        result_cache = open_store(cache_dir, remote=remote_cache)
    else:
        result_cache = None

    job_list = expand_jobs(
        benchmarks, specs, samples, warmup, measure, instructions, seed0
    )
    job_results, failures, engine_stats = run_jobs(
        job_list, jobs=jobs, cache=result_cache, progress=progress,
        collect_trace=collect_trace,
        backend=backend, backend_options=backend_options,
        checkpoint=checkpoint, checkpoint_interval=checkpoint_interval,
        checkpoint_label="suite", resume=resume,
    )
    if failures:
        raise SimulationError(
            "%d of %d sweep jobs failed: %s" % (
                len(failures), len(job_list),
                "; ".join(
                    "%s: %s" % (f.job.describe(), f.error)
                    for f in failures[:5]
                ),
            )
        )

    # Reassemble windows into SampledRuns, exactly as the serial loop did.
    windows: Dict[Tuple[str, str], List[Sample]] = {}
    for job_result in job_results:
        job = job_result.job
        windows.setdefault((job.benchmark, job.label), []).append(
            Sample(seed=job.seed, window=job_result.window)
        )
    result = SuiteResult(
        benchmarks=list(benchmarks),
        labels=[spec.label for spec in specs],
        engine=engine_stats,
    )
    for bench in benchmarks:
        for spec in specs:
            cell = windows.get((bench, spec.label))
            if not cell:
                raise SimulationError(
                    "no samples for (%s, %s)" % (bench, spec.label)
                )
            run = SampledRun(
                label=spec.label, benchmark=bench, samples=cell
            )
            result.runs[(bench, spec.label)] = run
            if verbose:
                print(
                    "  %-12s %-20s CPI %.3f +/- %.3f"
                    % (bench, spec.label, run.mean_cpi, run.ci95)
                )
    return result
