"""Suite runner: one sweep powers every performance figure and table.

Runs every (benchmark, configuration) pair with SMARTS-style sampling and
keeps the per-window counters, so Fig. 7 (CPI), Fig. 9a (breakdown),
Fig. 9b/9c (MLP/ILP), Fig. 9d (wake-up latency) and Table 2 (overheads)
are all views over a single :class:`SuiteResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig, all_figure7_configs, baseline_ooo
from repro.stats.sampling import SampledRun, smarts_sample
from repro.workloads.generator import spec_program
from repro.workloads.profiles import DEFAULT_SUITE

IN_ORDER_LABEL = "In-Order"
BASELINE_LABEL = "OoO"

# (label, config, runs_on_inorder_core)
ConfigSpec = Tuple[str, SimConfig, bool]


def figure7_config_specs() -> List[ConfigSpec]:
    """The ten configurations of Fig. 7, in the paper's legend order."""
    specs: List[ConfigSpec] = []
    for label, config in all_figure7_configs():
        specs.append((label, config, False))
    # Insert In-Order after the NDA policies, as in the paper's legend.
    specs.insert(7, (IN_ORDER_LABEL, baseline_ooo(), True))
    return specs


@dataclass
class SuiteResult:
    """All sampled runs of one sweep."""

    benchmarks: List[str]
    labels: List[str]
    runs: Dict[Tuple[str, str], SampledRun] = field(default_factory=dict)

    def run(self, benchmark: str, label: str) -> SampledRun:
        return self.runs[(benchmark, label)]

    # -------------------------------------------------------------- #
    # CPI views.
    # -------------------------------------------------------------- #

    def normalized_cpi(self, benchmark: str, label: str) -> float:
        """CPI normalized to the insecure OoO baseline (Fig. 7 x-axis)."""
        baseline = self.run(benchmark, BASELINE_LABEL).mean_cpi
        return self.run(benchmark, label).mean_cpi / baseline

    def normalized_ci(self, benchmark: str, label: str) -> float:
        baseline = self.run(benchmark, BASELINE_LABEL).mean_cpi
        return self.run(benchmark, label).ci95 / baseline

    def mean_normalized_cpi(self, label: str) -> float:
        """Arithmetic mean over benchmarks of normalized CPI."""
        values = [
            self.normalized_cpi(bench, label) for bench in self.benchmarks
        ]
        return sum(values) / len(values)

    def overhead_pct(self, label: str) -> float:
        """Average slowdown vs. the OoO baseline, in percent (Table 2)."""
        return (self.mean_normalized_cpi(label) - 1.0) * 100.0

    def speedup_over_inorder(self, label: str) -> float:
        """How many times faster than In-Order this config runs."""
        inorder = self.mean_normalized_cpi(IN_ORDER_LABEL)
        return inorder / self.mean_normalized_cpi(label)

    def gap_closed_pct(self, label: str) -> float:
        """Fraction of the In-Order <-> OoO gap recovered (paper abstract)."""
        inorder = self.mean_normalized_cpi(IN_ORDER_LABEL)
        mine = self.mean_normalized_cpi(label)
        if inorder <= 1.0:
            return 100.0
        return (inorder - mine) / (inorder - 1.0) * 100.0

    # -------------------------------------------------------------- #
    # Aggregated counter views (Fig. 9).
    # -------------------------------------------------------------- #

    def breakdown(self, label: str) -> Dict[str, float]:
        """Cycle-class shares across the suite, normalized to OoO cycles.

        Each benchmark is normalized to *its own* baseline cycle count
        before averaging (as in the paper's Fig. 9a bars), so memory-bound
        benchmarks with huge absolute cycle counts do not swamp the mix.
        """
        sums: Dict[str, float] = {}
        for bench in self.benchmarks:
            base_cycles = self.run(bench, BASELINE_LABEL).aggregate().cycles
            aggregate = self.run(bench, label).aggregate()
            for name, count in aggregate.cycle_class.items():
                sums[name] = sums.get(name, 0.0) + count / base_cycles
        count = len(self.benchmarks)
        return {name: value / count for name, value in sums.items()}

    def geomean_metric(self, label: str, metric: str) -> float:
        """Geometric mean over benchmarks of a PipelineStats property."""
        product = 1.0
        count = 0
        for bench in self.benchmarks:
            value = getattr(self.run(bench, label).aggregate(), metric)
            if value > 0:
                product *= value
                count += 1
        return product ** (1.0 / count) if count else 0.0

    def mean_metric(self, label: str, metric: str) -> float:
        values = [
            getattr(self.run(bench, label).aggregate(), metric)
            for bench in self.benchmarks
        ]
        return sum(values) / len(values)

    # -------------------------------------------------------------- #
    # Persistence.
    # -------------------------------------------------------------- #

    def summary(self) -> dict:
        """Headline numbers per configuration, JSON-serializable."""
        out = {}
        for label in self.labels:
            out[label] = {
                "mean_normalized_cpi": self.mean_normalized_cpi(label),
                "overhead_pct": self.overhead_pct(label),
                "gap_closed_pct": self.gap_closed_pct(label),
                "speedup_vs_inorder": self.speedup_over_inorder(label),
                "mlp": self.geomean_metric(label, "mlp"),
                "ilp": self.geomean_metric(label, "ilp"),
                "dispatch_to_issue": self.mean_metric(
                    label, "mean_dispatch_to_issue"
                ),
            }
        return out

    def save_summary(self, path) -> None:
        """Write the per-config summary (plus per-benchmark CPI) as JSON."""
        import json

        payload = {
            "benchmarks": self.benchmarks,
            "labels": self.labels,
            "summary": self.summary(),
            "normalized_cpi": {
                bench: {
                    label: self.normalized_cpi(bench, label)
                    for label in self.labels
                }
                for bench in self.benchmarks
            },
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)


def run_suite(
    benchmarks: Sequence[str] = DEFAULT_SUITE,
    configs: Optional[Sequence[ConfigSpec]] = None,
    samples: int = 3,
    warmup: int = 2_000,
    measure: int = 8_000,
    instructions: int = 14_000,
    seed0: int = 0,
    verbose: bool = False,
) -> SuiteResult:
    """Run the full sweep and return every sampled run."""
    specs = list(configs) if configs is not None else figure7_config_specs()
    result = SuiteResult(
        benchmarks=list(benchmarks),
        labels=[label for label, _, _ in specs],
    )
    for bench in benchmarks:
        for label, config, in_order in specs:
            run = smarts_sample(
                lambda seed, b=bench: spec_program(b, instructions, seed),
                config,
                label=label,
                benchmark=bench,
                samples=samples,
                warmup=warmup,
                measure=measure,
                in_order=in_order,
                seed0=seed0,
            )
            result.runs[(bench, label)] = run
            if verbose:
                print(
                    "  %-12s %-20s CPI %.3f +/- %.3f"
                    % (bench, label, run.mean_cpi, run.ci95)
                )
    return result
