"""Regeneration of the paper's tables (Tables 1, 2, 3)."""

from __future__ import annotations

from dataclasses import fields
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attacks.taxonomy import IMPLEMENTED, AttackInfo, expected_leak
from repro.config import ConfigSpec, SimConfig, baseline_ooo
from repro.harness.experiment import (
    BASELINE_LABEL,
    IN_ORDER_LABEL,
    SuiteResult,
    figure7_config_specs,
)
from repro.nda.policy import policy_for
from repro.stats.report import render_table


# ---------------------------------------------------------------------- #
# Table 1 — the attack taxonomy, measured live.
# ---------------------------------------------------------------------- #


def table1_matrix(
    configs: Optional[Sequence[ConfigSpec]] = None,
    guesses: int = 32,
) -> List[dict]:
    """Run every implemented attack on every configuration.

    Returns rows of {attack, access_class, channel, config, leaked,
    expected} — the live counterpart of Tables 1 and 2's security columns.
    """
    from repro.attacks.common import default_guesses
    from repro.attacks.ssb import attack_guesses

    specs = (
        [ConfigSpec.coerce(spec) for spec in configs]
        if configs is not None else figure7_config_specs()
    )
    rows = []
    for info in IMPLEMENTED:
        if info.name == "ssb":
            guess_list = attack_guesses(42, guesses)
        else:
            guess_list = default_guesses(42, guesses)
        for spec in specs:
            outcome = info.module.run(
                spec.config, guesses=guess_list, in_order=spec.in_order
            )
            rows.append({
                "attack": info.name,
                "access_class": info.access_class,
                "channel": info.channel,
                "config": spec.label,
                "leaked": outcome.leaked,
                "expected": expected_leak(info, spec.config, spec.in_order),
            })
    return rows


def render_table1(rows: List[dict]) -> str:
    configs = []
    for row in rows:
        if row["config"] not in configs:
            configs.append(row["config"])
    attacks = []
    for row in rows:
        if row["attack"] not in attacks:
            attacks.append(row["attack"])
    cell = {(r["attack"], r["config"]): r for r in rows}
    headers = ["attack (class/channel)"] + configs
    table_rows = []
    for attack in attacks:
        sample = next(r for r in rows if r["attack"] == attack)
        row = ["%s (%s/%s)" % (attack, sample["access_class"][:7],
                               sample["channel"])]
        for config in configs:
            entry = cell[(attack, config)]
            mark = "LEAK" if entry["leaked"] else "safe"
            if entry["leaked"] != entry["expected"]:
                mark += "!?"
            row.append(mark)
        table_rows.append(row)
    return render_table(
        headers, table_rows,
        title="Table 1/2 security matrix (LEAK = secret recovered; "
              "'!?' marks divergence from the paper's expectation)",
    )


# ---------------------------------------------------------------------- #
# Cross-context security matrix (repro.smt co-residency channels).
# ---------------------------------------------------------------------- #


def cross_matrix(
    configs: Optional[Sequence[ConfigSpec]] = None,
    guesses: int = 16,
) -> List[dict]:
    """Run every cross-context attack pair on every OoO configuration.

    Same row shape as :func:`table1_matrix`.  In-order specs are skipped:
    the co-residency model runs pairs of OoO contexts only.
    """
    from repro.attacks.common import default_guesses
    from repro.attacks.taxonomy import CROSS_IMPLEMENTED

    specs = (
        [ConfigSpec.coerce(spec) for spec in configs]
        if configs is not None else figure7_config_specs()
    )
    rows = []
    for info in CROSS_IMPLEMENTED:
        guess_list = default_guesses(42, guesses)
        for spec in specs:
            if spec.in_order:
                continue
            outcome = info.module.run(spec.config, guesses=guess_list)
            rows.append({
                "attack": info.name,
                "access_class": info.access_class,
                "channel": info.channel,
                "sharing": info.sharing,
                "config": spec.label,
                "leaked": outcome.leaked,
                "expected": expected_leak(info, spec.config),
            })
    return rows


def render_cross_matrix(rows: List[dict]) -> str:
    configs = []
    for row in rows:
        if row["config"] not in configs:
            configs.append(row["config"])
    attacks = []
    for row in rows:
        if row["attack"] not in attacks:
            attacks.append(row["attack"])
    cell = {(r["attack"], r["config"]): r for r in rows}
    headers = ["attack (sharing/channel)"] + configs
    table_rows = []
    for attack in attacks:
        sample = next(r for r in rows if r["attack"] == attack)
        row = ["%s (%s/%s)" % (attack, sample["sharing"],
                               sample["channel"])]
        for config in configs:
            entry = cell[(attack, config)]
            mark = "LEAK" if entry["leaked"] else "safe"
            if entry["leaked"] != entry["expected"]:
                mark += "!?"
            row.append(mark)
        table_rows.append(row)
    return render_table(
        headers, table_rows,
        title="Cross-context security matrix (two co-resident contexts; "
              "'!?' marks divergence from the expected claim)",
    )


# ---------------------------------------------------------------------- #
# Table 2 — policies, protections, and overheads.
# ---------------------------------------------------------------------- #

_PAPER_OVERHEADS = {
    "Permissive": 10.7,
    "Permissive+BR": 22.3,
    "Strict": 36.1,
    "Strict+BR": 45.0,
    "Restricted Loads": 100.0,
    "Full Protection": 125.0,
    "InvisiSpec-Spectre": 7.6,
    "InvisiSpec-Future": 32.7,
}


def table2(suite: SuiteResult) -> List[dict]:
    """Overhead vs. OoO per mechanism, with the paper's numbers alongside."""
    rows = []
    for label in suite.labels:
        if label in (BASELINE_LABEL,):
            continue
        row = {
            "mechanism": label,
            "overhead_pct": suite.overhead_pct(label),
            "paper_pct": _PAPER_OVERHEADS.get(label),
            "speedup_vs_inorder": suite.speedup_over_inorder(label),
            "gap_closed_pct": suite.gap_closed_pct(label),
        }
        rows.append(row)
    return rows


def render_table2(rows: List[dict]) -> str:
    table_rows = []
    for row in rows:
        paper = row["paper_pct"]
        table_rows.append((
            row["mechanism"],
            "%.1f%%" % row["overhead_pct"],
            ("%.1f%%" % paper) if paper is not None else "-",
            "%.2fx" % row["speedup_vs_inorder"],
            "%.0f%%" % row["gap_closed_pct"],
        ))
    return render_table(
        ("mechanism", "overhead", "paper", "vs In-Order", "gap closed"),
        table_rows,
        title="Table 2: slowdown vs. insecure OoO "
              "(measured vs. paper; gap closed = share of the In-Order/OoO "
              "gap recovered)",
    )


# ---------------------------------------------------------------------- #
# Table 3 — the simulated machine.
# ---------------------------------------------------------------------- #


def table3(config: Optional[SimConfig] = None) -> List[Tuple[str, str]]:
    config = config or baseline_ooo()
    core = config.core
    mem = config.mem
    return [
        ("Architecture", "micro-op RISC at 2.0 GHz (cycle-level model)"),
        ("Core (OoO)",
         "%d-issue, %d LQ, %d SQ, %d ROB, %d BTB, %d RAS"
         % (core.issue_width, core.lq_entries, core.sq_entries,
            core.rob_entries, core.btb_entries, core.ras_entries)),
        ("Core (in-order)", "serial timing core (TimingSimpleCPU analog)"),
        ("L1-I/L1-D",
         "%dkB, %dB line, %d-way, %d-cycle RT, %d port"
         % (mem.l1d.size_bytes // 1024, mem.l1d.line_bytes, mem.l1d.assoc,
            mem.l1d.round_trip_cycles, mem.l1d.ports)),
        ("L2",
         "%dMB, %dB line, %d-way, %d-cycle RT"
         % (mem.l2.size_bytes // (1024 * 1024), mem.l2.line_bytes,
            mem.l2.assoc, mem.l2.round_trip_cycles)),
        ("DRAM", "%d-cycle response (50 ns at 2 GHz)" % mem.dram_cycles),
    ]


def render_table3(config: Optional[SimConfig] = None) -> str:
    rows = table3(config)
    return render_table(
        ("Parameter", "Value"), rows, title="Table 3: simulated machine"
    )
