"""Regeneration of every figure in the paper's evaluation (Figs. 4, 7, 8, 9).

Each ``figureN`` function returns plain data (dicts/lists) and has a
``render_figureN`` companion producing the text form the benchmark harness
prints and EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.attacks import spectre_btb, spectre_v1
from repro.attacks.common import AttackOutcome
from repro.config import (
    ConfigSpec,
    NDAPolicyName,
    SimConfig,
    baseline_ooo,
    nda_config,
    with_nda_delay,
)
from repro.harness.experiment import (
    BASELINE_LABEL,
    IN_ORDER_LABEL,
    SuiteResult,
    run_suite,
)
from repro.stats.counters import CycleClass
from repro.stats.report import render_series, render_table
from repro.stats.sampling import smarts_sample
from repro.workloads.generator import spec_program
from repro.workloads.profiles import DEFAULT_SUITE

# ---------------------------------------------------------------------- #
# Fig. 4 — Spectre v1 via cache and BTB on the insecure OoO baseline.
# ---------------------------------------------------------------------- #


def figure4(
    secret: int = 42,
    guesses: Optional[List[int]] = None,
    config: Optional[SimConfig] = None,
) -> Dict[str, AttackOutcome]:
    """Cycles-per-guess curves for both covert channels (insecure OoO)."""
    config = config or baseline_ooo()
    guesses = guesses if guesses is not None else list(range(256))
    return {
        "cache": spectre_v1.run(config, secret=secret, guesses=guesses),
        "btb": spectre_btb.run(config, secret=secret, guesses=guesses),
    }


def render_figure4(data: Dict[str, AttackOutcome], name: str = "Figure 4"):
    lines = ["%s: Spectre v1 guess timings (config: %s)"
             % (name, data["cache"].config_label)]
    for channel, outcome in data.items():
        lines.append(
            "  %-5s secret=%d recovered=%d leaked=%s margin=%.0f cycles"
            % (channel, outcome.secret, outcome.recovered, outcome.leaked,
               outcome.margin)
        )
        hot = [
            (g, t) for g, t in zip(outcome.guesses, outcome.timings)
            if t <= min(outcome.timings) + 2
        ]
        lines.append("        fastest guesses: %s" % hot[:4])
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Fig. 8 — the same attacks under NDA permissive propagation.
# ---------------------------------------------------------------------- #


def figure8(
    secret: int = 42, guesses: Optional[List[int]] = None
) -> Dict[str, AttackOutcome]:
    """Fig. 4 repeated with NDA permissive: the signal must vanish."""
    return figure4(
        secret=secret,
        guesses=guesses,
        config=nda_config(NDAPolicyName.PERMISSIVE),
    )


def render_figure8(data: Dict[str, AttackOutcome]) -> str:
    return render_figure4(data, name="Figure 8")


# ---------------------------------------------------------------------- #
# Fig. 7 — CPI normalized to OoO for all ten configurations.
# ---------------------------------------------------------------------- #


def figure7(suite: SuiteResult) -> List[dict]:
    """Rows of {benchmark, config, normalized CPI, 95% CI}."""
    rows = []
    for bench in suite.benchmarks:
        for label in suite.labels:
            rows.append({
                "benchmark": bench,
                "config": label,
                "norm_cpi": suite.normalized_cpi(bench, label),
                "ci95": suite.normalized_ci(bench, label),
            })
    return rows


def render_figure7(suite: SuiteResult) -> str:
    headers = ["benchmark"] + list(suite.labels)
    rows = []
    for bench in suite.benchmarks:
        row = [bench]
        for label in suite.labels:
            row.append(
                "%.2f+/-%.2f" % (
                    suite.normalized_cpi(bench, label),
                    suite.normalized_ci(bench, label),
                )
            )
        rows.append(row)
    mean_row = ["MEAN"]
    for label in suite.labels:
        mean_row.append("%.2f" % suite.mean_normalized_cpi(label))
    rows.append(mean_row)
    return render_table(
        headers, rows,
        title="Figure 7: CPI normalized to OoO (95% CI half-widths)",
    )


# ---------------------------------------------------------------------- #
# Fig. 9a — cycle breakdown.
# ---------------------------------------------------------------------- #


def figure9a(suite: SuiteResult) -> Dict[str, Dict[str, float]]:
    """Per-config cycle-class totals, normalized to baseline OoO cycles."""
    return {
        label: suite.breakdown(label)
        for label in suite.labels
        if label != IN_ORDER_LABEL
    }


def render_figure9a(suite: SuiteResult) -> str:
    data = figure9a(suite)
    headers = ["config"] + list(CycleClass.ALL) + ["total"]
    rows = []
    for label, breakdown in data.items():
        row = [label]
        for name in CycleClass.ALL:
            row.append("%.2f" % breakdown.get(name, 0.0))
        row.append("%.2f" % sum(breakdown.values()))
        rows.append(row)
    return render_table(
        headers, rows,
        title="Figure 9a: cycle breakdown (normalized to OoO cycles)",
    )


# ---------------------------------------------------------------------- #
# Fig. 9b/9c — MLP and ILP.
# ---------------------------------------------------------------------- #


def figure9b(suite: SuiteResult) -> Dict[str, float]:
    """Geometric-mean MLP per configuration."""
    return {label: suite.geomean_metric(label, "mlp")
            for label in suite.labels}


def figure9c(suite: SuiteResult) -> Dict[str, float]:
    """Geometric-mean ILP per configuration."""
    return {label: suite.geomean_metric(label, "ilp")
            for label in suite.labels}


def render_figure9bc(suite: SuiteResult) -> str:
    mlp = figure9b(suite)
    ilp = figure9c(suite)
    rows = [
        (label, "%.2f" % mlp[label], "%.2f" % ilp[label])
        for label in suite.labels
    ]
    return render_table(
        ("config", "MLP", "ILP"), rows,
        title="Figure 9b/9c: memory- and instruction-level parallelism",
    )


# ---------------------------------------------------------------------- #
# Fig. 9d — dispatch-to-issue latency.
# ---------------------------------------------------------------------- #


def figure9d(suite: SuiteResult) -> Dict[str, float]:
    """Mean dispatch-to-issue latency per configuration (cycles)."""
    return {
        label: suite.mean_metric(label, "mean_dispatch_to_issue")
        for label in suite.labels
        if label != IN_ORDER_LABEL
    }


def render_figure9d(suite: SuiteResult) -> str:
    data = figure9d(suite)
    rows = [(label, "%.1f" % value) for label, value in data.items()]
    text = render_table(
        ("config", "dispatch-to-issue (cycles)"), rows,
        title="Figure 9d: latency from dispatch to issue (means)",
    )
    # Distribution detail: bucketed latency histogram per configuration.
    buckets = set()
    histograms = {}
    for label in suite.labels:
        if label == IN_ORDER_LABEL:
            continue
        merged: Dict[int, int] = {}
        for bench in suite.benchmarks:
            agg = suite.run(bench, label).aggregate()
            for key, count in agg.dispatch_to_issue_hist.items():
                merged[key] = merged.get(key, 0) + count
        histograms[label] = merged
        buckets |= set(merged)
    ordered = sorted(buckets)
    headers = ["config"] + ["<%d" % (2 * b) if b else "0-1" for b in ordered]
    hist_rows = []
    for label, merged in histograms.items():
        total = sum(merged.values()) or 1
        hist_rows.append(
            [label] + ["%.0f%%" % (100 * merged.get(b, 0) / total)
                       for b in ordered]
        )
    text += "\n\n" + render_table(
        headers, hist_rows,
        title="Figure 9d detail: dispatch-to-issue latency distribution",
    )
    return text


# ---------------------------------------------------------------------- #
# Fig. 9e — sensitivity to NDA broadcast-logic latency.
# ---------------------------------------------------------------------- #


def figure9e(
    benchmarks: Sequence[str] = DEFAULT_SUITE,
    delays: Sequence[int] = (0, 1, 2),
    samples: int = 2,
    warmup: int = 2_000,
    measure: int = 6_000,
    instructions: int = 12_000,
    jobs: Optional[int] = None,
    cache=False,
    backend=None,
    backend_options=None,
    checkpoint=None,
    resume=None,
) -> Dict[str, float]:
    """Permissive-policy CPI (normalized to OoO) vs. extra wake-up delay.

    ``backend``/``checkpoint``/``resume`` pass straight through to the
    engine (see :func:`repro.harness.experiment.run_suite`), so the
    delay sweep can scale out over socket workers and survive
    preemption like any other campaign.
    """
    specs = [ConfigSpec("OoO", baseline_ooo())]
    for delay in delays:
        config = with_nda_delay(nda_config(NDAPolicyName.PERMISSIVE), delay)
        specs.append(
            ConfigSpec("Permissive, %d cycle delay" % delay, config)
        )
    suite = run_suite(
        benchmarks=benchmarks,
        configs=specs,
        samples=samples,
        warmup=warmup,
        measure=measure,
        instructions=instructions,
        jobs=jobs,
        cache=cache,
        backend=backend,
        backend_options=backend_options,
        checkpoint=checkpoint,
        resume=resume,
    )
    return {
        label: suite.mean_normalized_cpi(label)
        for label in suite.labels
        if label != "OoO"
    }


def render_figure9e(data: Dict[str, float]) -> str:
    rows = [(label, "%.3f" % value) for label, value in data.items()]
    return render_table(
        ("config", "normalized CPI"), rows,
        title="Figure 9e: impact of NDA logic latency on CPI",
    )
