"""Simulator-speed benchmark (host wall-clock, not simulated cycles).

Measures how fast the out-of-order core simulates — kilo-cycles of
simulated time per second of host time — with the idle-cycle
fast-forward on and off, per (workload, configuration) pair.  Every
measurement double-checks bit-identity: an FF-on run whose simulated
``cycles``/``committed`` differ from the FF-off run is a correctness
bug, and the harness raises instead of reporting a bogus speedup.

``run_simspeed`` returns a JSON-serializable payload;
``render_simspeed`` pretty-prints it; ``compare_simspeed`` diffs a
fresh payload against a checked-in baseline for the CI perf-smoke job
(warnings, never hard failures — CI runners are noisy).
"""

from __future__ import annotations

import platform
import time
from typing import Dict, List, Sequence

from repro.api import simulate
from repro.config import config_registry
from repro.workloads.generator import spec_program

#: Default measurement matrix: one DRAM-latency-bound workload (mcf,
#: where fast-forward shines), one branchy one (leela), one high-ILP
#: one (exchange2), across the protection schemes whose timing differs.
DEFAULT_WORKLOADS = ("mcf", "leela", "exchange2")
DEFAULT_CONFIGS = ("ooo", "strict", "invisispec-spectre", "fence-on-branch")
DEFAULT_INSTRUCTIONS = 3_000
DEFAULT_REPEATS = 3
DEFAULT_SEED = 7


class SimSpeedError(RuntimeError):
    """Raised when an FF-on run diverges from its FF-off reference."""


def _time_run(program, config, fast_forward: bool, repeats: int):
    """Best-of-*repeats* wall time; returns (seconds, outcome)."""
    best = None
    outcome = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = simulate(program, config, fast_forward=fast_forward)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            outcome = result
    return best, outcome


def measure_case(
    workload: str,
    config_name: str,
    instructions: int = DEFAULT_INSTRUCTIONS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
) -> Dict[str, object]:
    """Time one (workload, config) pair with fast-forward on and off."""
    spec = config_registry()[config_name]
    if spec.in_order:
        raise ValueError(
            "%r is an in-order configuration; the simulator-speed "
            "benchmark measures the out-of-order core" % config_name
        )
    program = spec_program(workload, instructions=instructions, seed=seed)
    wall_ff, fast = _time_run(program, spec.config, True, repeats)
    wall_no, slow = _time_run(program, spec.config, False, repeats)
    if (fast.stats.cycles != slow.stats.cycles
            or fast.stats.committed != slow.stats.committed):
        raise SimSpeedError(
            "fast-forward diverged on %s/%s: cycles %d vs %d, "
            "committed %d vs %d" % (
                workload, config_name,
                fast.stats.cycles, slow.stats.cycles,
                fast.stats.committed, slow.stats.committed,
            )
        )
    cycles = fast.stats.cycles
    committed = fast.stats.committed
    return {
        "workload": workload,
        "config": config_name,
        "label": spec.label,
        "cycles": cycles,
        "committed": committed,
        "wall_seconds": wall_ff,
        "wall_seconds_no_ff": wall_no,
        "cycles_per_sec": cycles / wall_ff if wall_ff > 0 else 0.0,
        "cycles_per_sec_no_ff": cycles / wall_no if wall_no > 0 else 0.0,
        "committed_per_sec": committed / wall_ff if wall_ff > 0 else 0.0,
        "speedup_vs_no_ff": wall_no / wall_ff if wall_ff > 0 else 0.0,
    }


def _one_obs_run(program, config, attach_bus: bool, sample_interval: int):
    """One timed core run, optionally with an attached telemetry bus
    (and a metrics sampler on it)."""
    from repro.core.ooo import OutOfOrderCore

    core = OutOfOrderCore(program, config)
    sampler = None
    if attach_bus:
        from repro.obs import EventBus, MetricsSampler

        bus = EventBus().attach(core)
        if sample_interval:
            sampler = bus.add_sampler(MetricsSampler(sample_interval))
    start = time.perf_counter()
    result = core.run()
    elapsed = time.perf_counter() - start
    return elapsed, result, len(sampler.rows) if sampler is not None else 0


def measure_obs_overhead(
    workload: str = "mcf",
    config_name: str = "strict",
    instructions: int = DEFAULT_INSTRUCTIONS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
    sample_interval: int = 1_000,
) -> Dict[str, object]:
    """Cost of the telemetry layer on one (workload, config) pair.

    Three timed variants of the same run: no bus at all (**detached** —
    every observer slot is None), a bus attached with no subscribers
    (every per-event attribute still None), and a bus with a periodic
    metrics sampler.  All three must be bit-identical; the overhead
    contract (DESIGN.md §3.5) is ~0% for the first two and <10% with
    sampling enabled.
    """
    spec = config_registry()[config_name]
    if spec.in_order:
        raise ValueError(
            "%r is an in-order configuration; measure the out-of-order "
            "core" % config_name
        )
    program = spec_program(workload, instructions=instructions, seed=seed)
    # Variants are interleaved within each repeat (not run as sequential
    # blocks) so slow host drift — thermal, cache, scheduler — biases all
    # three equally instead of whichever block ran last.
    variants = {
        "detached": (False, 0),
        "attached-idle": (True, 0),
        "sampling": (True, sample_interval),
    }
    best: Dict[str, float] = {}
    outcomes: Dict[str, object] = {}
    samples = 0
    for _ in range(max(repeats, 3)):
        for name, (attach_bus, interval) in variants.items():
            elapsed, result, rows = _one_obs_run(
                program, spec.config, attach_bus, interval
            )
            if name not in best or elapsed < best[name]:
                best[name] = elapsed
                outcomes[name] = result
                if name == "sampling":
                    samples = rows
    wall_off = best["detached"]
    wall_idle = best["attached-idle"]
    wall_sampled = best["sampling"]
    base = outcomes["detached"]
    for variant in ("attached-idle", "sampling"):
        outcome = outcomes[variant]
        if (outcome.stats.cycles != base.stats.cycles
                or outcome.stats.committed != base.stats.committed):
            raise SimSpeedError(
                "telemetry variant %r diverged on %s/%s: cycles %d vs "
                "%d, committed %d vs %d" % (
                    variant, workload, config_name,
                    outcome.stats.cycles, base.stats.cycles,
                    outcome.stats.committed, base.stats.committed,
                )
            )
    return {
        "workload": workload,
        "config": config_name,
        "cycles": base.stats.cycles,
        "sample_interval": sample_interval,
        "samples": samples,
        "wall_seconds_detached": wall_off,
        "wall_seconds_attached_idle": wall_idle,
        "wall_seconds_sampling": wall_sampled,
        "overhead_attached_idle": (
            wall_idle / wall_off - 1.0 if wall_off > 0 else 0.0
        ),
        "overhead_sampling": (
            wall_sampled / wall_off - 1.0 if wall_off > 0 else 0.0
        ),
    }


def run_simspeed(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    instructions: int = DEFAULT_INSTRUCTIONS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
    verbose: bool = False,
    obs: bool = False,
) -> Dict[str, object]:
    """Measure the full matrix; returns the JSON payload."""
    results: List[Dict[str, object]] = []
    for workload in workloads:
        for config_name in configs:
            case = measure_case(
                workload, config_name,
                instructions=instructions, repeats=repeats, seed=seed,
            )
            results.append(case)
            if verbose:
                print(
                    "  %-12s %-20s %8.0f kc/s  (%.2fx vs no-ff)" % (
                        workload, config_name,
                        case["cycles_per_sec"] / 1000.0,
                        case["speedup_vs_no_ff"],
                    )
                )
    speedups = [case["speedup_vs_no_ff"] for case in results]
    rates = [case["cycles_per_sec"] for case in results]
    payload: Dict[str, object] = {
        "schema": 1,
        "instructions": instructions,
        "repeats": repeats,
        "seed": seed,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
        "aggregate": {
            "min_speedup_vs_no_ff": min(speedups) if speedups else 0.0,
            "max_speedup_vs_no_ff": max(speedups) if speedups else 0.0,
            "best_cycles_per_sec": max(rates) if rates else 0.0,
        },
    }
    if obs:
        overhead = measure_obs_overhead(
            workload=workloads[0] if workloads else "mcf",
            config_name="strict" if "strict" in configs else configs[0],
            instructions=instructions, repeats=repeats, seed=seed,
        )
        payload["obs"] = overhead
        if verbose:
            print(
                "  obs overhead on %s/%s: %+.1f%% attached-idle, "
                "%+.1f%% sampling (%d samples)" % (
                    overhead["workload"], overhead["config"],
                    overhead["overhead_attached_idle"] * 100.0,
                    overhead["overhead_sampling"] * 100.0,
                    overhead["samples"],
                )
            )
    return payload


def render_simspeed(payload: Dict[str, object]) -> str:
    """ASCII table of one payload."""
    lines = [
        "Simulator speed (%d instructions, best of %d, seed %d, "
        "Python %s)" % (
            payload["instructions"], payload["repeats"],
            payload["seed"], payload["python"],
        ),
        "",
        "%-12s %-20s %10s %10s %10s %8s" % (
            "workload", "config", "sim-cycles", "kc/s (ff)",
            "kc/s (off)", "speedup",
        ),
        "-" * 76,
    ]
    for case in payload["results"]:
        lines.append(
            "%-12s %-20s %10d %10.0f %10.0f %7.2fx" % (
                case["workload"], case["config"], case["cycles"],
                case["cycles_per_sec"] / 1000.0,
                case["cycles_per_sec_no_ff"] / 1000.0,
                case["speedup_vs_no_ff"],
            )
        )
    agg = payload["aggregate"]
    lines.append("-" * 76)
    lines.append(
        "fast-forward speedup: min %.2fx, max %.2fx; best rate %.0f kc/s"
        % (
            agg["min_speedup_vs_no_ff"], agg["max_speedup_vs_no_ff"],
            agg["best_cycles_per_sec"] / 1000.0,
        )
    )
    obs = payload.get("obs")
    if obs:
        lines.append(
            "telemetry overhead (%s/%s, interval %d): "
            "%+.1f%% attached-idle, %+.1f%% sampling (%d samples)" % (
                obs["workload"], obs["config"], obs["sample_interval"],
                obs["overhead_attached_idle"] * 100.0,
                obs["overhead_sampling"] * 100.0,
                obs["samples"],
            )
        )
    return "\n".join(lines)


def compare_simspeed(
    payload: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = 0.25,
) -> List[str]:
    """Warnings for cases slower than *baseline* by more than *threshold*.

    Compares ``cycles_per_sec`` per (workload, config).  Returns
    human-readable warning strings — the CI job prints them and still
    exits 0, because shared-runner wall clocks are far too noisy for a
    hard perf gate.
    """
    warnings: List[str] = []
    for key in ("instructions", "seed"):
        if payload.get(key) != baseline.get(key):
            # kc/s scales with program size, so cross-parameter diffs
            # would be pure noise; say so instead of fake-warning.
            return [
                "NOTE: baseline measured with %s=%r, this run with %r "
                "-- skipping the regression check"
                % (key, baseline.get(key), payload.get(key))
            ]
    reference = {
        (case["workload"], case["config"]): case
        for case in baseline.get("results", [])
    }
    for case in payload["results"]:
        key = (case["workload"], case["config"])
        base = reference.get(key)
        if base is None or not base["cycles_per_sec"]:
            continue
        ratio = case["cycles_per_sec"] / base["cycles_per_sec"]
        if ratio < 1.0 - threshold:
            warnings.append(
                "WARNING: %s/%s simulates at %.0f kc/s, %.0f%% below the "
                "baseline's %.0f kc/s" % (
                    key[0], key[1],
                    case["cycles_per_sec"] / 1000.0,
                    (1.0 - ratio) * 100.0,
                    base["cycles_per_sec"] / 1000.0,
                )
            )
    return warnings
