"""Simulator-speed benchmark (host wall-clock, not simulated cycles).

Measures how fast the out-of-order core simulates — kilo-cycles of
simulated time per second of host time — per (workload, configuration,
engine) triple, with the idle-cycle fast-forward on and off.  Schema 2
(the engine era) differs from schema 1 in three deliberate ways:

* **Construction is excluded from the timer.**  Program generation,
  cache/core construction and the fast engine's one-time micro-op
  pre-decode happen before ``perf_counter`` starts; only ``core.run()``
  is measured.  Schema 1 timed ``simulate()`` whole, so its numbers
  under-report steady-state throughput (and penalized the fast engine
  for its pre-decode pass, which real sweeps pay once per thousands of
  windows).
* **Every row names its ``engine`` and ``windows``.**  The same
  (workload, config) is measured under both the reference core and the
  table-driven fast core, and the payload carries explicit
  fast-vs-reference speedup columns.  Multi-window rows (``windows >
  1``) measure the lockstep runner's aggregate throughput.
* **Bit-identity is enforced across engines, not just FF modes.**  A
  fast-engine run whose ``cycles``/``committed`` differ from the
  reference engine's is a correctness bug and the harness raises.

``run_simspeed`` returns a JSON-serializable payload;
``render_simspeed`` pretty-prints it; ``compare_simspeed`` diffs a
fresh payload against a checked-in baseline (warn-only — shared-runner
clocks are noisy); ``gate_simspeed`` is the one hard check CI enforces:
the fast engine must hold at least a 2x stepping-path advantage over
the reference on mcf/ooo.  ``profile_case`` captures a cProfile pstats
dump of one row for regression triage.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.config import config_registry
from repro.core import make_core
from repro.workloads.generator import spec_program

#: Default measurement matrix: one DRAM-latency-bound workload (mcf,
#: where fast-forward shines), one branchy one (leela), one high-ILP
#: one (exchange2), across the protection schemes whose timing differs.
DEFAULT_WORKLOADS = ("mcf", "leela", "exchange2")
DEFAULT_CONFIGS = ("ooo", "strict", "invisispec-spectre", "fence-on-branch")
DEFAULT_ENGINES = ("reference", "fast")
DEFAULT_INSTRUCTIONS = 3_000
DEFAULT_REPEATS = 3
DEFAULT_SEED = 7

#: CI hard gate: minimum fast/reference stepping-path (no-FF) speedup
#: on the gate case.  The no-FF ratio is the honest engine comparison —
#: fast-forward skips work instead of doing it faster, and its benefit
#: varies per scheme.
GATE_WORKLOAD = "mcf"
GATE_CONFIG = "ooo"
GATE_MIN_RATIO = 2.0


class SimSpeedError(RuntimeError):
    """Raised when two must-be-identical runs diverge."""


def _build_core(program, config, engine: str, fast_forward: bool):
    """One measured core, constructed OUTSIDE any timer."""
    return make_core(
        program, replace(config, engine=engine), fast_forward=fast_forward,
    )


def _time_run(program, config, engine: str, fast_forward: bool,
              repeats: int):
    """Best-of-*repeats* wall time of ``core.run()`` alone.

    A fresh core is constructed per repeat (runs mutate machine state),
    but construction — including the fast engine's micro-op pre-decode —
    happens before the clock starts.  Returns ``(seconds, outcome)``.
    """
    best = None
    outcome = None
    for _ in range(repeats):
        core = _build_core(program, config, engine, fast_forward)
        start = time.perf_counter()
        result = core.run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
            outcome = result
    return best, outcome


def _check_identical(what: str, a, b) -> None:
    if (a.stats.cycles != b.stats.cycles
            or a.stats.committed != b.stats.committed):
        raise SimSpeedError(
            "%s diverged: cycles %d vs %d, committed %d vs %d" % (
                what, a.stats.cycles, b.stats.cycles,
                a.stats.committed, b.stats.committed,
            )
        )


def measure_case(
    workload: str,
    config_name: str,
    instructions: int = DEFAULT_INSTRUCTIONS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
    engine: str = "fast",
) -> Dict[str, object]:
    """Time one (workload, config, engine) triple, FF on and off."""
    spec = config_registry()[config_name]
    if spec.in_order:
        raise ValueError(
            "%r is an in-order configuration; the simulator-speed "
            "benchmark measures the out-of-order core" % config_name
        )
    program = spec_program(workload, instructions=instructions, seed=seed)
    wall_ff, fast = _time_run(program, spec.config, engine, True, repeats)
    wall_no, slow = _time_run(program, spec.config, engine, False, repeats)
    _check_identical(
        "fast-forward on %s/%s [%s]" % (workload, config_name, engine),
        fast, slow,
    )
    cycles = fast.stats.cycles
    committed = fast.stats.committed
    return {
        "workload": workload,
        "config": config_name,
        "label": spec.label,
        "engine": engine,
        "windows": 1,
        "cycles": cycles,
        "committed": committed,
        "wall_seconds": wall_ff,
        "wall_seconds_no_ff": wall_no,
        "cycles_per_sec": cycles / wall_ff if wall_ff > 0 else 0.0,
        "cycles_per_sec_no_ff": cycles / wall_no if wall_no > 0 else 0.0,
        "committed_per_sec": committed / wall_ff if wall_ff > 0 else 0.0,
        "speedup_vs_no_ff": wall_no / wall_ff if wall_ff > 0 else 0.0,
    }


def measure_multiwindow(
    workload: str,
    config_name: str,
    windows: int,
    instructions: int = DEFAULT_INSTRUCTIONS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
    engine: str = "fast",
) -> Dict[str, object]:
    """Aggregate throughput of *windows* lockstep runs (seeds seed..+N-1).

    Each window is a full run of its own generated program; the row's
    ``cycles_per_sec`` is total simulated cycles across all windows per
    second of lockstep wall time.  Setup (program generation, core
    construction, pre-decode) is reported separately, not timed.
    """
    from repro.harness.multiwindow import run_cores_lockstep

    spec = config_registry()[config_name]
    if spec.in_order:
        raise ValueError(
            "%r is an in-order configuration; the simulator-speed "
            "benchmark measures the out-of-order core" % config_name
        )
    config = replace(spec.config, engine=engine)
    programs = [
        spec_program(workload, instructions=instructions, seed=seed + i)
        for i in range(windows)
    ]
    best_wall = None
    best_outcomes = None
    setup_seconds = 0.0
    for _ in range(repeats):
        setup_start = time.perf_counter()
        cores = [make_core(program, config) for program in programs]
        setup_seconds += time.perf_counter() - setup_start
        start = time.perf_counter()
        outcomes = run_cores_lockstep(cores, max_cycles=5_000_000)
        elapsed = time.perf_counter() - start
        if best_wall is None or elapsed < best_wall:
            best_wall = elapsed
            best_outcomes = outcomes
    cycles = sum(o.stats.cycles for o in best_outcomes)
    committed = sum(o.stats.committed for o in best_outcomes)
    return {
        "workload": workload,
        "config": config_name,
        "label": spec.label,
        "engine": engine,
        "windows": windows,
        "cycles": cycles,
        "committed": committed,
        "wall_seconds": best_wall,
        "setup_seconds": setup_seconds / repeats,
        "cycles_per_sec": cycles / best_wall if best_wall > 0 else 0.0,
        "committed_per_sec": (
            committed / best_wall if best_wall > 0 else 0.0
        ),
    }


def _one_obs_run(program, config, attach_bus: bool, sample_interval: int,
                 tracer=None):
    """One timed core run, optionally with an attached telemetry bus
    (and a metrics sampler on it) and/or a run span on *tracer*."""
    from repro.core.ooo import OutOfOrderCore

    core = OutOfOrderCore(program, config)
    sampler = None
    if attach_bus:
        from repro.obs import EventBus, MetricsSampler

        bus = EventBus().attach(core)
        if sample_interval:
            sampler = bus.add_sampler(MetricsSampler(sample_interval))
    start = time.perf_counter()
    if tracer is not None:
        with tracer.span("simspeed.run",
                         attrs={"program": program.name or ""}):
            result = core.run()
    else:
        result = core.run()
    elapsed = time.perf_counter() - start
    return elapsed, result, len(sampler.rows) if sampler is not None else 0


def measure_obs_overhead(
    workload: str = "mcf",
    config_name: str = "strict",
    instructions: int = DEFAULT_INSTRUCTIONS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
    sample_interval: int = 1_000,
) -> Dict[str, object]:
    """Cost of the telemetry layer on one (workload, config) pair.

    Four timed variants of the same run: no bus at all (**detached** —
    every observer slot is None), a bus attached with no subscribers
    (every per-event attribute still None), a bus with a periodic
    metrics sampler, and a run under an installed span tracer spooling
    to a scratch directory (the distributed-tracing attach cost — one
    span + one JSONL append per run).  All four must be bit-identical;
    the overhead contract (DESIGN.md §3.5/§3.10) is ~0% for the first
    two and <10% with sampling or tracing enabled.  Measured on the
    reference engine (the telemetry bus's hook-elision contract is
    defined against it).
    """
    import tempfile

    from repro.obs.spans import Tracer, install_tracer, uninstall_tracer

    spec = config_registry()[config_name]
    if spec.in_order:
        raise ValueError(
            "%r is an in-order configuration; measure the out-of-order "
            "core" % config_name
        )
    program = spec_program(workload, instructions=instructions, seed=seed)
    # Variants are interleaved within each repeat (not run as sequential
    # blocks) so slow host drift — thermal, cache, scheduler — biases all
    # variants equally instead of whichever block ran last.
    variants = {
        "detached": (False, 0, False),
        "attached-idle": (True, 0, False),
        "sampling": (True, sample_interval, False),
        "tracing": (False, 0, True),
    }
    best: Dict[str, float] = {}
    outcomes: Dict[str, object] = {}
    samples = 0
    with tempfile.TemporaryDirectory() as spool_dir:
        for _ in range(max(repeats, 3)):
            for name, (attach_bus, interval, traced) in variants.items():
                tracer = None
                if traced:
                    tracer = Tracer("simspeed", spool_dir=spool_dir)
                    install_tracer(tracer)
                try:
                    elapsed, result, rows = _one_obs_run(
                        program, spec.config, attach_bus, interval,
                        tracer=tracer,
                    )
                finally:
                    if traced:
                        uninstall_tracer()
                if name not in best or elapsed < best[name]:
                    best[name] = elapsed
                    outcomes[name] = result
                    if name == "sampling":
                        samples = rows
    wall_off = best["detached"]
    wall_idle = best["attached-idle"]
    wall_sampled = best["sampling"]
    wall_traced = best["tracing"]
    base = outcomes["detached"]
    for variant in ("attached-idle", "sampling", "tracing"):
        _check_identical(
            "telemetry variant %r on %s/%s" % (
                variant, workload, config_name,
            ),
            outcomes[variant], base,
        )
    return {
        "workload": workload,
        "config": config_name,
        "cycles": base.stats.cycles,
        "sample_interval": sample_interval,
        "samples": samples,
        "wall_seconds_detached": wall_off,
        "wall_seconds_attached_idle": wall_idle,
        "wall_seconds_sampling": wall_sampled,
        "wall_seconds_tracing": wall_traced,
        "overhead_attached_idle": (
            wall_idle / wall_off - 1.0 if wall_off > 0 else 0.0
        ),
        "overhead_sampling": (
            wall_sampled / wall_off - 1.0 if wall_off > 0 else 0.0
        ),
        "overhead_tracing": (
            wall_traced / wall_off - 1.0 if wall_off > 0 else 0.0
        ),
    }


def run_simspeed(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    instructions: int = DEFAULT_INSTRUCTIONS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
    verbose: bool = False,
    obs: bool = False,
    engines: Sequence[str] = DEFAULT_ENGINES,
    windows: int = 1,
) -> Dict[str, object]:
    """Measure the full matrix; returns the JSON (schema 2) payload.

    Each (workload, config) pair is measured under every engine in
    *engines*; when both engines are present, cross-engine bit-identity
    is asserted and ``speedup_fast_vs_reference`` /
    ``speedup_fast_vs_reference_no_ff`` are attached to the fast rows.
    ``windows > 1`` appends lockstep aggregate rows (fast engine) for
    each pair.
    """
    results: List[Dict[str, object]] = []
    for workload in workloads:
        for config_name in configs:
            by_engine: Dict[str, Dict[str, object]] = {}
            for engine in engines:
                case = measure_case(
                    workload, config_name,
                    instructions=instructions, repeats=repeats,
                    seed=seed, engine=engine,
                )
                by_engine[engine] = case
                results.append(case)
            if "reference" in by_engine and "fast" in by_engine:
                ref = by_engine["reference"]
                fast = by_engine["fast"]
                if (ref["cycles"] != fast["cycles"]
                        or ref["committed"] != fast["committed"]):
                    raise SimSpeedError(
                        "engines diverged on %s/%s: cycles %d vs %d, "
                        "committed %d vs %d" % (
                            workload, config_name,
                            ref["cycles"], fast["cycles"],
                            ref["committed"], fast["committed"],
                        )
                    )
                fast["speedup_fast_vs_reference"] = (
                    fast["cycles_per_sec"] / ref["cycles_per_sec"]
                    if ref["cycles_per_sec"] else 0.0
                )
                fast["speedup_fast_vs_reference_no_ff"] = (
                    fast["cycles_per_sec_no_ff"]
                    / ref["cycles_per_sec_no_ff"]
                    if ref["cycles_per_sec_no_ff"] else 0.0
                )
            if windows > 1:
                agg = measure_multiwindow(
                    workload, config_name, windows,
                    instructions=instructions, repeats=repeats,
                    seed=seed, engine="fast",
                )
                single = by_engine.get("fast") or by_engine.get(
                    "reference"
                )
                if single and single["cycles_per_sec"]:
                    agg["speedup_vs_single_window"] = (
                        agg["cycles_per_sec"] / single["cycles_per_sec"]
                    )
                results.append(agg)
            if verbose:
                for case in results[-len(by_engine) - (windows > 1):]:
                    print(
                        "  %-12s %-20s %-9s w=%-2d %8.0f kc/s" % (
                            case["workload"], case["config"],
                            case["engine"], case["windows"],
                            case["cycles_per_sec"] / 1000.0,
                        )
                    )
    single_rows = [c for c in results if c["windows"] == 1]
    speedups = [
        c["speedup_vs_no_ff"] for c in single_rows
        if "speedup_vs_no_ff" in c
    ]
    rates = [c["cycles_per_sec"] for c in results]
    engine_ratios = [
        c["speedup_fast_vs_reference_no_ff"] for c in single_rows
        if "speedup_fast_vs_reference_no_ff" in c
    ]
    payload: Dict[str, object] = {
        "schema": 2,
        "instructions": instructions,
        "repeats": repeats,
        "seed": seed,
        "engines": list(engines),
        "windows": windows,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
        "aggregate": {
            "min_speedup_vs_no_ff": min(speedups) if speedups else 0.0,
            "max_speedup_vs_no_ff": max(speedups) if speedups else 0.0,
            "best_cycles_per_sec": max(rates) if rates else 0.0,
            "min_speedup_fast_vs_reference_no_ff": (
                min(engine_ratios) if engine_ratios else 0.0
            ),
            "max_speedup_fast_vs_reference_no_ff": (
                max(engine_ratios) if engine_ratios else 0.0
            ),
        },
    }
    if obs:
        overhead = measure_obs_overhead(
            workload=workloads[0] if workloads else "mcf",
            config_name="strict" if "strict" in configs else configs[0],
            instructions=instructions, repeats=repeats, seed=seed,
        )
        payload["obs"] = overhead
        if verbose:
            print(
                "  obs overhead on %s/%s: %+.1f%% attached-idle, "
                "%+.1f%% sampling (%d samples), %+.1f%% tracing" % (
                    overhead["workload"], overhead["config"],
                    overhead["overhead_attached_idle"] * 100.0,
                    overhead["overhead_sampling"] * 100.0,
                    overhead["samples"],
                    overhead["overhead_tracing"] * 100.0,
                )
            )
    return payload


def profile_case(
    workload: str,
    config_name: str,
    output_path: str,
    instructions: int = DEFAULT_INSTRUCTIONS,
    seed: int = DEFAULT_SEED,
    engine: str = "fast",
) -> str:
    """cProfile one run of a row; dump pstats to *output_path*.

    Construction stays outside the profiler, matching what the timer
    measures.  Returns the path written.  Note cProfile's tracing
    inflates wall time several-fold — the dump is for *relative*
    hotspot triage, never for kc/s numbers.
    """
    import cProfile
    import os

    spec = config_registry()[config_name]
    program = spec_program(workload, instructions=instructions, seed=seed)
    core = _build_core(program, spec.config, engine, True)
    profiler = cProfile.Profile()
    profiler.enable()
    core.run()
    profiler.disable()
    directory = os.path.dirname(output_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    profiler.dump_stats(output_path)
    return output_path


def _slowest_row(payload: Dict[str, object]) -> Optional[Dict[str, object]]:
    """The single-window row with the lowest kc/s (profiling target)."""
    rows = [
        c for c in payload.get("results", [])
        if c.get("windows") == 1 and c.get("cycles_per_sec")
    ]
    if not rows:
        return None
    return min(rows, key=lambda c: c["cycles_per_sec"])


def render_simspeed(payload: Dict[str, object]) -> str:
    """ASCII table of one payload (schema 2)."""
    lines = [
        "Simulator speed (%d instructions, best of %d, seed %d, "
        "Python %s)" % (
            payload["instructions"], payload["repeats"],
            payload["seed"], payload["python"],
        ),
        "",
        "%-12s %-20s %-9s %3s %10s %10s %10s %8s %8s" % (
            "workload", "config", "engine", "win", "sim-cycles",
            "kc/s (ff)", "kc/s (off)", "ff-spd", "vs-ref",
        ),
        "-" * 100,
    ]
    for case in payload["results"]:
        no_ff = case.get("cycles_per_sec_no_ff")
        ratio = case.get("speedup_fast_vs_reference_no_ff")
        lines.append(
            "%-12s %-20s %-9s %3d %10d %10.0f %10s %8s %8s" % (
                case["workload"], case["config"], case["engine"],
                case["windows"], case["cycles"],
                case["cycles_per_sec"] / 1000.0,
                "%.0f" % (no_ff / 1000.0) if no_ff else "-",
                "%.2fx" % case["speedup_vs_no_ff"]
                if "speedup_vs_no_ff" in case else "-",
                "%.2fx" % ratio if ratio else "-",
            )
        )
    agg = payload["aggregate"]
    lines.append("-" * 100)
    lines.append(
        "fast-forward speedup: min %.2fx, max %.2fx; best rate %.0f kc/s"
        % (
            agg["min_speedup_vs_no_ff"], agg["max_speedup_vs_no_ff"],
            agg["best_cycles_per_sec"] / 1000.0,
        )
    )
    if agg.get("min_speedup_fast_vs_reference_no_ff"):
        lines.append(
            "fast engine vs reference (stepping path, no FF): "
            "min %.2fx, max %.2fx" % (
                agg["min_speedup_fast_vs_reference_no_ff"],
                agg["max_speedup_fast_vs_reference_no_ff"],
            )
        )
    obs = payload.get("obs")
    if obs:
        lines.append(
            "telemetry overhead (%s/%s, interval %d): "
            "%+.1f%% attached-idle, %+.1f%% sampling (%d samples), "
            "%+.1f%% tracing" % (
                obs["workload"], obs["config"], obs["sample_interval"],
                obs["overhead_attached_idle"] * 100.0,
                obs["overhead_sampling"] * 100.0,
                obs["samples"],
                obs.get("overhead_tracing", 0.0) * 100.0,
            )
        )
    return "\n".join(lines)


def compare_simspeed(
    payload: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = 0.25,
) -> List[str]:
    """Warnings for cases slower than *baseline* by more than *threshold*.

    Compares ``cycles_per_sec`` per (workload, config, engine, windows).
    Returns human-readable warning strings — the CI job prints them and
    still exits 0, because shared-runner wall clocks are far too noisy
    for a hard perf gate (that is :func:`gate_simspeed`'s job, and it
    compares two engines within ONE run, immune to host speed).
    """
    warnings: List[str] = []
    if payload.get("schema") != baseline.get("schema"):
        return [
            "NOTE: baseline is schema %r, this run is schema %r -- "
            "skipping the regression check (schema 2 times core.run() "
            "only; schema 1 numbers include construction)" % (
                baseline.get("schema"), payload.get("schema"),
            )
        ]
    for key in ("instructions", "seed"):
        if payload.get(key) != baseline.get(key):
            # kc/s scales with program size, so cross-parameter diffs
            # would be pure noise; say so instead of fake-warning.
            return [
                "NOTE: baseline measured with %s=%r, this run with %r "
                "-- skipping the regression check"
                % (key, baseline.get(key), payload.get(key))
            ]
    reference = {
        (
            case["workload"], case["config"],
            case.get("engine", "reference"), case.get("windows", 1),
        ): case
        for case in baseline.get("results", [])
    }
    for case in payload["results"]:
        key = (
            case["workload"], case["config"],
            case.get("engine", "reference"), case.get("windows", 1),
        )
        base = reference.get(key)
        if base is None or not base["cycles_per_sec"]:
            continue
        ratio = case["cycles_per_sec"] / base["cycles_per_sec"]
        if ratio < 1.0 - threshold:
            warnings.append(
                "WARNING: %s/%s [%s, w=%d] simulates at %.0f kc/s, "
                "%.0f%% below the baseline's %.0f kc/s" % (
                    key[0], key[1], key[2], key[3],
                    case["cycles_per_sec"] / 1000.0,
                    (1.0 - ratio) * 100.0,
                    base["cycles_per_sec"] / 1000.0,
                )
            )
    return warnings


def gate_simspeed(
    payload: Dict[str, object],
    min_ratio: float = GATE_MIN_RATIO,
    workload: str = GATE_WORKLOAD,
    config: str = GATE_CONFIG,
) -> List[str]:
    """The CI hard gate: fast engine >= *min_ratio* x reference.

    Checks ``speedup_fast_vs_reference_no_ff`` on the gate case — a
    within-run ratio of two engines measured back-to-back on the same
    host, so absolute runner speed cancels out.  Returns failure
    strings (empty when the gate passes); the CI job exits non-zero on
    any.
    """
    failures: List[str] = []
    row = None
    for case in payload.get("results", []):
        if (case.get("workload") == workload
                and case.get("config") == config
                and case.get("engine") == "fast"
                and case.get("windows") == 1):
            row = case
            break
    if row is None:
        return [
            "GATE: no fast-engine row for %s/%s in the payload -- run "
            "with both engines enabled" % (workload, config)
        ]
    ratio = row.get("speedup_fast_vs_reference_no_ff")
    if not ratio:
        return [
            "GATE: %s/%s fast row has no reference counterpart -- run "
            "with both engines enabled" % (workload, config)
        ]
    if ratio < min_ratio:
        failures.append(
            "GATE FAILURE: fast engine is %.2fx the reference on %s/%s "
            "(stepping path, no FF); the floor is %.2fx" % (
                ratio, workload, config, min_ratio,
            )
        )
    return failures


# ---------------------------------------------------------------------- #
# Perf trajectory: append-only bench history across commits.
# ---------------------------------------------------------------------- #

#: Append-only JSONL file ``--history`` writes one row per run to.
HISTORY_PATH = "results/bench_history.jsonl"


def _history_rates(payload: Dict[str, object]) -> Dict[str, float]:
    """Flatten a simspeed payload to ``key -> cycles_per_sec``."""
    rates: Dict[str, float] = {}
    for case in payload.get("results", []):
        key = "%s/%s/%s/w%d" % (
            case.get("workload", "?"), case.get("config", "?"),
            case.get("engine", "reference"), case.get("windows", 1),
        )
        rates[key] = round(float(case.get("cycles_per_sec", 0.0)), 1)
    return rates


def append_history(payload: Dict[str, object],
                   path: str = HISTORY_PATH) -> Dict[str, object]:
    """Append one timestamped, git-SHA-stamped row for *payload*.

    The file is JSONL so rows from different commits accumulate without
    merge conflicts; :func:`compare_history` reads the last row back.
    Returns the entry written.
    """
    import datetime
    from pathlib import Path

    from repro.obs.manifest import git_revision

    entry = {
        "recorded": datetime.datetime.now(
            datetime.timezone.utc
        ).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git_revision": git_revision(default=""),
        "schema": payload.get("schema"),
        "instructions": payload.get("instructions"),
        "seed": payload.get("seed"),
        "cycles_per_sec": _history_rates(payload),
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(path: str = HISTORY_PATH) -> List[Dict[str, object]]:
    """Every parseable history row, oldest first (missing file: [])."""
    from pathlib import Path

    rows: List[Dict[str, object]] = []
    try:
        text = Path(path).read_text()
    except OSError:
        return rows
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError:
            continue
        if isinstance(row, dict):
            rows.append(row)
    return rows


def compare_history(payload: Dict[str, object],
                    path: str = HISTORY_PATH,
                    threshold: float = 0.25) -> List[str]:
    """Human-readable drift report vs the last history row (warn-only).

    Flags per-case throughput moves beyond *threshold* in either
    direction; comparable only on the same host, so CI treats these as
    annotations, not gates.
    """
    history = load_history(path)
    if not history:
        return ["history: no prior rows at %s (this run seeds it)" % path]
    prev = history[-1]
    lines = [
        "history: comparing against %s (%s, %d prior rows)" % (
            (prev.get("git_revision") or "no-git")[:12],
            prev.get("recorded", "?"), len(history),
        )
    ]
    prev_rates = prev.get("cycles_per_sec") or {}
    for key, now_rate in sorted(_history_rates(payload).items()):
        then_rate = prev_rates.get(key)
        if not then_rate or not now_rate:
            continue
        ratio = now_rate / then_rate
        if ratio < 1.0 - threshold:
            lines.append(
                "  WARNING %-36s %.0f -> %.0f kc/s (%.0f%% slower)" % (
                    key, then_rate / 1e3, now_rate / 1e3,
                    (1.0 - ratio) * 100.0,
                )
            )
        elif ratio > 1.0 + threshold:
            lines.append(
                "  note    %-36s %.0f -> %.0f kc/s (%.0f%% faster)" % (
                    key, then_rate / 1e3, now_rate / 1e3,
                    (ratio - 1.0) * 100.0,
                )
            )
    if len(lines) == 1:
        lines.append("  all cases within %.0f%% of the previous row"
                     % (threshold * 100.0))
    return lines
