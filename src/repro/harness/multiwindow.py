"""Lockstep multi-window runner: N independent windows, one interpreter.

The sweep and the fuzzer spend their time running many *independent*
simulations of the same configuration — SMARTS sampling windows at
different seeds, fuzz seeds under one scheme.  On a single-CPU host the
process pool cannot help, so this module amortizes the per-run driver
overhead instead: it constructs every core up front (program generation,
cache construction and the micro-op pre-decode all happen once, outside
the stepped region) and then advances all windows round-robin in
*quanta* of committed instructions, each quantum running inside the
core's own hoisted ``run_to_commit``/``run_slice`` loop rather than a
per-``advance()`` Python loop.

Lockstep changes nothing observable: the cores share no state, each
window's advance sequence is a pure function of its own machine state,
and ``run_to_commit(a); run_to_commit(b)`` equals ``run_to_commit(b)``
for ``a <= b`` — so every window's counters are bit-identical to
running it alone through :func:`repro.stats.sampling.run_window` (the
multi-window determinism test pins this).

Three entry points:

* :func:`run_windows` — N sampling windows (different seeds, same
  config), returning per-window :class:`~repro.stats.counters.\
  PipelineStats` plus aggregate throughput accounting.
* :func:`run_cores_lockstep` — N already-built cores driven to
  completion (HALT/budget) with ``run()``'s exact deadlock semantics;
  the fuzz campaign's in-process batching uses this.
* :class:`WindowTask` — the picklable description one window.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.config import SimConfig
from repro.core import make_core
from repro.core.inorder import InOrderCore
from repro.core.outcome import RunOutcome
from repro.errors import ConfigError, SimulationError
from repro.obs.spans import maybe_tracer
from repro.stats.counters import PipelineStats
from repro.workloads.generator import spec_program

#: Committed instructions each window advances per lockstep turn.  Large
#: enough that the Python-level turn bookkeeping is noise next to the
#: in-core loop, small enough that windows progress together (progress
#: callbacks and ctrl-C stay responsive).
DEFAULT_QUANTUM = 1_024


@dataclass(frozen=True)
class WindowTask:
    """One SMARTS sampling window of the lockstep group."""

    benchmark: str
    instructions: int
    seed: int
    config: SimConfig
    warmup: int = 2_000
    measure: int = 8_000
    in_order: bool = False
    max_cycles: int = 30_000_000

    def build_program(self):
        return spec_program(
            self.benchmark, instructions=self.instructions, seed=self.seed
        )

    def describe(self) -> str:
        return "%s seed %d (%d warmup + %d measure)" % (
            self.benchmark, self.seed, self.warmup, self.measure,
        )


@dataclass
class WindowResult:
    """One finished window: its measurement counters plus totals."""

    task: WindowTask
    window: PipelineStats
    #: Total simulated cycles for the window run (warmup included).
    cycles: int
    committed: int


@dataclass
class MultiWindowResult:
    """Everything one lockstep batch produced."""

    results: List[WindowResult] = field(default_factory=list)
    #: Program generation + core construction + micro-op pre-decode.
    setup_seconds: float = 0.0
    #: Wall time of the lockstep stepping itself.
    run_seconds: float = 0.0

    @property
    def total_cycles(self) -> int:
        return sum(r.cycles for r in self.results)

    @property
    def aggregate_kilo_cycles_per_sec(self) -> float:
        if self.run_seconds <= 0:
            return 0.0
        return self.total_cycles / self.run_seconds / 1e3


@dataclass
class _WindowState:
    core: object
    task: WindowTask
    start: Optional[PipelineStats] = None
    done: bool = False
    result: Optional[WindowResult] = None


def _finish_window(state: _WindowState) -> None:
    """Same epilogue as ``run_window``: delta, emptiness check."""
    core = state.core
    core.stats.cycles = core.cycle
    core.stats.committed = core.committed
    window = core.stats.delta(state.start)
    if window.committed == 0:
        raise SimulationError(
            "empty measurement window for %s" % state.task.benchmark
        )
    state.result = WindowResult(
        task=state.task,
        window=window,
        cycles=core.cycle,
        committed=core.committed,
    )
    state.done = True


def run_windows(
    tasks: Sequence[WindowTask],
    quantum: int = DEFAULT_QUANTUM,
    fast_forward: bool = True,
    progress: Optional[Callable[[WindowResult], None]] = None,
) -> MultiWindowResult:
    """Run *tasks* to their window boundaries in lockstep.

    Per-window counters are bit-identical to running each task alone
    through :func:`repro.stats.sampling.run_window`; errors (halt before
    warm-up, empty window) raise the same ``SimulationError`` and abort
    the whole batch.
    """
    if quantum <= 0:
        raise ValueError("quantum must be positive, got %d" % quantum)
    for task in tasks:
        if getattr(task.config, "num_contexts", 1) > 1:
            raise ConfigError(
                "the lockstep window runner interleaves independent "
                "single-context cores; a num_contexts=%d config needs "
                "repro.smt.SmtMachine instead" % task.config.num_contexts
            )
    out = MultiWindowResult()
    setup_start = time.perf_counter()
    states: List[_WindowState] = []
    for task in tasks:
        program = task.build_program()
        core = (
            InOrderCore(program, task.config) if task.in_order
            else make_core(
                program, task.config, fast_forward=fast_forward,
            )
        )
        states.append(_WindowState(core=core, task=task))
    out.setup_seconds = time.perf_counter() - setup_start

    # Per-window spans are retroactive records (the windows interleave,
    # so live start/stop nesting would misrepresent them); detached runs
    # skip every tracer branch, keeping the stepped loop untouched.
    tracer = maybe_tracer()
    batch_start_unix = time.time()

    run_start = time.perf_counter()
    remaining = len(states)
    while remaining:
        for state in states:
            if state.done:
                continue
            core = state.core
            task = state.task
            if state.start is None:
                bound = core.committed + quantum
                if bound > task.warmup:
                    bound = task.warmup
                core.run_to_commit(bound, task.max_cycles)
                if core.committed >= task.warmup:
                    core.stats.cycles = core.cycle
                    core.stats.committed = core.committed
                    state.start = core.stats.snapshot()
                elif core.halted or core.cycle >= task.max_cycles:
                    raise SimulationError(
                        "program %s halted after %d instructions, before "
                        "the %d-instruction warm-up finished" % (
                            task.benchmark, core.committed, task.warmup,
                        )
                    )
            else:
                end = task.warmup + task.measure
                bound = core.committed + quantum
                if bound > end:
                    bound = end
                core.run_to_commit(bound, task.max_cycles)
                if (
                    core.committed >= end
                    or core.halted
                    or core.cycle >= task.max_cycles
                ):
                    _finish_window(state)
                    remaining -= 1
                    if tracer is not None:
                        tracer.record(
                            "window", batch_start_unix, time.time(),
                            attrs={
                                "benchmark": task.benchmark,
                                "seed": task.seed,
                                "cycles": state.result.cycles,
                                "committed": state.result.committed,
                            },
                        )
                    if progress is not None:
                        progress(state.result)
    out.run_seconds = time.perf_counter() - run_start
    out.results = [state.result for state in states]
    return out


def run_cores_lockstep(
    cores: Sequence[object],
    max_cycles: int,
    deadlock_cycles: int = 100_000,
    quantum: int = DEFAULT_QUANTUM,
) -> List[RunOutcome]:
    """Drive already-built cores to completion in lockstep.

    Equivalent to calling ``core.run(max_cycles, deadlock_cycles)`` on
    each core in turn — same outcomes, same ``DeadlockError`` at the
    same cycle (a raise aborts the whole batch, like a serial loop
    would abort the remaining runs).  Each core's ``sim_wall_seconds``
    accumulates only its own turns' wall time, so per-run kc/s numbers
    stay meaningful inside a batch.
    """
    if quantum <= 0:
        raise ValueError("quantum must be positive, got %d" % quantum)
    for core in cores:
        config = getattr(core, "config", None)
        if getattr(config, "num_contexts", 1) > 1:
            raise ConfigError(
                "the lockstep core runner drives independent "
                "single-context cores; a num_contexts=%d config needs "
                "repro.smt.SmtMachine instead" % config.num_contexts
            )
    outcomes: List[Optional[RunOutcome]] = [None] * len(cores)
    walls = [0.0] * len(cores)
    remaining = len(cores)
    while remaining:
        for index, core in enumerate(cores):
            if outcomes[index] is not None:
                continue
            turn_start = time.perf_counter()
            finished = core.run_slice(
                core.committed + quantum, max_cycles, deadlock_cycles,
            )
            walls[index] += time.perf_counter() - turn_start
            if finished:
                outcomes[index] = core.finish_run(walls[index])
                remaining -= 1
    return outcomes
