"""In-order timing core (gem5 ``TimingSimpleCPU`` analog).

One instruction at a time: fetch pays the instruction cache when it crosses
a line boundary, execution pays the functional-unit latency, memory ops pay
the full data-cache round trip, and nothing overlaps.  The core performs no
speculation of any kind, so it is trivially immune to every attack in the
paper — it is the performance floor NDA is measured against (the only other
execution model known to defeat all 25 documented attacks, §6.3).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.config import SimConfig
from repro.core.outcome import RunOutcome
from repro.errors import DeadlockError
from repro.frontend.fetch import INSTR_BYTES
from repro.isa.opcodes import FUType, Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_ARCH_REGS, R0
from repro.isa.semantics import MachineState, branch_taken, eval_alu
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.memory import MainMemory, U64_MASK
from repro.stats.counters import CycleClass, PipelineStats


class InOrderCore:
    """Serial fetch/execute/memory machine sharing the OoO cache hierarchy."""

    def __init__(self, program: Program, config: Optional[SimConfig] = None):
        self.config = (config or SimConfig()).validate()
        self.program = program
        self.mem = MainMemory()
        self.mem.load_image(program.data)
        self.msrs = dict(program.msrs)
        self.hierarchy = MemoryHierarchy(self.config.mem)
        self.regs = [0] * NUM_ARCH_REGS
        for reg, value in program.initial_regs.items():
            self.regs[reg] = value & U64_MASK
        self.regs[R0] = 0
        self.pc = 0
        self.cycle = 0
        self.halted = False
        self.committed = 0
        self.stats = PipelineStats()
        self._current_line = -1
        self._fpu_last_issue = -(10 ** 9)  # FPU power gating
        # Optional telemetry EventBus (see repro.obs.bus): pure
        # observer, guarded by an is-None test at every use.
        self.obs = None

    # ------------------------------------------------------------------ #

    def run(self, max_cycles: int = 50_000_000) -> RunOutcome:
        wall_start = time.perf_counter()
        while not self.halted and self.cycle < max_cycles:
            self.step()
        if not self.halted and self.cycle >= max_cycles:
            raise DeadlockError(
                "in-order core exceeded %d cycles" % max_cycles
            )
        self.stats.cycles = self.cycle
        self.stats.committed = self.committed
        wall = time.perf_counter() - wall_start
        self.stats.sim_wall_seconds = wall
        self.stats.kilo_cycles_per_sec = (
            self.cycle / wall / 1000.0 if wall > 0 else 0.0
        )
        return RunOutcome(
            state=self.arch_state(), stats=self.stats, label="In-Order"
        )

    def advance(self, limit: int) -> None:
        """Step once (driver-loop parity with OutOfOrderCore.advance).

        The serial core already charges whole multi-cycle latencies per
        step, so there are no idle cycles to fast-forward over; *limit*
        is accepted for interface compatibility and ignored.
        """
        self.step()

    def run_to_commit(self, target: int, max_cycles: int) -> None:
        """Step until *target* committed instructions, HALT, or budget
        (driver-loop parity with ``OutOfOrderCore.run_to_commit``)."""
        while (
            not self.halted
            and self.cycle < max_cycles
            and self.committed < target
        ):
            self.step()

    def arch_state(self) -> MachineState:
        return MachineState(
            regs=list(self.regs),
            memory=self.mem,
            halted=self.halted,
            pc=self.pc,
            committed=self.committed,
            faults=self.stats.faults,
        )

    # ------------------------------------------------------------------ #

    def _write(self, rd: Optional[int], value: int) -> None:
        if rd is not None and rd != R0:
            self.regs[rd] = value & U64_MASK

    def _charge(self, cycles: int, label: str) -> None:
        self.cycle += cycles
        self.stats.cycle_class[label] += cycles
        if label == CycleClass.MEMORY_STALL and cycles > 0:
            # Exactly one memory access is ever outstanding: MLP == 1.
            self.stats.mlp_sum += cycles
            self.stats.mlp_cycles += cycles

    def step(self) -> None:
        """Fetch, execute, and retire exactly one instruction."""
        start_cycle = self.cycle
        obs = self.obs
        if obs is not None and obs.sample_due <= start_cycle:
            obs.sample(self, start_cycle)
        instr = self.program.fetch(self.pc)
        if instr is None:
            self.halted = True
            return
        pc = self.pc

        # Instruction fetch: pay the I-side latency on each new line.
        line = (self.pc * INSTR_BYTES) >> 6
        if line != self._current_line:
            result = self.hierarchy.inst_access(self.pc * INSTR_BYTES,
                                                self.cycle)
            self._charge(result.latency, CycleClass.FRONTEND_STALL)
            self._current_line = line

        op = instr.op
        info = instr.info
        regs = self.regs
        next_pc = self.pc + 1
        fault: Optional[str] = None

        if op in (Opcode.NOP, Opcode.FENCE):
            self._charge(1, CycleClass.COMMIT)
        elif op is Opcode.HALT:
            self._charge(1, CycleClass.COMMIT)
            self.halted = True
        elif op is Opcode.RDTSC:
            self._charge(1, CycleClass.COMMIT)
            self._write(instr.rd, self.cycle)
        elif op is Opcode.RDMSR:
            self._charge(info.latency - 1, CycleClass.BACKEND_STALL)
            self._charge(1, CycleClass.COMMIT)
            if self.config.privileged_mode:
                self._write(instr.rd, self.msrs.get(instr.imm, 0))
            else:
                fault = "user rdmsr"
        elif op is Opcode.CLFLUSH:
            addr = (regs[instr.srcs[0]] + instr.imm) & U64_MASK
            self.hierarchy.flush_data_line(addr)
            self._charge(1, CycleClass.COMMIT)
        elif info.is_load:
            addr = (regs[instr.srcs[0]] + instr.imm) & U64_MASK
            result = self.hierarchy.data_access(addr, self.cycle,
                                                pc=self.pc)
            self._charge(result.latency - 1, CycleClass.MEMORY_STALL)
            self._charge(1, CycleClass.COMMIT)
            if not self.config.privileged_mode and \
                    self.program.is_privileged_addr(addr):
                fault = "user load"
            elif op is Opcode.LOADB:
                self._write(instr.rd, self.mem.read_byte(addr))
            else:
                self._write(instr.rd, self.mem.read_word(addr))
        elif info.is_store:
            addr = (regs[instr.srcs[0]] + instr.imm) & U64_MASK
            result = self.hierarchy.data_access(addr, self.cycle)
            self._charge(result.latency - 1, CycleClass.MEMORY_STALL)
            self._charge(1, CycleClass.COMMIT)
            if not self.config.privileged_mode and \
                    self.program.is_privileged_addr(addr):
                fault = "user store"
            else:
                value = regs[instr.srcs[1]]
                if op is Opcode.STOREB:
                    self.mem.write_byte(addr, value)
                else:
                    self.mem.write_word(addr, value)
        elif info.is_branch:
            self._charge(1, CycleClass.COMMIT)
            next_pc = self._branch(instr, next_pc)
        else:
            if info.fu is FUType.FP:
                core = self.config.core
                if self.cycle - self._fpu_last_issue > core.fpu_sleep_cycles:
                    self._charge(core.fpu_wakeup_cycles,
                                 CycleClass.BACKEND_STALL)
                self._fpu_last_issue = self.cycle
            self._charge(info.latency - 1, CycleClass.BACKEND_STALL)
            self._charge(1, CycleClass.COMMIT)
            a = regs[instr.srcs[0]] if instr.srcs else 0
            b = regs[instr.srcs[1]] if len(instr.srcs) > 1 else 0
            self._write(instr.rd, eval_alu(op, a, b, instr.imm))

        if fault is not None:
            self.stats.faults += 1
            if self.program.fault_handler is None:
                self.halted = True
            else:
                next_pc = self.program.fault_handler
        self.committed += 1
        # One instruction per busy cycle: ILP == 1 by construction.
        self.stats.issued += 1
        self.stats.ilp_sum += 1
        self.stats.ilp_cycles += 1
        self.regs[R0] = 0
        if not self.halted:
            self.pc = next_pc
        self.stats.branches_resolved += int(info.is_branch)
        if obs is not None and obs.inorder_step is not None:
            obs.inorder_step(pc, instr, start_cycle, self.cycle)

    def _branch(self, instr, next_pc: int) -> int:
        op = instr.op
        regs = self.regs
        if instr.info.is_conditional:
            a, b = regs[instr.srcs[0]], regs[instr.srcs[1]]
            return instr.target if branch_taken(op, a, b) else next_pc
        if op is Opcode.JMP:
            return instr.target
        if op is Opcode.JR:
            return regs[instr.srcs[0]] & U64_MASK
        if op is Opcode.CALL:
            self._write(instr.rd, next_pc)
            return instr.target
        if op is Opcode.CALLR:
            target = regs[instr.srcs[0]] & U64_MASK
            self._write(instr.rd, next_pc)
            return target
        return regs[instr.srcs[0]] & U64_MASK  # RET


def run_inorder(
    program: Program,
    config: Optional[SimConfig] = None,
    max_cycles: int = 50_000_000,
) -> RunOutcome:
    """Deprecated shim: use :func:`repro.simulate` with ``in_order=True``."""
    import warnings

    from repro.api import simulate

    warnings.warn(
        "run_inorder() is deprecated and no longer exported from the "
        "repro package; migrate to repro.simulate(program, config, "
        "in_order=True). This shim (repro.core.inorder.run_inorder) "
        "will be removed next.",
        DeprecationWarning, stacklevel=2,
    )
    return simulate(program, config, in_order=True, max_cycles=max_cycles)
