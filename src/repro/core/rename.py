"""Register renaming: physical register file, free list, and rename table.

The model follows the MIPS R10000 / paper §5 baseline: architectural
registers are renamed onto a unified physical register file; the rename
table (RAT) maps arch -> phys; each dynamic instruction records the mapping
it displaced so that squash can roll the table back by walking the ROB from
the tail (no checkpoints needed, and rollback works from *any* squash point:
branch, memory-order violation, or fault).

Register readiness is where NDA plugs in: a physical register's value may
be *written* (execution completed) long before it is marked *ready*
(broadcast).  Consumers may only issue once the register is ready, so
deferring broadcast is exactly "delaying wake-up" in the paper's terms.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import SimulationError
from repro.isa.registers import NUM_ARCH_REGS, R0


class PhysRegFile:
    """Unified physical register file with ready bits and a free list."""

    def __init__(self, num_regs: int):
        if num_regs <= NUM_ARCH_REGS:
            raise SimulationError(
                "need more physical than architectural registers"
            )
        self.num_regs = num_regs
        self.value: List[int] = [0] * num_regs
        self.ready: List[bool] = [False] * num_regs
        # Phys regs [0, NUM_ARCH_REGS) initially back the arch registers.
        for i in range(NUM_ARCH_REGS):
            self.ready[i] = True
        self._free: Deque[int] = deque(range(NUM_ARCH_REGS, num_regs))

    @property
    def free_count(self) -> int:
        return len(self._free)

    def alloc(self) -> Optional[int]:
        """Take a register off the free list; None when exhausted."""
        if not self._free:
            return None
        reg = self._free.popleft()
        self.ready[reg] = False
        self.value[reg] = 0
        return reg

    def free(self, reg: int) -> None:
        self.ready[reg] = False
        self._free.append(reg)

    def write(self, reg: int, value: int) -> None:
        """Store a produced value WITHOUT waking consumers (no ready bit)."""
        self.value[reg] = value

    def mark_ready(self, reg: int) -> None:
        """Broadcast: consumers of *reg* may now issue."""
        self.ready[reg] = True


class RenameTable:
    """Architectural -> physical mapping with walk-back rollback support."""

    def __init__(self, prf: PhysRegFile):
        self.prf = prf
        # Identity initial mapping: arch i -> phys i.
        self.map: List[int] = list(range(NUM_ARCH_REGS))
        self.map[R0] = R0  # phys 0 is the hardwired zero

    def lookup(self, arch_reg: int) -> int:
        return self.map[arch_reg]

    def rename_dest(self, arch_reg: int) -> Optional["tuple[int, int]"]:
        """Allocate a new physical register for *arch_reg*.

        Returns ``(new_phys, prev_phys)`` or None when the free list is
        empty (caller must stall dispatch).  R0 is never renamed.
        """
        if arch_reg == R0:
            return None
        new_phys = self.prf.alloc()
        if new_phys is None:
            return None
        prev = self.map[arch_reg]
        self.map[arch_reg] = new_phys
        return new_phys, prev

    def rollback(self, arch_reg: int, new_phys: int, prev_phys: int) -> None:
        """Undo one rename performed by a now-squashed instruction.

        Must be applied youngest-first (the ROB squash walk guarantees it).
        """
        if self.map[arch_reg] != new_phys:
            raise SimulationError(
                "rollback out of order: arch r%d maps to p%d, expected p%d"
                % (arch_reg, self.map[arch_reg], new_phys)
            )
        self.map[arch_reg] = prev_phys
        self.prf.free(new_phys)

    def retire(self, prev_phys: int) -> None:
        """A renaming instruction committed: its displaced mapping dies."""
        self.prf.free(prev_phys)
