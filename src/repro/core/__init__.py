"""Processor cores: the out-of-order pipeline and the in-order baseline."""

from repro.core.fu import FUPool
from repro.core.inorder import InOrderCore, run_inorder
from repro.core.issue_queue import IssueQueue
from repro.core.lsq import LSQ, LoadAction, LoadDecision
from repro.core.ooo import OutOfOrderCore, run_program
from repro.core.outcome import RunOutcome
from repro.core.rename import PhysRegFile, RenameTable
from repro.core.rob import ROB, DynInstr

__all__ = [
    "FUPool",
    "InOrderCore",
    "run_inorder",
    "IssueQueue",
    "LSQ",
    "LoadAction",
    "LoadDecision",
    "OutOfOrderCore",
    "run_program",
    "RunOutcome",
    "PhysRegFile",
    "RenameTable",
    "ROB",
    "DynInstr",
]
