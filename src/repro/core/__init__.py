"""Processor cores: the out-of-order pipelines and the in-order baseline."""

from typing import Optional

from repro.config import SimConfig
from repro.core.fastcore import FastFUPool, FastOoOCore
from repro.core.fu import FUPool
from repro.core.inorder import InOrderCore
from repro.core.issue_queue import IssueQueue
from repro.core.lsq import LSQ, LoadAction, LoadDecision
from repro.core.ooo import OutOfOrderCore
from repro.core.outcome import RunOutcome
from repro.core.rename import PhysRegFile, RenameTable
from repro.core.rob import ROB, DynInstr


def make_core(
    program,
    config: Optional[SimConfig] = None,
    *,
    direction_predictor: str = "tournament",
    fast_forward: bool = True,
) -> OutOfOrderCore:
    """Construct the OoO core selected by ``config.engine``.

    ``"fast"`` (the default) builds the table-driven
    :class:`FastOoOCore`; ``"reference"`` builds the readable reference
    :class:`OutOfOrderCore`.  Both are pinned bit-identical by the golden
    equivalence tests, so callers may treat the choice as a pure
    host-speed knob.
    """
    from repro.errors import ConfigError

    config = (config or SimConfig()).validate()
    if config.num_contexts > 1:
        raise ConfigError(
            "make_core() builds single-context cores; two-context configs "
            "run through repro.smt.SmtMachine"
        )
    cls = OutOfOrderCore if config.engine == "reference" else FastOoOCore
    return cls(
        program, config, direction_predictor=direction_predictor,
        fast_forward=fast_forward,
    )


__all__ = [
    "FastFUPool",
    "FastOoOCore",
    "FUPool",
    "InOrderCore",
    "IssueQueue",
    "LSQ",
    "LoadAction",
    "LoadDecision",
    "OutOfOrderCore",
    "RunOutcome",
    "PhysRegFile",
    "RenameTable",
    "ROB",
    "DynInstr",
    "make_core",
]
