"""Processor cores: the out-of-order pipeline and the in-order baseline."""

from repro.core.fu import FUPool
from repro.core.inorder import InOrderCore
from repro.core.issue_queue import IssueQueue
from repro.core.lsq import LSQ, LoadAction, LoadDecision
from repro.core.ooo import OutOfOrderCore
from repro.core.outcome import RunOutcome
from repro.core.rename import PhysRegFile, RenameTable
from repro.core.rob import ROB, DynInstr

__all__ = [
    "FUPool",
    "InOrderCore",
    "IssueQueue",
    "LSQ",
    "LoadAction",
    "LoadDecision",
    "OutOfOrderCore",
    "RunOutcome",
    "PhysRegFile",
    "RenameTable",
    "ROB",
    "DynInstr",
]
