"""The out-of-order core.

A cycle-level model of the paper's baseline machine (Table 3): 8-issue,
192-entry ROB, physical-register renaming, an issue queue woken by tag
broadcast, split load/store queues with store-to-load forwarding and
speculative store bypass, branch prediction with squash-at-resolution, and
a non-blocking cache hierarchy.

The pipeline itself is scheme-agnostic: every protection scheme (the
insecure baseline, the six NDA policies, the InvisiSpec variants, the
fence-style mitigations, and anything registered through
:mod:`repro.schemes`) plugs in as a single
:class:`~repro.schemes.ProtectionModel` object held in
``self.protection``, consulted at the pipeline's decision points
(broadcast gating, issue gating, load visibility, and the
dispatch/resolve/squash/commit events).

Stage order within a cycle (reverse pipeline order, standard for
cycle-level models): writeback -> deferred broadcast -> load visibility
-> load memory phase -> issue -> dispatch -> fetch -> commit.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from operator import attrgetter
from typing import Deque, List, Optional, Tuple

from repro.config import SimConfig
from repro.core.fu import FUPool
from repro.core.issue_queue import IssueQueue
from repro.core.lsq import LSQ, LoadAction
from repro.core.memdep import make_memdep
from repro.core.outcome import RunOutcome
from repro.core.rename import PhysRegFile, RenameTable
from repro.core.rob import ROB, DynInstr
from repro.errors import DeadlockError, SimulationError
from repro.frontend.btb import BTB
from repro.frontend.direction import make_direction_predictor
from repro.frontend.fetch import FetchedOp, FetchUnit
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_ARCH_REGS, R0
from repro.isa.semantics import MachineState, branch_taken, eval_alu
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.memory import MainMemory, U64_MASK
from repro.frontend.ras import RAS
from repro.schemes.base import ProtectionModel
from repro.schemes.registry import make_protection
from repro.stats.counters import CycleClass, PipelineStats

_BY_SEQ = attrgetter("seq")


class OutOfOrderCore:
    """One simulated OoO core running one program."""

    def __init__(
        self,
        program: Program,
        config: Optional[SimConfig] = None,
        direction_predictor: str = "tournament",
        fast_forward: bool = True,
        *,
        ctx: int = 0,
        shared: Optional["SharedState"] = None,
    ):
        self.config = (config or SimConfig()).validate()
        core = self.config.core
        self.program = program
        #: Hardware-context id (repro.smt).  0 for single-context runs;
        #: observers read it to tag events with the owning context.
        self.ctx = ctx

        if shared is not None and shared.mem is not None:
            self.mem = shared.mem
        else:
            self.mem = MainMemory()
        self.mem.load_image(program.data)
        self.msrs = dict(program.msrs)
        if shared is not None and shared.hierarchy is not None:
            self.hierarchy = shared.hierarchy
        else:
            self.hierarchy = MemoryHierarchy(self.config.mem)

        if shared is not None and shared.btb is not None:
            self.btb = shared.btb
        else:
            self.btb = BTB(core.btb_entries, core.btb_assoc)
        if shared is not None and shared.ras is not None:
            self.ras = shared.ras
        else:
            self.ras = RAS(core.ras_entries)
        if shared is not None and shared.direction is not None:
            self.direction = shared.direction
        else:
            self.direction = make_direction_predictor(
                direction_predictor, core.bp_tables_bits
            )
        self.fetch_unit = FetchUnit(
            program, self.hierarchy, self.direction, self.btb, self.ras,
            core.fetch_width,
        )

        self.prf = PhysRegFile(core.phys_regs)
        self.rat = RenameTable(self.prf)
        for reg, value in program.initial_regs.items():
            if reg != R0:
                self.prf.value[reg] = value & U64_MASK
        self.rob = ROB(core.rob_entries)
        self.iq = IssueQueue(core.iq_entries, self.prf)
        self.lsq = LSQ(core.lq_entries, core.sq_entries)
        self.fus = FUPool(core)
        self.memdep = make_memdep(core.memdep)

        self.cycle = 0
        self.halted = False
        self.committed = 0
        self.stats = PipelineStats()
        # Event-driven idle-cycle fast-forward (bit-identical; see
        # DESIGN.md "The event-driven clock").  Not a SimConfig field on
        # purpose: results are unchanged, so it must not churn cache keys.
        self.fast_forward = fast_forward
        self.ff_skipped_cycles = 0

        # The one protection-scheme object; every scheme-sensitive
        # decision in the pipeline below delegates to it.
        self.protection = make_protection(self)
        # Does the scheme refine the ready-pool fast-forward veto?  When
        # it does (FenceOnBranch), the run/advance gates must probe even
        # with a non-empty ready pool — the scheme may prove every ready
        # entry fenced, unlocking the skip.
        self._ready_horizon_overridden = (
            type(self.protection).issue_ready_horizon
            is not ProtectionModel.issue_ready_horizon
        )

        self._next_seq = 0
        self._fetch_buffer: Deque[FetchedOp] = deque()
        self._completions: List[Tuple[int, int, DynInstr]] = []
        # Min-heap of (ready_cycle, seq, entry) — seq breaks cycle ties so
        # entries never compare (and pops are deterministic).
        self._pending_mem: List[Tuple[int, int, DynInstr]] = []
        self._fence_seq: Optional[int] = None
        self._ports_used = 0
        self._issued_this_cycle = 0
        self._squashed_this_cycle = False
        self._last_commit_cycle = 0
        # Optional telemetry EventBus (see repro.obs.bus); carries the
        # pipeline tracer, metrics samplers, and any other subscriber.
        self.obs = None
        # Optional TaintOracle (see repro.fuzz.taint).  Like the event
        # bus it is a pure observer: every hook below is guarded by an
        # is-None test, so the hot path and the idle-cycle fast-forward
        # are unaffected when no oracle is attached.
        self.taint = None

    # ================================================================== #
    # Public driving interface.
    # ================================================================== #

    def run(
        self,
        max_cycles: int = 5_000_000,
        deadlock_cycles: int = 100_000,
    ) -> RunOutcome:
        """Simulate until HALT (or the program runs out), then report."""
        wall_start = time.perf_counter()
        self.run_slice(None, max_cycles, deadlock_cycles)
        return self.finish_run(time.perf_counter() - wall_start)

    def run_slice(
        self,
        commit_target: Optional[int],
        max_cycles: int,
        deadlock_cycles: int = 100_000,
    ) -> bool:
        """The ``run()`` loop, stoppable at a committed-instruction count.

        Runs until HALT, the cycle budget, or (when *commit_target* is
        not None) ``self.committed >= commit_target`` — with the exact
        deadlock semantics of ``run()``, so slicing a run at arbitrary
        commit counts and resuming reproduces the unsliced run bit for
        bit (the loop carries no state besides the machine itself).
        Returns True once the run is over (halted or out of budget),
        False when it merely paused at *commit_target*.  The lockstep
        multi-window runner drives full runs through this.
        """
        fast = self.fast_forward
        iq = self.iq
        # Schemes that refine the ready-pool veto (FenceOnBranch) must be
        # probed even while entries sit ready; see issue_ready_horizon.
        probe_ready = self._ready_horizon_overridden
        while not self.halted and self.cycle < max_cycles:
            if (
                commit_target is not None
                and self.committed >= commit_target
            ):
                return False
            # Inline gate: a non-empty ready pool means the machine is
            # busy this cycle, so skip the full quiescence probe — it
            # would veto anyway, and on issue-bound phases its cost per
            # cycle is the whole fast-forward overhead.  (_ready is read
            # fresh each iteration: select()/remove_squashed rebind it.)
            if fast and (probe_ready or not iq._ready):
                # Never skip past the cycle at which the deadlock check
                # would fire, so a dead machine raises at the exact same
                # cycle (with identical accounting) as the stepped loop.
                limit = self._last_commit_cycle + deadlock_cycles + 1
                if max_cycles < limit:
                    limit = max_cycles
                if self.cycle < limit:
                    target = self._next_interesting_cycle(limit)
                    if target > self.cycle:
                        self._skip_to(target)
                        if self.cycle >= max_cycles:
                            break
                        if self.cycle - self._last_commit_cycle \
                                > deadlock_cycles:
                            raise self._deadlock_error(deadlock_cycles)
            self.step()
            if self.cycle - self._last_commit_cycle > deadlock_cycles:
                raise self._deadlock_error(deadlock_cycles)
        return True

    def finish_run(self, wall: float) -> RunOutcome:
        """Final accounting once ``run_slice`` reported the run over."""
        self.stats.cycles = self.cycle
        self.stats.committed = self.committed
        self.protection.finalize_stats(self.stats)
        self.stats.sim_wall_seconds = wall
        self.stats.kilo_cycles_per_sec = (
            self.cycle / wall / 1000.0 if wall > 0 else 0.0
        )
        return RunOutcome(
            state=self.arch_state(),
            stats=self.stats,
            label=self.config.label(),
        )

    def _deadlock_error(self, deadlock_cycles: int) -> DeadlockError:
        return DeadlockError(
            "no commit for %d cycles at cycle %d (head=%r)"
            % (deadlock_cycles, self.cycle, self.rob.head)
        )

    def advance(self, limit: int) -> None:
        """Step once, first jumping over a quiescent span (never past
        *limit*) when fast-forward is enabled.

        The driver for callers that own the simulation loop (e.g. SMARTS
        sampling windows): a jump commits nothing, so loops gated on
        ``self.committed`` see identical warmup/measure boundaries.
        """
        if (
            self.fast_forward
            and (self._ready_horizon_overridden or not self.iq._ready)
            and self.cycle < limit
        ):
            target = self._next_interesting_cycle(limit)
            if target > self.cycle:
                self._skip_to(target)
                if self.cycle >= limit:
                    return
        self.step()

    def run_to_commit(self, target: int, max_cycles: int) -> None:
        """Advance until *target* committed instructions, HALT, or budget.

        Exactly equivalent to ``while ...: self.advance(max_cycles)``
        with the boundary test after every call — the driver behind
        sampling windows (:func:`repro.stats.sampling.run_window`) and
        the lockstep multi-window runner.  Stopping at an intermediate
        commit count and resuming is transparent: the advance sequence
        is a pure function of machine state, so
        ``run_to_commit(a); run_to_commit(b)`` equals
        ``run_to_commit(b)`` for any ``a <= b``.
        """
        while (
            not self.halted
            and self.cycle < max_cycles
            and self.committed < target
        ):
            self.advance(max_cycles)

    # ================================================================== #
    # Idle-cycle fast-forward (the event-driven clock).
    # ================================================================== #

    def _next_interesting_cycle(self, limit: int) -> int:
        """Earliest cycle in ``(now, limit]`` at which anything can happen.

        Returns ``now`` itself when the machine is busy this cycle (no
        skip).  A return of ``t > now`` asserts that every cycle in
        ``[now, t)`` is quiescent: every ``step()`` across the span would
        only run the per-cycle accounting that ``_skip_to`` batch-applies.
        The checks mirror ``step()``'s phases; each phase either acts this
        cycle (return ``now``), acts at a known future cycle (bound the
        horizon), or is blocked on one of the other phases' events.
        """
        now = self.cycle
        horizon = limit

        # Issue: anything in the ready pool retries every cycle.  (Even a
        # vetoed-ready entry — FU busy, serializing op not at head — may
        # unblock mid-span without its unblocker being a *heap* event, so
        # be conservative and never skip while the pool is non-empty —
        # unless the scheme's issue_ready_horizon proves every ready
        # entry fenced until an already-tracked event.)
        if self.iq.has_ready:
            if not self._ready_horizon_overridden:
                return now
            event = self.protection.issue_ready_horizon(now)
            if event is not None:
                if event <= now:
                    return now
                if event < horizon:
                    horizon = event

        # Writeback: the completion heap is the primary event source.
        completions = self._completions
        if completions:
            due = completions[0][0]
            if due <= now:
                return now
            if due < horizon:
                horizon = due

        # Memory phase: pending loads retry at their scheduled cycle
        # (WAIT / port-blocked loads reschedule at now+1, so an actively
        # blocked load naturally vetoes skipping).
        pending = self._pending_mem
        if pending:
            due = pending[0][0]
            if due <= now:
                return now
            if due < horizon:
                horizon = due

        rob = self.rob
        head = rob.head
        if head is not None and head.completed:
            # Commit: a completed head either retires this cycle (busy),
            # waits for a known retire_ready (InvisiSpec validation), or
            # waits for its deferred broadcast (the protection's event).
            ready = head.retire_ready
            if ready > now:
                if ready < horizon:
                    horizon = ready
            elif (
                head.fault is not None
                or head.bcast
                or head.phys_dest is None
            ):
                return now

        # Dispatch: the buffer head either dispatches this cycle (busy),
        # is still in the front-end pipe (event at fetch_cycle + depth),
        # or is structurally blocked — and every unblocker (commit, issue,
        # broadcast) is covered by the other event sources above.
        buffer = self._fetch_buffer
        core = self.config.core
        if buffer:
            fetched = buffer[0]
            due = fetched.fetch_cycle + core.frontend_depth
            if due > now:
                if due < horizon:
                    horizon = due
            elif not self._dispatch_blocked(fetched):
                return now

        # Fetch: mirrors _fetch()'s guards exactly.
        if len(buffer) < 2 * core.fetch_width:
            fu = self.fetch_unit
            if not (fu.halt_seen or fu.waiting_for_resolve):
                ready = fu.icache_ready_cycle
                if now < ready:
                    if ready < horizon:
                        horizon = ready
                elif self.program.fetch(fu.fetch_pc) is not None:
                    return now
                # else: the program ran out past fetch_pc — only a
                # redirect (an event) restarts fetch.

        # The protection scheme's own clock (deferred broadcasts, ...).
        event = self.protection.next_event(now)
        if event is not None:
            if event <= now:
                return now
            if event < horizon:
                horizon = event

        return horizon

    def _dispatch_blocked(self, fetched: FetchedOp) -> bool:
        """Would ``_dispatch`` break before dispatching *fetched*?

        Mirrors the structural break conditions of ``_dispatch`` for the
        buffer head (its age gate is checked by the caller).  The rename
        branch needs no separate check: ``rename_dest`` fails exactly
        when the free list is empty, i.e. when ``free_count == 0``.
        """
        if self._fence_seq is not None:
            return True
        if self.rob.full or self.iq.full:
            return True
        instr = fetched.instr
        rd = instr.rd
        if rd is not None and rd != R0 and self.prf.free_count == 0:
            return True
        info = instr.info
        lsq = self.lsq
        if info.is_load and len(lsq.loads) >= lsq.lq_capacity:
            return True
        if info.is_store and len(lsq.stores) >= lsq.sq_capacity:
            return True
        return False

    def _skip_to(self, target: int) -> None:
        """Jump the clock to *target*, batch-applying the accounting the
        skipped (strictly quiescent) cycles would have produced."""
        now = self.cycle
        span = target - now
        stats = self.stats

        # Fetch-stall counters: _fetch() consults stalled() — which
        # increments them — only while the buffer has room.
        if len(self._fetch_buffer) < 2 * self.config.core.fetch_width:
            self.fetch_unit.account_stalls(now, span)

        # MLP: no new miss can start inside a quiescent span, so the
        # per-cycle outstanding counts collapse to one profile pass.
        mlp_sum, mlp_cycles = self.hierarchy.offchip_profile(now, target)
        if mlp_sum:
            stats.mlp_sum += mlp_sum
            stats.mlp_cycles += mlp_cycles

        # Cycle classification: no commits or squashes while skipping, so
        # every skipped cycle classifies identically (the ROB head and
        # its kind are frozen).  No ILP term either: nothing issues.
        if head := self.rob.head:
            if head.is_load or head.is_store:
                stats.cycle_class[CycleClass.MEMORY_STALL] += span
            else:
                stats.cycle_class[CycleClass.BACKEND_STALL] += span
        else:
            stats.cycle_class[CycleClass.FRONTEND_STALL] += span

        self.ff_skipped_cycles += span
        self.cycle = target

        # Metrics sampling: every sample that would have landed inside
        # the (strictly quiescent, hence frozen) span collapses to one
        # at the landing cycle.  Observers never veto the skip itself.
        obs = self.obs
        if obs is not None and obs.sample_due <= target:
            obs.sample(self, target)

    def step(self) -> None:
        """Advance the machine by one cycle."""
        now = self.cycle
        obs = self.obs
        if obs is not None and obs.sample_due <= now:
            obs.sample(self, now)
        self._ports_used = 0
        self._issued_this_cycle = 0
        self._squashed_this_cycle = False

        self._writeback(now)
        self._drain_broadcasts(now)
        self.protection.load_visibility_phase(now)
        self._mem_phase(now)
        self._issue(now)
        self._dispatch(now)
        self._fetch(now)
        committed_now = self._commit(now)
        self._account(now, committed_now)

        self.cycle = now + 1

    def arch_state(self) -> MachineState:
        """Committed architectural state (valid once the ROB is empty)."""
        regs = [
            self.prf.value[self.rat.lookup(reg)]
            for reg in range(NUM_ARCH_REGS)
        ]
        regs[R0] = 0
        return MachineState(
            regs=regs,
            memory=self.mem,
            halted=self.halted,
            pc=self.fetch_unit.fetch_pc,
            committed=self.committed,
            faults=self.stats.faults,
        )

    # ================================================================== #
    # Writeback: completions, branch resolution, violations, broadcast.
    # ================================================================== #

    def _writeback(self, now: int) -> None:
        completions = self._completions
        if not completions or completions[0][0] > now:
            return
        due: List[DynInstr] = []
        while completions and completions[0][0] <= now:
            _, _, entry = heapq.heappop(completions)
            if not entry.squashed:
                due.append(entry)
        if len(due) > 1:
            due.sort(key=_BY_SEQ)
        for entry in due:
            if entry.squashed:
                continue  # an older entry in this batch squashed it
            self._complete(entry, now)

    def _complete(self, entry: DynInstr, now: int) -> None:
        instr = entry.instr
        op = instr.op
        info = instr.info
        taint = self.taint
        if taint is not None:
            taint.exec_ctx = entry  # attributes BTB installs to *entry*

        if info.is_branch:
            self._resolve_branch(entry, now)
        elif entry.is_store:
            self._resolve_store(entry, now)
        elif op is Opcode.CLFLUSH:
            addr = (entry.src_vals[0] + instr.imm) & U64_MASK
            self.hierarchy.flush_data_line(addr)
        elif op is Opcode.RDTSC:
            entry.result = now
        elif op is Opcode.RDMSR:
            entry.result = self.msrs.get(instr.imm, 0)
            if not self.config.privileged_mode:
                entry.fault = "user rdmsr %d" % instr.imm
                if not self.config.forward_faulting_loads:
                    entry.result = 0
        elif entry.is_load:
            pass  # result was set by the memory phase
        elif op in (Opcode.NOP, Opcode.FENCE, Opcode.HALT):
            pass
        else:
            a = entry.src_vals[0] if entry.src_vals else 0
            b = entry.src_vals[1] if len(entry.src_vals) > 1 else 0
            entry.result = eval_alu(op, a, b, instr.imm)

        entry.completed = True
        entry.complete_cycle = now
        if entry.phys_dest is not None and entry.result is not None:
            self.prf.write(entry.phys_dest, entry.result)
        if taint is not None:
            taint.exec_ctx = None
            taint.on_complete(entry)
        obs = self.obs
        if obs is not None and obs.instr_complete is not None:
            obs.instr_complete(entry, now)
        self._try_broadcast(entry, now)

    def _try_broadcast(self, entry: DynInstr, now: int) -> None:
        """Broadcast at completion when safe and a port is free; else defer."""
        if entry.phys_dest is None:
            entry.bcast = True  # nothing to broadcast
            return
        head = self.rob.head
        head_seq = head.seq if head is not None else None
        if (
            self._ports_used < self.config.core.issue_width
            and self.protection.may_broadcast(entry, head_seq)
        ):
            # Safe at completion: the normal wake-up path, no NDA logic
            # latency involved (only *deferred* wake-ups pay the Fig 9e
            # delay).
            self._broadcast(entry, now)
            self._ports_used += 1
        else:
            self.protection.defer_broadcast(entry)
            obs = self.obs
            if obs is not None and obs.instr_defer is not None:
                obs.instr_defer(entry, now)

    def _broadcast(self, entry: DynInstr, now: int) -> None:
        self.prf.mark_ready(entry.phys_dest)
        self.iq.on_broadcast(entry.phys_dest)
        entry.bcast = True
        entry.bcast_cycle = now
        obs = self.obs
        if obs is not None and obs.instr_broadcast is not None:
            obs.instr_broadcast(entry, now)

    def _drain_broadcasts(self, now: int) -> None:
        head = self.rob.head
        self._ports_used += self.protection.drain_deferred(
            now,
            self._ports_used,
            head.seq if head is not None else None,
            self._broadcast,  # bound method: no per-cycle closure
        )

    # ------------------------------------------------------------------ #
    # Branch resolution.
    # ------------------------------------------------------------------ #

    def _resolve_branch(self, entry: DynInstr, now: int) -> None:
        instr = entry.instr
        op = instr.op
        pc = entry.pc
        vals = entry.src_vals

        if instr.info.is_conditional:
            taken = branch_taken(op, vals[0], vals[1])
            actual = instr.target if taken else pc + 1
            self.direction.update(pc, taken)
        elif op is Opcode.JMP:
            taken, actual = True, instr.target
        elif op is Opcode.CALL:
            taken, actual = True, instr.target
            entry.result = pc + 1
        elif op is Opcode.CALLR:
            taken, actual = True, vals[0] & U64_MASK
            entry.result = pc + 1
            self.btb.update(pc, actual)
        elif op is Opcode.JR:
            taken, actual = True, vals[0] & U64_MASK
            self.btb.update(pc, actual)
        elif op is Opcode.RET:
            taken, actual = True, vals[0] & U64_MASK
        else:
            raise SimulationError("unknown branch op %s" % op)

        entry.resolved = True
        entry.actual_taken = taken
        entry.actual_next_pc = actual
        self.protection.on_branch_resolved(entry)
        self.stats.branches_resolved += 1

        if entry.fetched.unpredicted:
            # Fetch stalled behind this branch: no wrong path exists.
            if instr.info.is_call:
                self.ras.push(pc + 1)
            self.fetch_unit.redirect(actual, now + 1)
            return
        if actual != entry.fetched.pred_next_pc:
            entry.mispredicted = True
            self.stats.branch_mispredicts += 1
            self._squash_after(
                entry.seq, actual, now + self.config.core.squash_penalty
            )
            self.fetch_unit.repair_ras(entry.fetched.ras_snapshot)

    # ------------------------------------------------------------------ #
    # Store resolution.
    # ------------------------------------------------------------------ #

    def _resolve_store(self, entry: DynInstr, now: int) -> None:
        instr = entry.instr
        entry.addr = (entry.src_vals[0] + instr.imm) & U64_MASK
        entry.store_data = entry.src_vals[1]
        if not self.config.privileged_mode and \
                self.program.is_privileged_addr(entry.addr):
            entry.fault = "user store to %#x" % entry.addr
        self.protection.on_store_resolved(entry)
        victim = self.lsq.check_violation(entry)
        if victim is not None:
            self.stats.memory_violations += 1
            self.memdep.record_violation(victim.pc)
            self._squash_after(
                victim.seq - 1,
                victim.pc,
                now + self.config.core.squash_penalty,
            )
            older_branch = self.rob.nearest_older_branch(victim.seq)
            if older_branch is not None:
                self.fetch_unit.repair_ras(older_branch.fetched.ras_snapshot)

    # ================================================================== #
    # Squash.
    # ================================================================== #

    def _squash_after(self, seq: int, target_pc: int, refetch_cycle: int):
        """Discard every instruction younger than *seq* and refetch."""
        removed = self.rob.squash_younger(seq)
        taint = self.taint
        for entry in removed:  # youngest first: rollback works in order
            if entry.phys_dest is not None:
                self.rat.rollback(
                    entry.instr.rd, entry.phys_dest, entry.prev_phys
                )
            self.protection.on_squash(entry)
            if taint is not None:
                taint.on_squash(entry)
        self.iq.remove_squashed()
        self.lsq.remove_squashed()
        self.protection.after_squash()
        if taint is not None:
            taint.after_squash(seq)
        self._pending_mem = [
            item for item in self._pending_mem if not item[2].squashed
        ]
        heapq.heapify(self._pending_mem)
        self._fetch_buffer.clear()
        if self._fence_seq is not None and self._fence_seq > seq:
            self._fence_seq = None
        self.fetch_unit.redirect(target_pc, refetch_cycle)
        self.stats.squashes += 1
        self.stats.squashed_ops += len(removed)
        self._squashed_this_cycle = True
        obs = self.obs
        if obs is not None and obs.instr_squash is not None:
            now = self.cycle
            for entry in removed:
                obs.instr_squash(entry, now)

    # ================================================================== #
    # Load memory phase.
    # ================================================================== #

    def _mem_phase(self, now: int) -> None:
        # One heap pop per due load — the pool is never rebuilt (squashed
        # entries are purged eagerly by _squash_after, and dropped here
        # if one squashed within the current cycle).
        pending = self._pending_mem
        if not pending or pending[0][0] > now:
            return
        taint = self.taint
        ready: List[DynInstr] = []
        while pending and pending[0][0] <= now:
            _, _, entry = heapq.heappop(pending)
            if not entry.squashed:
                ready.append(entry)
        if len(ready) > 1:
            ready.sort(key=_BY_SEQ)
        dcache_ports = self.config.mem.l1d.ports
        dcache_used = 0
        push = heapq.heappush
        for entry in ready:
            decision = self.lsq.decide_load(entry)
            if (
                decision.action is LoadAction.MEMORY
                and decision.bypassed_stores
                and self.memdep.should_wait(entry.pc)
            ):
                # The dependence predictor vetoes the speculative bypass.
                push(pending, (now + 1, entry.seq, entry))
                continue
            if decision.action is LoadAction.WAIT:
                push(pending, (now + 1, entry.seq, entry))
                continue
            if decision.action is LoadAction.FORWARD:
                entry.data_obtained = True
                entry.forwarded_from = decision.forwarded_from
                entry.bypassed_stores = decision.bypassed_stores or None
                value = decision.value
                if taint is not None:
                    taint.on_load_executed(entry, from_memory=False)
                self._finish_load(entry, value, now, latency=1)
                continue
            # MEMORY access: gated by the L1D port count.
            if dcache_used >= dcache_ports:
                push(pending, (now + 1, entry.seq, entry))
                continue
            dcache_used += 1
            entry.data_obtained = True
            entry.bypassed_stores = decision.bypassed_stores or None
            invisible = self.protection.load_executes_invisibly(entry)
            if taint is not None:
                taint.exec_ctx = entry  # attributes d-cache fills
            result = self.hierarchy.data_access(
                entry.addr, now, fill=not invisible, pc=entry.pc
            )
            if invisible:
                self.protection.on_invisible_load(entry, result, now)
            value = self._load_value(entry)
            if taint is not None:
                taint.exec_ctx = None
                taint.on_load_executed(entry, from_memory=True)
            self._finish_load(entry, value, now, latency=result.latency)

    def _load_value(self, entry: DynInstr) -> int:
        """Architectural data for a load reading memory (possibly faulting)."""
        addr = entry.addr
        if not self.config.privileged_mode and \
                self.program.is_privileged_addr(addr):
            entry.fault = "user load from %#x" % addr
            if not self.config.forward_faulting_loads:
                return 0
        if entry.mem_size == 1:
            return self.mem.read_byte(addr)
        return self.mem.read_word(addr)

    def _finish_load(
        self, entry: DynInstr, value: int, now: int, latency: int
    ) -> None:
        entry.result = value
        heapq.heappush(
            self._completions, (now + latency, entry.seq, entry)
        )

    # ================================================================== #
    # Issue.
    # ================================================================== #

    def _may_issue(self, entry: DynInstr, now: int) -> bool:
        if entry.instr.info.is_serializing and self.rob.head is not entry:
            return False
        return self.protection.may_issue(entry, now)

    def _issue(self, now: int) -> None:
        width = self.config.core.issue_width
        selected = self.iq.select(now, width, self.fus, self._may_issue)
        taint = self.taint
        obs = self.obs
        for entry in selected:
            entry.issued = True
            entry.issue_cycle = now
            entry.src_vals = tuple(
                self.prf.value[src] for src in entry.phys_srcs
            )
            self.stats.issued += 1
            self._issued_this_cycle += 1
            instr = entry.instr
            if taint is not None:
                taint.on_issue(entry, now)
            if obs is not None and obs.instr_issue is not None:
                obs.instr_issue(entry, now)
            if entry.is_load:
                entry.addr = (entry.src_vals[0] + instr.imm) & U64_MASK
                heapq.heappush(
                    self._pending_mem, (now + 1, entry.seq, entry)
                )
            else:
                latency = instr.info.latency + entry.issue_penalty
                heapq.heappush(
                    self._completions, (now + latency, entry.seq, entry)
                )

    # ================================================================== #
    # Dispatch.
    # ================================================================== #

    def _dispatch(self, now: int) -> None:
        core = self.config.core
        count = 0
        depth = core.frontend_depth
        while self._fetch_buffer and count < core.fetch_width:
            fetched = self._fetch_buffer[0]
            if fetched.fetch_cycle + depth > now:
                break
            if self._fence_seq is not None:
                break
            if self.rob.full or self.iq.full:
                break
            instr = fetched.instr
            rd = instr.rd
            if rd is not None and rd != R0 and self.prf.free_count == 0:
                break
            entry = DynInstr(self._next_seq, fetched, now)
            if not self.lsq.can_dispatch(entry):
                break
            entry.phys_srcs = tuple(self.rat.lookup(s) for s in instr.srcs)
            if rd is not None and rd != R0:
                renamed = self.rat.rename_dest(rd)
                if renamed is None:
                    break
                entry.phys_dest, entry.prev_phys = renamed
            if instr.op in (Opcode.LOADB, Opcode.STOREB):
                entry.mem_size = 1
            self._next_seq += 1
            self._fetch_buffer.popleft()
            self.rob.push(entry)
            self.iq.insert(entry)
            self.lsq.dispatch(entry)
            self.protection.on_dispatch(entry)
            obs = self.obs
            if obs is not None and obs.instr_dispatch is not None:
                obs.instr_dispatch(entry, now)
            if instr.info.is_serializing:
                # FENCE (speculation barrier) and RDTSC (rdtscp-like
                # measurement fence) block dispatch until they commit.
                self._fence_seq = entry.seq
            self.stats.dispatched += 1
            count += 1

    # ================================================================== #
    # Fetch.
    # ================================================================== #

    def _fetch(self, now: int) -> None:
        if len(self._fetch_buffer) >= 2 * self.config.core.fetch_width:
            return
        fetched = self.fetch_unit.fetch(now)
        self._fetch_buffer.extend(fetched)
        self.stats.fetched += len(fetched)

    # ================================================================== #
    # Commit.
    # ================================================================== #

    def _commit(self, now: int) -> int:
        committed_now = 0
        width = self.config.core.commit_width
        while committed_now < width and len(self.rob):
            head = self.rob.head
            if not head.completed:
                break
            if head.retire_ready > now:
                break
            if head.fault is not None:
                self._commit_fault(head, now)
                committed_now += 1  # classification: progress happened
                break
            if head.phys_dest is not None and not head.bcast:
                break  # waiting for a broadcast port
            self._retire(head, now)
            committed_now += 1
            if self.halted:
                break
        return committed_now

    def _retire(self, head: DynInstr, now: int) -> None:
        instr = head.instr
        op = instr.op
        self.rob.pop_head()
        if head.is_store:
            self._commit_store(head)
        if head.is_load or head.is_store:
            self.lsq.retire(head)
        if head.prev_phys is not None:
            self.rat.retire(head.prev_phys)
        if self._fence_seq == head.seq:
            self._fence_seq = None
        if op is Opcode.HALT:
            self.halted = True
            # Drop anything fetched past the halt.
            if len(self.rob):
                self._squash_after(head.seq, 0, now + 1)
        self.committed += 1
        self._last_commit_cycle = now
        if head.issue_cycle >= 0:
            self.stats.record_dispatch_to_issue(
                head.issue_cycle - head.dispatch_cycle
            )
        self.protection.on_commit(head, now)
        if self.taint is not None:
            self.taint.on_commit(head)
        obs = self.obs
        if obs is not None and obs.instr_retire is not None:
            obs.instr_retire(head, now)

    def _commit_store(self, head: DynInstr) -> None:
        if head.mem_size == 1:
            self.mem.write_byte(head.addr, head.store_data)
        else:
            self.mem.write_word(head.addr, head.store_data)
        # Write-allocate into the hierarchy (no latency: write buffer).
        self.hierarchy.l1d.fill(head.addr)
        self.hierarchy.l2.fill(head.addr)

    def _commit_fault(self, head: DynInstr, now: int) -> None:
        """The eldest instruction faulted: squash and redirect."""
        self.stats.faults += 1
        handler = self.program.fault_handler
        self._squash_after(
            head.seq - 1,
            handler if handler is not None else 0,
            now + self.config.core.squash_penalty,
        )
        # The faulting instruction architecturally commits as a fault
        # delivery (mirrors ReferenceMachine.step counting).
        self.committed += 1
        self._last_commit_cycle = now
        if handler is None:
            self.halted = True

    # ================================================================== #
    # Accounting.
    # ================================================================== #

    def _account(self, now: int, committed_now: int) -> None:
        stats = self.stats
        if self._issued_this_cycle:
            stats.ilp_sum += self._issued_this_cycle
            stats.ilp_cycles += 1
        outstanding = self.hierarchy.outstanding_offchip(now)
        if outstanding:
            stats.mlp_sum += outstanding
            stats.mlp_cycles += 1

        if committed_now:
            stats.classify_cycle(CycleClass.COMMIT)
        elif self._squashed_this_cycle or not len(self.rob):
            stats.classify_cycle(CycleClass.FRONTEND_STALL)
        else:
            head = self.rob.head
            if head.is_load or head.is_store:
                stats.classify_cycle(CycleClass.MEMORY_STALL)
            else:
                stats.classify_cycle(CycleClass.BACKEND_STALL)

        # Program naturally drained?
        if (
            not self.halted
            and not len(self.rob)
            and not self._fetch_buffer
            and self.program.fetch(self.fetch_unit.fetch_pc) is None
        ):
            self.halted = True


def run_program(
    program: Program,
    config: Optional[SimConfig] = None,
    max_cycles: int = 5_000_000,
    direction_predictor: str = "tournament",
) -> RunOutcome:
    """Deprecated shim: use :func:`repro.simulate` instead."""
    import warnings

    from repro.api import simulate

    warnings.warn(
        "run_program() is deprecated and no longer exported from the "
        "repro package; migrate to repro.simulate(program, config). "
        "This shim (repro.core.ooo.run_program) will be removed next.",
        DeprecationWarning, stacklevel=2,
    )
    return simulate(
        program, config, max_cycles=max_cycles,
        direction_predictor=direction_predictor,
    )
