"""The out-of-order core.

A cycle-level model of the paper's baseline machine (Table 3): 8-issue,
192-entry ROB, physical-register renaming, an issue queue woken by tag
broadcast, split load/store queues with store-to-load forwarding and
speculative store bypass, branch prediction with squash-at-resolution, and
a non-blocking cache hierarchy.

The pipeline itself is scheme-agnostic: every protection scheme (the
insecure baseline, the six NDA policies, the InvisiSpec variants, the
fence-style mitigations, and anything registered through
:mod:`repro.schemes`) plugs in as a single
:class:`~repro.schemes.ProtectionModel` object held in
``self.protection``, consulted at the pipeline's decision points
(broadcast gating, issue gating, load visibility, and the
dispatch/resolve/squash/commit events).

Stage order within a cycle (reverse pipeline order, standard for
cycle-level models): writeback -> deferred broadcast -> load visibility
-> load memory phase -> issue -> dispatch -> fetch -> commit.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.config import SimConfig
from repro.core.fu import FUPool
from repro.core.issue_queue import IssueQueue
from repro.core.lsq import LSQ, LoadAction
from repro.core.memdep import make_memdep
from repro.core.outcome import RunOutcome
from repro.core.rename import PhysRegFile, RenameTable
from repro.core.rob import ROB, DynInstr
from repro.errors import DeadlockError, SimulationError
from repro.frontend.btb import BTB
from repro.frontend.direction import make_direction_predictor
from repro.frontend.fetch import FetchedOp, FetchUnit
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_ARCH_REGS, R0
from repro.isa.semantics import MachineState, branch_taken, eval_alu
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.memory import MainMemory, U64_MASK
from repro.frontend.ras import RAS
from repro.schemes.registry import make_protection
from repro.stats.counters import CycleClass, PipelineStats


class OutOfOrderCore:
    """One simulated OoO core running one program."""

    def __init__(
        self,
        program: Program,
        config: Optional[SimConfig] = None,
        direction_predictor: str = "tournament",
    ):
        self.config = (config or SimConfig()).validate()
        core = self.config.core
        self.program = program

        self.mem = MainMemory()
        self.mem.load_image(program.data)
        self.msrs = dict(program.msrs)
        self.hierarchy = MemoryHierarchy(self.config.mem)

        self.btb = BTB(core.btb_entries, core.btb_assoc)
        self.ras = RAS(core.ras_entries)
        self.direction = make_direction_predictor(
            direction_predictor, core.bp_tables_bits
        )
        self.fetch_unit = FetchUnit(
            program, self.hierarchy, self.direction, self.btb, self.ras,
            core.fetch_width,
        )

        self.prf = PhysRegFile(core.phys_regs)
        self.rat = RenameTable(self.prf)
        for reg, value in program.initial_regs.items():
            if reg != R0:
                self.prf.value[reg] = value & U64_MASK
        self.rob = ROB(core.rob_entries)
        self.iq = IssueQueue(core.iq_entries, self.prf)
        self.lsq = LSQ(core.lq_entries, core.sq_entries)
        self.fus = FUPool(core)
        self.memdep = make_memdep(core.memdep)

        self.cycle = 0
        self.halted = False
        self.committed = 0
        self.stats = PipelineStats()

        # The one protection-scheme object; every scheme-sensitive
        # decision in the pipeline below delegates to it.
        self.protection = make_protection(self)

        self._next_seq = 0
        self._fetch_buffer: Deque[FetchedOp] = deque()
        self._completions: List[Tuple[int, int, DynInstr]] = []
        self._pending_mem: List[Tuple[int, DynInstr]] = []
        self._fence_seq: Optional[int] = None
        self._ports_used = 0
        self._issued_this_cycle = 0
        self._squashed_this_cycle = False
        self._last_commit_cycle = 0
        # Optional PipelineTracer (see repro.debug.trace).
        self.tracer = None

    # ================================================================== #
    # Public driving interface.
    # ================================================================== #

    def run(
        self,
        max_cycles: int = 5_000_000,
        deadlock_cycles: int = 100_000,
    ) -> RunOutcome:
        """Simulate until HALT (or the program runs out), then report."""
        while not self.halted and self.cycle < max_cycles:
            self.step()
            if self.cycle - self._last_commit_cycle > deadlock_cycles:
                raise DeadlockError(
                    "no commit for %d cycles at cycle %d (head=%r)"
                    % (deadlock_cycles, self.cycle, self.rob.head)
                )
        self.stats.cycles = self.cycle
        self.stats.committed = self.committed
        self.protection.finalize_stats(self.stats)
        return RunOutcome(
            state=self.arch_state(),
            stats=self.stats,
            label=self.config.label(),
        )

    def step(self) -> None:
        """Advance the machine by one cycle."""
        now = self.cycle
        self._ports_used = 0
        self._issued_this_cycle = 0
        self._squashed_this_cycle = False

        self._writeback(now)
        self._drain_broadcasts(now)
        self.protection.load_visibility_phase(now)
        self._mem_phase(now)
        self._issue(now)
        self._dispatch(now)
        self._fetch(now)
        committed_now = self._commit(now)
        self._account(now, committed_now)

        self.cycle = now + 1

    def arch_state(self) -> MachineState:
        """Committed architectural state (valid once the ROB is empty)."""
        regs = [
            self.prf.value[self.rat.lookup(reg)]
            for reg in range(NUM_ARCH_REGS)
        ]
        regs[R0] = 0
        return MachineState(
            regs=regs,
            memory=self.mem,
            halted=self.halted,
            pc=self.fetch_unit.fetch_pc,
            committed=self.committed,
            faults=self.stats.faults,
        )

    # ================================================================== #
    # Writeback: completions, branch resolution, violations, broadcast.
    # ================================================================== #

    def _writeback(self, now: int) -> None:
        due: List[DynInstr] = []
        while self._completions and self._completions[0][0] <= now:
            _, _, entry = heapq.heappop(self._completions)
            if not entry.squashed:
                due.append(entry)
        due.sort(key=lambda e: e.seq)
        for entry in due:
            if entry.squashed:
                continue  # an older entry in this batch squashed it
            self._complete(entry, now)

    def _complete(self, entry: DynInstr, now: int) -> None:
        instr = entry.instr
        op = instr.op
        info = instr.info

        if info.is_branch:
            self._resolve_branch(entry, now)
        elif entry.is_store:
            self._resolve_store(entry, now)
        elif op is Opcode.CLFLUSH:
            addr = (entry.src_vals[0] + instr.imm) & U64_MASK
            self.hierarchy.flush_data_line(addr)
        elif op is Opcode.RDTSC:
            entry.result = now
        elif op is Opcode.RDMSR:
            entry.result = self.msrs.get(instr.imm, 0)
            if not self.config.privileged_mode:
                entry.fault = "user rdmsr %d" % instr.imm
                if not self.config.forward_faulting_loads:
                    entry.result = 0
        elif entry.is_load:
            pass  # result was set by the memory phase
        elif op in (Opcode.NOP, Opcode.FENCE, Opcode.HALT):
            pass
        else:
            a = entry.src_vals[0] if entry.src_vals else 0
            b = entry.src_vals[1] if len(entry.src_vals) > 1 else 0
            entry.result = eval_alu(op, a, b, instr.imm)

        entry.completed = True
        entry.complete_cycle = now
        if entry.phys_dest is not None and entry.result is not None:
            self.prf.write(entry.phys_dest, entry.result)
        self._try_broadcast(entry, now)

    def _try_broadcast(self, entry: DynInstr, now: int) -> None:
        """Broadcast at completion when safe and a port is free; else defer."""
        if entry.phys_dest is None:
            entry.bcast = True  # nothing to broadcast
            return
        head = self.rob.head
        head_seq = head.seq if head is not None else None
        if (
            self._ports_used < self.config.core.issue_width
            and self.protection.may_broadcast(entry, head_seq)
        ):
            # Safe at completion: the normal wake-up path, no NDA logic
            # latency involved (only *deferred* wake-ups pay the Fig 9e
            # delay).
            self._broadcast(entry, now)
            self._ports_used += 1
        else:
            self.protection.defer_broadcast(entry)

    def _broadcast(self, entry: DynInstr, now: int) -> None:
        self.prf.mark_ready(entry.phys_dest)
        self.iq.on_broadcast(entry.phys_dest)
        entry.bcast = True
        entry.bcast_cycle = now

    def _drain_broadcasts(self, now: int) -> None:
        head = self.rob.head
        head_seq = head.seq if head is not None else None
        self._ports_used += self.protection.drain_deferred(
            now,
            self._ports_used,
            head_seq,
            lambda e: self._broadcast(e, now),
        )

    # ------------------------------------------------------------------ #
    # Branch resolution.
    # ------------------------------------------------------------------ #

    def _resolve_branch(self, entry: DynInstr, now: int) -> None:
        instr = entry.instr
        op = instr.op
        pc = entry.pc
        vals = entry.src_vals

        if instr.info.is_conditional:
            taken = branch_taken(op, vals[0], vals[1])
            actual = instr.target if taken else pc + 1
            self.direction.update(pc, taken)
        elif op is Opcode.JMP:
            taken, actual = True, instr.target
        elif op is Opcode.CALL:
            taken, actual = True, instr.target
            entry.result = pc + 1
        elif op is Opcode.CALLR:
            taken, actual = True, vals[0] & U64_MASK
            entry.result = pc + 1
            self.btb.update(pc, actual)
        elif op is Opcode.JR:
            taken, actual = True, vals[0] & U64_MASK
            self.btb.update(pc, actual)
        elif op is Opcode.RET:
            taken, actual = True, vals[0] & U64_MASK
        else:
            raise SimulationError("unknown branch op %s" % op)

        entry.resolved = True
        entry.actual_taken = taken
        entry.actual_next_pc = actual
        self.protection.on_branch_resolved(entry)
        self.stats.branches_resolved += 1

        if entry.fetched.unpredicted:
            # Fetch stalled behind this branch: no wrong path exists.
            if instr.info.is_call:
                self.ras.push(pc + 1)
            self.fetch_unit.redirect(actual, now + 1)
            return
        if actual != entry.fetched.pred_next_pc:
            entry.mispredicted = True
            self.stats.branch_mispredicts += 1
            self._squash_after(
                entry.seq, actual, now + self.config.core.squash_penalty
            )
            self.fetch_unit.repair_ras(entry.fetched.ras_snapshot)

    # ------------------------------------------------------------------ #
    # Store resolution.
    # ------------------------------------------------------------------ #

    def _resolve_store(self, entry: DynInstr, now: int) -> None:
        instr = entry.instr
        entry.addr = (entry.src_vals[0] + instr.imm) & U64_MASK
        entry.store_data = entry.src_vals[1]
        if not self.config.privileged_mode and \
                self.program.is_privileged_addr(entry.addr):
            entry.fault = "user store to %#x" % entry.addr
        self.protection.on_store_resolved(entry)
        victim = self.lsq.check_violation(entry)
        if victim is not None:
            self.stats.memory_violations += 1
            self.memdep.record_violation(victim.pc)
            self._squash_after(
                victim.seq - 1,
                victim.pc,
                now + self.config.core.squash_penalty,
            )
            older_branch = self.rob.nearest_older_branch(victim.seq)
            if older_branch is not None:
                self.fetch_unit.repair_ras(older_branch.fetched.ras_snapshot)

    # ================================================================== #
    # Squash.
    # ================================================================== #

    def _squash_after(self, seq: int, target_pc: int, refetch_cycle: int):
        """Discard every instruction younger than *seq* and refetch."""
        removed = self.rob.squash_younger(seq)
        for entry in removed:  # youngest first: rollback works in order
            if entry.phys_dest is not None:
                self.rat.rollback(
                    entry.instr.rd, entry.phys_dest, entry.prev_phys
                )
            self.protection.on_squash(entry)
        self.iq.remove_squashed()
        self.lsq.remove_squashed()
        self.protection.after_squash()
        self._pending_mem = [
            (c, e) for c, e in self._pending_mem if not e.squashed
        ]
        self._fetch_buffer.clear()
        if self._fence_seq is not None and self._fence_seq > seq:
            self._fence_seq = None
        self.fetch_unit.redirect(target_pc, refetch_cycle)
        self.stats.squashes += 1
        self.stats.squashed_ops += len(removed)
        self._squashed_this_cycle = True
        if self.tracer is not None:
            for entry in removed:
                self.tracer.squashed(entry, self.cycle)

    # ================================================================== #
    # Load memory phase.
    # ================================================================== #

    def _mem_phase(self, now: int) -> None:
        ready = [
            (c, e) for c, e in self._pending_mem if c <= now and not e.squashed
        ]
        self._pending_mem = [
            (c, e) for c, e in self._pending_mem
            if c > now and not e.squashed
        ]
        dcache_ports = self.config.mem.l1d.ports
        dcache_used = 0
        ready.sort(key=lambda item: item[1].seq)
        for _, entry in ready:
            decision = self.lsq.decide_load(entry)
            if (
                decision.action is LoadAction.MEMORY
                and decision.bypassed_stores
                and self.memdep.should_wait(entry.pc)
            ):
                # The dependence predictor vetoes the speculative bypass.
                self._pending_mem.append((now + 1, entry))
                continue
            if decision.action is LoadAction.WAIT:
                self._pending_mem.append((now + 1, entry))
                continue
            if decision.action is LoadAction.FORWARD:
                entry.data_obtained = True
                entry.forwarded_from = decision.forwarded_from
                entry.bypassed_stores = decision.bypassed_stores or None
                value = decision.value
                self._finish_load(entry, value, now, latency=1)
                continue
            # MEMORY access: gated by the L1D port count.
            if dcache_used >= dcache_ports:
                self._pending_mem.append((now + 1, entry))
                continue
            dcache_used += 1
            entry.data_obtained = True
            entry.bypassed_stores = decision.bypassed_stores or None
            invisible = self.protection.load_executes_invisibly(entry)
            result = self.hierarchy.data_access(
                entry.addr, now, fill=not invisible, pc=entry.pc
            )
            if invisible:
                self.protection.on_invisible_load(entry, result, now)
            value = self._load_value(entry)
            self._finish_load(entry, value, now, latency=result.latency)

    def _load_value(self, entry: DynInstr) -> int:
        """Architectural data for a load reading memory (possibly faulting)."""
        addr = entry.addr
        if not self.config.privileged_mode and \
                self.program.is_privileged_addr(addr):
            entry.fault = "user load from %#x" % addr
            if not self.config.forward_faulting_loads:
                return 0
        if entry.mem_size == 1:
            return self.mem.read_byte(addr)
        return self.mem.read_word(addr)

    def _finish_load(
        self, entry: DynInstr, value: int, now: int, latency: int
    ) -> None:
        entry.result = value
        heapq.heappush(
            self._completions, (now + latency, entry.seq, entry)
        )

    # ================================================================== #
    # Issue.
    # ================================================================== #

    def _may_issue(self, entry: DynInstr, now: int) -> bool:
        if entry.instr.info.is_serializing and self.rob.head is not entry:
            return False
        return self.protection.may_issue(entry, now)

    def _issue(self, now: int) -> None:
        width = self.config.core.issue_width
        selected = self.iq.select(now, width, self.fus, self._may_issue)
        for entry in selected:
            entry.issued = True
            entry.issue_cycle = now
            entry.src_vals = tuple(
                self.prf.value[src] for src in entry.phys_srcs
            )
            self.stats.issued += 1
            self._issued_this_cycle += 1
            instr = entry.instr
            if entry.is_load:
                entry.addr = (entry.src_vals[0] + instr.imm) & U64_MASK
                self._pending_mem.append((now + 1, entry))
            else:
                latency = instr.info.latency + entry.issue_penalty
                heapq.heappush(
                    self._completions, (now + latency, entry.seq, entry)
                )

    # ================================================================== #
    # Dispatch.
    # ================================================================== #

    def _dispatch(self, now: int) -> None:
        core = self.config.core
        count = 0
        depth = core.frontend_depth
        while self._fetch_buffer and count < core.fetch_width:
            fetched = self._fetch_buffer[0]
            if fetched.fetch_cycle + depth > now:
                break
            if self._fence_seq is not None:
                break
            if self.rob.full or self.iq.full:
                break
            instr = fetched.instr
            rd = instr.rd
            if rd is not None and rd != R0 and self.prf.free_count == 0:
                break
            entry = DynInstr(self._next_seq, fetched, now)
            if not self.lsq.can_dispatch(entry):
                break
            entry.phys_srcs = tuple(self.rat.lookup(s) for s in instr.srcs)
            if rd is not None and rd != R0:
                renamed = self.rat.rename_dest(rd)
                if renamed is None:
                    break
                entry.phys_dest, entry.prev_phys = renamed
            if instr.op in (Opcode.LOADB, Opcode.STOREB):
                entry.mem_size = 1
            self._next_seq += 1
            self._fetch_buffer.popleft()
            self.rob.push(entry)
            self.iq.insert(entry)
            self.lsq.dispatch(entry)
            self.protection.on_dispatch(entry)
            if instr.info.is_serializing:
                # FENCE (speculation barrier) and RDTSC (rdtscp-like
                # measurement fence) block dispatch until they commit.
                self._fence_seq = entry.seq
            self.stats.dispatched += 1
            count += 1

    # ================================================================== #
    # Fetch.
    # ================================================================== #

    def _fetch(self, now: int) -> None:
        if len(self._fetch_buffer) >= 2 * self.config.core.fetch_width:
            return
        fetched = self.fetch_unit.fetch(now)
        self._fetch_buffer.extend(fetched)
        self.stats.fetched += len(fetched)

    # ================================================================== #
    # Commit.
    # ================================================================== #

    def _commit(self, now: int) -> int:
        committed_now = 0
        width = self.config.core.commit_width
        while committed_now < width and len(self.rob):
            head = self.rob.head
            if not head.completed:
                break
            if head.retire_ready > now:
                break
            if head.fault is not None:
                self._commit_fault(head, now)
                committed_now += 1  # classification: progress happened
                break
            if head.phys_dest is not None and not head.bcast:
                break  # waiting for a broadcast port
            self._retire(head, now)
            committed_now += 1
            if self.halted:
                break
        return committed_now

    def _retire(self, head: DynInstr, now: int) -> None:
        instr = head.instr
        op = instr.op
        self.rob.pop_head()
        if head.is_store:
            self._commit_store(head)
        if head.is_load or head.is_store:
            self.lsq.retire(head)
        if head.prev_phys is not None:
            self.rat.retire(head.prev_phys)
        if self._fence_seq == head.seq:
            self._fence_seq = None
        if op is Opcode.HALT:
            self.halted = True
            # Drop anything fetched past the halt.
            if len(self.rob):
                self._squash_after(head.seq, 0, now + 1)
        self.committed += 1
        self._last_commit_cycle = now
        if head.issue_cycle >= 0:
            self.stats.record_dispatch_to_issue(
                head.issue_cycle - head.dispatch_cycle
            )
        self.protection.on_commit(head, now)
        if self.tracer is not None:
            self.tracer.retired(head, now)

    def _commit_store(self, head: DynInstr) -> None:
        if head.mem_size == 1:
            self.mem.write_byte(head.addr, head.store_data)
        else:
            self.mem.write_word(head.addr, head.store_data)
        # Write-allocate into the hierarchy (no latency: write buffer).
        self.hierarchy.l1d.fill(head.addr)
        self.hierarchy.l2.fill(head.addr)

    def _commit_fault(self, head: DynInstr, now: int) -> None:
        """The eldest instruction faulted: squash and redirect."""
        self.stats.faults += 1
        handler = self.program.fault_handler
        self._squash_after(
            head.seq - 1,
            handler if handler is not None else 0,
            now + self.config.core.squash_penalty,
        )
        # The faulting instruction architecturally commits as a fault
        # delivery (mirrors ReferenceMachine.step counting).
        self.committed += 1
        self._last_commit_cycle = now
        if handler is None:
            self.halted = True

    # ================================================================== #
    # Accounting.
    # ================================================================== #

    def _account(self, now: int, committed_now: int) -> None:
        stats = self.stats
        if self._issued_this_cycle:
            stats.ilp_sum += self._issued_this_cycle
            stats.ilp_cycles += 1
        outstanding = self.hierarchy.outstanding_offchip(now)
        if outstanding:
            stats.mlp_sum += outstanding
            stats.mlp_cycles += 1

        if committed_now:
            stats.classify_cycle(CycleClass.COMMIT)
        elif self._squashed_this_cycle or not len(self.rob):
            stats.classify_cycle(CycleClass.FRONTEND_STALL)
        else:
            head = self.rob.head
            if head.is_load or head.is_store:
                stats.classify_cycle(CycleClass.MEMORY_STALL)
            else:
                stats.classify_cycle(CycleClass.BACKEND_STALL)

        # Program naturally drained?
        if (
            not self.halted
            and not len(self.rob)
            and not self._fetch_buffer
            and self.program.fetch(self.fetch_unit.fetch_pc) is None
        ):
            self.halted = True


def run_program(
    program: Program,
    config: Optional[SimConfig] = None,
    max_cycles: int = 5_000_000,
    direction_predictor: str = "tournament",
) -> RunOutcome:
    """Deprecated shim: use :func:`repro.simulate` instead."""
    import warnings

    from repro.api import simulate

    warnings.warn(
        "run_program() is deprecated; use repro.simulate(program, config)",
        DeprecationWarning, stacklevel=2,
    )
    return simulate(
        program, config, max_cycles=max_cycles,
        direction_predictor=direction_predictor,
    )
