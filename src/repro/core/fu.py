"""Functional-unit pool.

Models issue-port contention per :class:`~repro.isa.opcodes.FUType`.  ALU,
branch, memory (AGU), MUL and FP units are pipelined — each unit accepts one
new micro-op per cycle regardless of latency — while the divider is
unpipelined and stays busy for the full operation.  Port contention is the
covert channel SMoTher-Spectre exploits; modeling it per-type keeps that
channel representable (see ``tests/test_fu.py``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import CoreConfig
from repro.isa.opcodes import FUType


class FUPool:
    """Tracks per-cycle issue-slot usage for every functional-unit class."""

    def __init__(self, config: CoreConfig):
        self.counts: Dict[FUType, int] = {
            FUType.ALU: config.num_alu,
            FUType.MUL: config.num_mul,
            FUType.DIV: config.num_div,
            FUType.FP: config.num_fp,
            FUType.MEM: config.num_mem_ports,
            FUType.BRANCH: config.num_branch,
            FUType.SYS: 1,
        }
        self._used: Dict[FUType, int] = {}
        self._used_cycle = -1
        # Unpipelined units: cycle at which each instance frees up.
        self._div_free: List[int] = [0] * config.num_div
        # FPU power gating (NetSpectre channel): last FP issue time.  The
        # unit starts asleep; wrong-path issues wake it and squash does
        # not revert the power state.
        self._fpu_sleep = config.fpu_sleep_cycles
        self._fpu_wakeup = config.fpu_wakeup_cycles
        self._fpu_last_issue = -(10 ** 9)

    def _roll(self, now: int) -> None:
        if now != self._used_cycle:
            self._used = {fu: 0 for fu in self.counts}
            self._used_cycle = now

    def can_issue(self, fu: FUType, now: int) -> bool:
        """True when an issue slot on *fu* is free at cycle *now*."""
        self._roll(now)
        if self._used[fu] >= self.counts[fu]:
            return False
        if fu is FUType.DIV:
            return any(free <= now for free in self._div_free)
        return True

    def issue(self, fu: FUType, now: int, latency: int) -> int:
        """Consume one issue slot on *fu* at cycle *now*.

        Returns the extra execution latency the micro-op pays (non-zero
        only for FP ops issued to a power-gated FPU).
        """
        self._roll(now)
        self._used[fu] += 1
        if fu is FUType.FP:
            penalty = self.fp_wakeup_penalty(now)
            self._fpu_last_issue = now
            return penalty
        if fu is FUType.DIV:
            for i, free in enumerate(self._div_free):
                if free <= now:
                    self._div_free[i] = now + latency
                    return 0
        return 0

    def fp_wakeup_penalty(self, now: int) -> int:
        """Extra cycles the next FP op pays if the FPU is power-gated."""
        if now - self._fpu_last_issue > self._fpu_sleep:
            return self._fpu_wakeup
        return 0

    def fpu_awake(self, now: int) -> bool:
        """Is the FP cluster currently powered (observable channel state)?"""
        return now - self._fpu_last_issue <= self._fpu_sleep

    def used(self, fu: FUType, now: int) -> int:
        """Issue slots already consumed on *fu* this cycle (for stats)."""
        self._roll(now)
        return self._used[fu]
