"""Memory dependence prediction (a wait-table in the Alpha 21264 style).

§4.1 of the paper names the memory dependence predictor among the
structures wrong-path execution trains without rollback.  The model here is
the simplest useful one: a load PC that suffered an ordering violation is
remembered; future instances of that load *wait* for all older unresolved
stores instead of speculatively bypassing them.  Entries decay after a
fixed number of clean executions, like the 21264's periodic wait-table
flush.

Disabled by default (``CoreConfig.memdep = "none"``): the paper's baseline
always bypasses, which is exactly what Spectre v4 needs.  With the wait
table enabled, the SSB PoC still leaks on its *first* execution (the table
is cold) — dependence prediction is a performance feature, not a defense,
which is why the paper adds the Bypass Restriction instead.
"""

from __future__ import annotations

from typing import Dict


class WaitTable:
    """PC-indexed set of loads that must not bypass unresolved stores."""

    def __init__(self, entries: int = 64, decay_period: int = 2048):
        if entries < 1:
            raise ValueError("wait table needs at least one entry")
        self.entries = entries
        self.decay_period = decay_period
        self._table: Dict[int, int] = {}  # load pc -> insertion stamp
        self._accesses = 0
        self.trained = 0
        self.waits = 0

    def should_wait(self, load_pc: int) -> bool:
        """Must the load at *load_pc* wait for older stores to resolve?"""
        self._accesses += 1
        if self._accesses % self.decay_period == 0:
            self._table.clear()
        if load_pc in self._table:
            self.waits += 1
            return True
        return False

    def record_violation(self, load_pc: int) -> None:
        """An ordering violation squashed the load at *load_pc*."""
        if load_pc not in self._table and len(self._table) >= self.entries:
            self._table.pop(next(iter(self._table)))
        self._table[load_pc] = self._accesses
        self.trained += 1

    def __contains__(self, load_pc: int) -> bool:
        return load_pc in self._table

    def __len__(self) -> int:
        return len(self._table)


class AlwaysBypass:
    """The baseline policy: loads always speculatively bypass (no predictor)."""

    trained = 0
    waits = 0

    def should_wait(self, load_pc: int) -> bool:
        return False

    def record_violation(self, load_pc: int) -> None:
        pass

    def __len__(self) -> int:
        return 0


def make_memdep(name: str):
    """Factory keyed by ``CoreConfig.memdep``."""
    if name == "none":
        return AlwaysBypass()
    if name == "waittable":
        return WaitTable()
    raise ValueError("unknown memory dependence predictor %r" % name)
