"""Result type returned by every core's ``run`` method."""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.semantics import MachineState
from repro.stats.counters import PipelineStats


@dataclass
class RunOutcome:
    """Final architectural state plus the pipeline statistics of one run."""

    state: MachineState
    stats: PipelineStats
    label: str

    @property
    def cpi(self) -> float:
        return self.stats.cpi

    def reg(self, index: int) -> int:
        return self.state.regs[index]

    def __repr__(self) -> str:
        return "<RunOutcome %s: %d instrs, %d cycles, CPI %.3f>" % (
            self.label,
            self.stats.committed,
            self.stats.cycles,
            self.stats.cpi,
        )
