"""Result type returned by every core's ``run`` method."""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.semantics import MachineState
from repro.stats.counters import PipelineStats


@dataclass
class RunOutcome:
    """Final architectural state plus the pipeline statistics of one run."""

    state: MachineState
    stats: PipelineStats
    label: str

    @property
    def cpi(self) -> float:
        return self.stats.cpi

    @property
    def sim_wall_seconds(self) -> float:
        """Host wall-clock seconds the run took (simulator speed)."""
        return self.stats.sim_wall_seconds

    @property
    def kilo_cycles_per_sec(self) -> float:
        """Simulated kilo-cycles per wall-clock second."""
        return self.stats.kilo_cycles_per_sec

    def reg(self, index: int) -> int:
        return self.state.regs[index]

    def __repr__(self) -> str:
        return "<RunOutcome %s: %d instrs, %d cycles, CPI %.3f>" % (
            self.label,
            self.stats.committed,
            self.stats.cycles,
            self.stats.cpi,
        )
