"""Reorder buffer and dynamic instruction records.

Each :class:`DynInstr` carries the three NDA status bits the paper adds to
ROB entries — ``unsafe`` (tracked implicitly through the safety logic),
``exec`` (here ``completed``) and ``bcast`` — plus the timestamps the
statistics module needs (dispatch/issue/complete/broadcast cycles).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, Optional, Set

from repro.frontend.fetch import FetchedOp
from repro.isa.instruction import Instr


class DynInstr:
    """One in-flight dynamic micro-op (a ROB entry)."""

    __slots__ = (
        "seq", "instr", "pc", "fetched",
        "phys_dest", "prev_phys", "phys_srcs",
        "issued", "completed", "bcast", "squashed", "issue_penalty",
        "dispatch_cycle", "issue_cycle", "complete_cycle", "bcast_cycle",
        "safe_cycle",
        "result", "src_vals",
        "resolved", "actual_next_pc", "actual_taken", "mispredicted",
        "addr", "mem_size", "store_data", "bypassed_stores",
        "forwarded_from", "data_obtained",
        "invisible", "needs_validation", "retire_ready",
        "fault",
    )

    def __init__(self, seq: int, fetched: FetchedOp, dispatch_cycle: int):
        self.seq = seq
        self.instr: Instr = fetched.instr
        self.pc: int = fetched.pc
        self.fetched = fetched
        self.phys_dest: Optional[int] = None
        self.prev_phys: Optional[int] = None
        self.phys_srcs: tuple = ()
        self.issued = False
        self.issue_penalty = 0  # extra latency charged at issue (FPU wake)
        self.completed = False
        self.bcast = False
        self.squashed = False
        self.dispatch_cycle = dispatch_cycle
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.bcast_cycle = -1
        # Cycle at which the NDA safety condition was first satisfied; -1
        # while still unsafe.  Used to model extra broadcast-logic latency.
        self.safe_cycle = -1
        self.result: Optional[int] = None
        self.src_vals: tuple = ()  # source values captured at issue
        # Branch resolution.
        self.resolved = False
        self.actual_next_pc: Optional[int] = None
        self.actual_taken = False
        self.mispredicted = False
        # Memory.
        self.addr: Optional[int] = None
        self.mem_size = 8
        self.store_data: Optional[int] = None
        self.bypassed_stores: Optional[Set[int]] = None
        self.forwarded_from: Optional[int] = None
        self.data_obtained = False  # load has selected its data source
        self.invisible = False  # InvisiSpec: accessed without filling caches
        self.needs_validation = False
        self.retire_ready = 0  # earliest commit cycle (InvisiSpec validation)
        self.fault: Optional[str] = None

    # Convenience properties used throughout the pipeline. ------------- #

    @property
    def is_branch(self) -> bool:
        return self.instr.info.is_branch

    @property
    def is_load(self) -> bool:
        return self.instr.info.is_load

    @property
    def is_store(self) -> bool:
        return self.instr.info.is_store

    @property
    def is_load_like(self) -> bool:
        return self.instr.info.is_load_like

    @property
    def unresolved_branch(self) -> bool:
        return self.is_branch and not self.resolved

    @property
    def unresolved_store(self) -> bool:
        return self.is_store and self.addr is None

    def __repr__(self) -> str:
        flags = "".join(
            ch for ch, cond in (
                ("I", self.issued), ("C", self.completed),
                ("B", self.bcast), ("X", self.squashed),
            ) if cond
        )
        return "<#%d %r %s>" % (self.seq, self.instr, flags or "-")


class ROB:
    """In-order window of in-flight instructions."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.entries: Deque[DynInstr] = deque()

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[DynInstr]:
        return iter(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    @property
    def head(self) -> Optional[DynInstr]:
        return self.entries[0] if self.entries else None

    def push(self, entry: DynInstr) -> None:
        self.entries.append(entry)

    def pop_head(self) -> DynInstr:
        return self.entries.popleft()

    def squash_younger(self, seq: int) -> "list[DynInstr]":
        """Remove every entry with ``seq > seq`` (youngest first).

        Returns the removed entries in removal (youngest-first) order so the
        caller can walk the rename rollback correctly.
        """
        removed = []
        while self.entries and self.entries[-1].seq > seq:
            entry = self.entries.pop()
            entry.squashed = True
            removed.append(entry)
        return removed

    def nearest_older_branch(self, seq: int) -> Optional[DynInstr]:
        """Youngest branch entry older than *seq* (for RAS repair)."""
        best = None
        for entry in self.entries:
            if entry.seq >= seq:
                break
            if entry.is_branch:
                best = entry
        return best
