"""Issue queue: event-driven wake-up plus oldest-first select.

The implementation mirrors real wake-up/select logic: each waiting entry
holds a count of not-yet-ready sources; a tag broadcast decrements the
count of every consumer registered on that physical register, and entries
whose count hits zero move to the ready pool, from which select picks
oldest-first.  Because readiness is driven purely by broadcasts, the entire
NDA mechanism (deferred tag broadcast) naturally gates wake-up here,
exactly as in the paper's Fig. 2.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Callable, Dict, List

from repro.core.fu import FUPool
from repro.core.rename import PhysRegFile
from repro.core.rob import DynInstr

_BY_SEQ = attrgetter("seq")


class IssueQueue:
    """Out-of-order scheduler window."""

    def __init__(self, capacity: int, prf: PhysRegFile):
        self.capacity = capacity
        self.prf = prf
        self._size = 0
        self._ready: List[DynInstr] = []
        # True while _ready is known to be seq-sorted; appends clear it so
        # select() sorts only when a new entry actually arrived.
        self._ready_sorted = True
        # phys reg -> entries waiting on it.
        self._waiters: Dict[int, List[DynInstr]] = {}
        # entry -> outstanding source count (kept off DynInstr to avoid
        # widening its slots for a scheduler-private detail).
        self._pending: Dict[DynInstr, int] = {}

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size >= self.capacity

    @property
    def has_ready(self) -> bool:
        """O(1): any entry waiting in the ready pool (selectable or not)?"""
        return bool(self._ready)

    def ready_entries(self) -> List[DynInstr]:
        """The ready pool, for read-only inspection (schemes, probes).

        May contain already-squashed entries (select() filters them);
        callers must not mutate the list.
        """
        return self._ready

    def insert(self, entry: DynInstr) -> None:
        ready_bits = self.prf.ready
        outstanding = 0
        for src in entry.phys_srcs:
            if not ready_bits[src]:
                outstanding += 1
                self._waiters.setdefault(src, []).append(entry)
        self._size += 1
        if outstanding:
            self._pending[entry] = outstanding
        else:
            self._ready.append(entry)
            self._ready_sorted = False

    def on_broadcast(self, phys_reg: int) -> None:
        """A tag broadcast on *phys_reg*: wake its consumers."""
        waiters = self._waiters.pop(phys_reg, None)
        if not waiters:
            return
        pending = self._pending
        for entry in waiters:
            if entry.squashed:
                pending.pop(entry, None)
                continue
            if entry not in pending:
                continue  # already woken via another source's broadcast
            remaining = pending[entry] - 1
            if remaining <= 0:
                del pending[entry]
                self._ready.append(entry)
                self._ready_sorted = False
            else:
                pending[entry] = remaining

    def remove_squashed(self) -> None:
        self._ready = [e for e in self._ready if not e.squashed]
        self._pending = {
            entry: count
            for entry, count in self._pending.items()
            if not entry.squashed
        }
        self._size = len(self._ready) + len(self._pending)

    def select(
        self,
        now: int,
        width: int,
        fus: FUPool,
        may_issue: Callable[[DynInstr, int], bool],
    ) -> List[DynInstr]:
        """Pick up to *width* ready entries, oldest first.

        *may_issue* lets the core veto issue for reasons the queue cannot
        see (serializing micro-ops not yet at the ROB head).  Selected
        entries leave the queue.
        """
        if not self._ready:
            return []
        selected: List[DynInstr] = []
        remaining: List[DynInstr] = []
        if not self._ready_sorted:
            if len(self._ready) > 1:
                self._ready.sort(key=_BY_SEQ)
            self._ready_sorted = True
        for entry in self._ready:
            if entry.squashed:
                self._size -= 1
                continue
            if len(selected) >= width:
                remaining.append(entry)
                continue
            fu = entry.instr.info.fu
            if fus.can_issue(fu, now) and may_issue(entry, now):
                entry.issue_penalty = fus.issue(
                    fu, now, entry.instr.info.latency
                )
                selected.append(entry)
                self._size -= 1
            else:
                remaining.append(entry)
        self._ready = remaining  # filtered in order: still seq-sorted
        return selected

    def sources_ready(self, entry: DynInstr) -> bool:
        """Direct readiness check (used by tests)."""
        ready_bits = self.prf.ready
        return all(ready_bits[src] for src in entry.phys_srcs)
