"""The table-driven fast execution core.

:class:`FastOoOCore` is the reference :class:`~repro.core.ooo.OutOfOrderCore`
with its hot phases rewritten against the dense micro-op tables of
:mod:`repro.isa.microops`: integer flag masks instead of
``entry.instr.info.<attr>`` chains, int-indexed FU accounting instead of
enum-keyed dicts, pre-bound execute closures instead of the opcode
dispatch in ``_complete``, and one batched pass per phase with all loop
invariants hoisted into locals.

It is a *timing-identical* drop-in: every phase makes the same decisions
in the same order as the reference implementation, every
:class:`~repro.schemes.ProtectionModel` hook keeps its exact call site,
and every counter increments at the same cycle — the per-scheme golden
files (``tests/golden/scheme_equivalence.json``) pin this bit-identity
for all registered schemes.  Anything off the hot path (squash, store
resolution, faults, fast-forward bookkeeping) is inherited unchanged.

Select the core with ``SimConfig.engine`` ("fast", the default, or
"reference") through :func:`repro.core.make_core`; the knob is excluded
from the config cache key precisely because results are bit-identical.
"""

from __future__ import annotations

import heapq
import time
from operator import attrgetter
from typing import List, Optional

from repro.config import CoreConfig, SimConfig
from repro.core.lsq import LoadAction
from repro.core.ooo import OutOfOrderCore
from repro.core.outcome import RunOutcome
from repro.core.rob import DynInstr
from repro.errors import SimulationError
from repro.frontend.fetch import FetchedOp
from repro.isa.microops import (
    F_BRANCH,
    F_CALL,
    F_CONDITIONAL,
    F_LOAD,
    F_MEM_BYTE,
    F_SERIALIZING,
    F_STORE,
    FU_BY_ID,
    FU_ID,
    K_ALU,
    K_BRANCH,
    K_CLFLUSH,
    K_PASS,
    K_RDMSR,
    K_RDTSC,
    K_STORE,
    OP_ID,
    lower_program,
)
from repro.isa.opcodes import FUType, Opcode
from repro.isa.program import Program
from repro.memory.memory import U64_MASK
from repro.schemes.base import ProtectionModel
from repro.stats.counters import CycleClass

_BY_SEQ = attrgetter("seq")

_FU_FP = FU_ID[FUType.FP]
_FU_DIV = FU_ID[FUType.DIV]

_OPID_JMP = OP_ID[Opcode.JMP]
_OPID_CALL = OP_ID[Opcode.CALL]
_OPID_CALLR = OP_ID[Opcode.CALLR]
_OPID_JR = OP_ID[Opcode.JR]
_OPID_RET = OP_ID[Opcode.RET]
_OPID_HALT = OP_ID[Opcode.HALT]

_F_MEMOP = F_LOAD | F_STORE


class FastFUPool:
    """Int-indexed functional-unit pool, API-compatible with
    :class:`~repro.core.fu.FUPool`.

    The fast core issues through the ``*_id`` methods (one list index per
    check); the enum-accepting methods remain for external consumers
    (tests, stats) and read the same state, so the two views never
    diverge.  Timing semantics — pipelined units, the unpipelined
    divider, FPU power gating — are identical to the reference pool.
    """

    __slots__ = (
        "counts", "_counts_by_id", "_used", "_used_cycle", "_div_free",
        "_fpu_sleep", "_fpu_wakeup", "_fpu_last_issue",
    )

    def __init__(self, config: CoreConfig):
        counts = {
            FUType.ALU: config.num_alu,
            FUType.MUL: config.num_mul,
            FUType.DIV: config.num_div,
            FUType.FP: config.num_fp,
            FUType.MEM: config.num_mem_ports,
            FUType.BRANCH: config.num_branch,
            FUType.SYS: 1,
        }
        self.counts = counts
        self._counts_by_id: List[int] = [counts[fu] for fu in FU_BY_ID]
        self._used: List[int] = [0] * len(FU_BY_ID)
        self._used_cycle = -1
        self._div_free: List[int] = [0] * config.num_div
        self._fpu_sleep = config.fpu_sleep_cycles
        self._fpu_wakeup = config.fpu_wakeup_cycles
        self._fpu_last_issue = -(10 ** 9)

    def _roll(self, now: int) -> None:
        if now != self._used_cycle:
            used = self._used
            for i in range(len(used)):
                used[i] = 0
            self._used_cycle = now

    # Int-id hot path. ------------------------------------------------- #

    def can_issue_id(self, fu_id: int, now: int) -> bool:
        if now != self._used_cycle:
            self._roll(now)
        if self._used[fu_id] >= self._counts_by_id[fu_id]:
            return False
        if fu_id == _FU_DIV:
            for free in self._div_free:
                if free <= now:
                    return True
            return False
        return True

    def issue_id(self, fu_id: int, now: int, latency: int) -> int:
        if now != self._used_cycle:
            self._roll(now)
        self._used[fu_id] += 1
        if fu_id == _FU_FP:
            penalty = self.fp_wakeup_penalty(now)
            self._fpu_last_issue = now
            return penalty
        if fu_id == _FU_DIV:
            div_free = self._div_free
            for i, free in enumerate(div_free):
                if free <= now:
                    div_free[i] = now + latency
                    return 0
        return 0

    # Enum-accepting compatibility surface. ---------------------------- #

    def can_issue(self, fu: FUType, now: int) -> bool:
        return self.can_issue_id(FU_ID[fu], now)

    def issue(self, fu: FUType, now: int, latency: int) -> int:
        return self.issue_id(FU_ID[fu], now, latency)

    def fp_wakeup_penalty(self, now: int) -> int:
        if now - self._fpu_last_issue > self._fpu_sleep:
            return self._fpu_wakeup
        return 0

    def fpu_awake(self, now: int) -> bool:
        return now - self._fpu_last_issue <= self._fpu_sleep

    def used(self, fu: FUType, now: int) -> int:
        self._roll(now)
        return self._used[FU_ID[fu]]


class FastDynInstr:
    """Dict-backed twin of :class:`~repro.core.rob.DynInstr`.

    Class-level defaults stand in for the ~25 zero/None/False slot
    initialisations the reference ``__init__`` performs, so dispatching
    an entry pays five attribute stores instead of thirty; reads of
    never-written fields fall back to the class attributes (all
    immutable), and every consumer — LSQ, ROB, schemes, taint oracle,
    observers — is duck-typed on the same attribute names.  The
    convenience properties mirror DynInstr's exactly.
    """

    phys_dest = None
    prev_phys = None
    phys_srcs = ()
    issued = False
    issue_penalty = 0
    completed = False
    bcast = False
    squashed = False
    issue_cycle = -1
    complete_cycle = -1
    bcast_cycle = -1
    safe_cycle = -1
    result = None
    src_vals = ()
    resolved = False
    actual_next_pc = None
    actual_taken = False
    mispredicted = False
    addr = None
    mem_size = 8
    store_data = None
    bypassed_stores = None
    forwarded_from = None
    data_obtained = False
    invisible = False
    needs_validation = False
    retire_ready = 0
    fault = None

    def __init__(self, seq: int, fetched: FetchedOp, dispatch_cycle: int):
        self.seq = seq
        self.instr = fetched.instr
        self.pc = fetched.pc
        self.fetched = fetched
        self.dispatch_cycle = dispatch_cycle

    # Convenience properties, identical to DynInstr's. ----------------- #

    @property
    def is_branch(self) -> bool:
        return self.instr.info.is_branch

    @property
    def is_load(self) -> bool:
        return self.instr.info.is_load

    @property
    def is_store(self) -> bool:
        return self.instr.info.is_store

    @property
    def is_load_like(self) -> bool:
        return self.instr.info.is_load_like

    @property
    def unresolved_branch(self) -> bool:
        return self.is_branch and not self.resolved

    @property
    def unresolved_store(self) -> bool:
        return self.is_store and self.addr is None

    def __repr__(self) -> str:
        flags = "".join(
            ch for ch, cond in (
                ("I", self.issued), ("C", self.completed),
                ("B", self.bcast), ("X", self.squashed),
            ) if cond
        )
        return "<#%d %r %s>" % (self.seq, self.instr, flags or "-")


class FastOoOCore(OutOfOrderCore):
    """Micro-op-table core; bit-identical to the reference pipeline."""

    def __init__(
        self,
        program: Program,
        config: Optional[SimConfig] = None,
        direction_predictor: str = "tournament",
        fast_forward: bool = True,
    ):
        super().__init__(
            program, config, direction_predictor=direction_predictor,
            fast_forward=fast_forward,
        )
        self.u = lower_program(program)
        core = self.config.core
        # Same initial state as the reference pool (nothing issued yet).
        self.fus = FastFUPool(core)
        # Hot-loop invariants hoisted out of the per-cycle phases.
        self._issue_width = core.issue_width
        self._fetch_width = core.fetch_width
        self._commit_width = core.commit_width
        self._frontend_depth = core.frontend_depth
        self._fetch_cap = 2 * core.fetch_width
        self._squash_penalty = core.squash_penalty
        self._dcache_ports = self.config.mem.l1d.ports
        self._priv_mode = self.config.privileged_mode
        self._fwd_faulting = self.config.forward_faulting_loads
        self._arbiter = self.protection.arbiter
        # Phase guards: the base load_visibility_phase is a documented
        # no-op, so only call it when the scheme actually overrides it.
        self._has_visibility_phase = (
            type(self.protection).load_visibility_phase
            is not ProtectionModel.load_visibility_phase
        )
        # Hook elision: bind each per-instruction ProtectionModel hook
        # only when the scheme overrides it; a ``None`` means the base
        # no-op (or constant) implementation, whose effect the call site
        # applies inline.  The call sites themselves stay — any override
        # is still invoked at exactly the reference cycle.
        prot = self.protection
        prot_cls = type(prot)
        base = ProtectionModel
        self._hook_may_issue = (
            prot.may_issue
            if prot_cls.may_issue is not base.may_issue else None
        )
        self._hook_may_broadcast = (
            prot.may_broadcast
            if prot_cls.may_broadcast is not base.may_broadcast else None
        )
        self._hook_on_dispatch = (
            prot.on_dispatch
            if prot_cls.on_dispatch is not base.on_dispatch else None
        )
        self._hook_on_commit = (
            prot.on_commit
            if prot_cls.on_commit is not base.on_commit else None
        )
        self._hook_on_branch_resolved = (
            prot.on_branch_resolved
            if prot_cls.on_branch_resolved is not base.on_branch_resolved
            else None
        )
        self._hook_load_invisible = (
            prot.load_executes_invisibly
            if prot_cls.load_executes_invisibly
            is not base.load_executes_invisibly else None
        )
        self._hook_ready_horizon = (
            prot.issue_ready_horizon
            if prot_cls.issue_ready_horizon
            is not base.issue_ready_horizon else None
        )
        # Per-phase working sets, bundled so each phase pays ONE attribute
        # load plus a tuple unpack instead of re-hoisting ~20 locals per
        # call.  Only references that are never rebound belong here: the
        # micro-op tables, the RAT/PRF arrays, the ROB deque, the IQ
        # waiter dict, the fetch buffer and the completion heap.  Anything
        # a squash rebinds (lsq.loads/stores, _pending_mem, iq._ready,
        # iq._pending) is read fresh inside the phase.
        u = self.u
        self._flags = u.flags
        self._disp_tables = (
            u.flags, u.rd, u.srcs, self.rat.map, self.prf.ready,
            self.iq._waiters, self.rob.entries, self.rob.capacity,
            self.iq.capacity, self.rat.rename_dest, self.prf._free,
            self._hook_on_dispatch, self.stats,
        )
        self._issue_tables = (
            u.fu_ids, u.latency, u.flags, u.imm, self.prf.value,
            self.fus, self._hook_may_issue, self.rob.entries,
            self._completions, self.stats,
        )
        self._wb_tables = (
            u.kinds, u.exec_fns, u.imm, self.prf.value, self.prf.ready,
            self.iq._waiters, self.rob.entries, self.protection,
            self._hook_may_broadcast,
        )
        self._commit_tables = (
            u.flags, u.op_ids, self.rob.entries, self.lsq,
            self.rat.retire, self.stats, self._hook_on_commit,
        )
        self._has_next_event = (
            prot_cls.next_event is not base.next_event
        )
        self._fetch_tables = (
            u.flags, u.op_ids, self.program.instrs,
            len(self.program.instrs), self.fetch_unit,
            self.fetch_unit._line_available, self._fetch_buffer,
            self._fetch_buffer.append,
        )

    # ================================================================== #
    # The cycle loop: same phase order, with inline no-op guards.  Each
    # guard replicates the called phase's own early-return condition, so
    # skipping the call is observationally identical.
    # ================================================================== #

    def step(self) -> None:
        now = self.cycle
        obs = self.obs
        if obs is not None and obs.sample_due <= now:
            obs.sample(self, now)
        self._ports_used = 0
        self._issued_this_cycle = 0
        self._squashed_this_cycle = False

        completions = self._completions
        if completions and completions[0][0] <= now:
            self._writeback(now)
        if self._arbiter.deferred:
            self._drain_broadcasts(now)
        if self._has_visibility_phase:
            self.protection.load_visibility_phase(now)
        pending = self._pending_mem
        if pending and pending[0][0] <= now:
            self._mem_phase(now)
        if self.iq._ready:
            self._issue(now)
        # Dispatch/fetch/commit guards replicate each phase's own
        # side-effect-free early-exit checks, so skipping the call is
        # observationally identical to making it.
        rob_entries = self.rob.entries
        buffer = self._fetch_buffer
        if (
            buffer
            and self._fence_seq is None
            and buffer[0].fetch_cycle + self._frontend_depth <= now
            and len(rob_entries) < self.rob.capacity
            and self.iq._size < self.iq.capacity
        ):
            self._dispatch(now)
        if len(buffer) < self._fetch_cap:
            self._fetch(now)
        if rob_entries and rob_entries[0].completed:
            committed_now = self._commit(now)
        else:
            committed_now = 0

        # Accounting (inline of the reference _account, same counters).
        stats = self.stats
        issued = self._issued_this_cycle
        if issued:
            stats.ilp_sum += issued
            stats.ilp_cycles += 1
        offchip = self.hierarchy._offchip  # rebound on prune: read fresh
        if offchip:
            outstanding = 0
            for c in offchip:
                if c > now:
                    outstanding += 1
            if outstanding:
                stats.mlp_sum += outstanding
                stats.mlp_cycles += 1
        cycle_class = stats.cycle_class
        if committed_now:
            cycle_class[CycleClass.COMMIT] += 1
        elif self._squashed_this_cycle or not rob_entries:
            cycle_class[CycleClass.FRONTEND_STALL] += 1
        elif self._flags[rob_entries[0].pc] & _F_MEMOP:
            cycle_class[CycleClass.MEMORY_STALL] += 1
        else:
            cycle_class[CycleClass.BACKEND_STALL] += 1

        # Program naturally drained?
        if (
            not self.halted
            and not rob_entries
            and not self._fetch_buffer
            and self.program.fetch(self.fetch_unit.fetch_pc) is None
        ):
            self.halted = True

        self.cycle = now + 1

    # ================================================================== #
    # Writeback: table-dispatched completion.
    # ================================================================== #

    def _writeback(self, now: int) -> None:
        # One batched pass: pop every due completion, then run the
        # completion body inline (same work as _complete + _try_broadcast
        # per entry, same order) with the table lookups hoisted.
        completions = self._completions
        due: List[DynInstr] = []
        pop = heapq.heappop
        while completions and completions[0][0] <= now:
            entry = pop(completions)[2]
            if not entry.squashed:
                due.append(entry)
        if len(due) > 1:
            due.sort(key=_BY_SEQ)
        (kinds, exec_fns, imms, prf_value, ready_bits, iq_waiters,
         rob_entries, protection, may_broadcast) = self._wb_tables
        issue_width = self._issue_width
        taint = self.taint
        obs = self.obs
        obs_complete = obs.instr_complete if obs is not None else None
        obs_defer = obs.instr_defer if obs is not None else None
        obs_broadcast = obs.instr_broadcast if obs is not None else None
        iq = self.iq
        for entry in due:
            if entry.squashed:
                continue  # an older entry in this batch squashed it
            pc = entry.pc
            kind = kinds[pc]
            if taint is not None:
                taint.exec_ctx = entry
            if kind == K_ALU:
                vals = entry.src_vals
                a = vals[0] if vals else 0
                b = vals[1] if len(vals) > 1 else 0
                entry.result = exec_fns[pc](a, b)
            elif kind == K_BRANCH:
                self._resolve_branch(entry, now)
            elif kind == K_STORE:
                self._resolve_store(entry, now)
            elif kind == K_CLFLUSH:
                addr = (entry.src_vals[0] + imms[pc]) & U64_MASK
                self.hierarchy.flush_data_line(addr)
            elif kind == K_RDTSC:
                entry.result = now
            elif kind == K_RDMSR:
                imm = imms[pc]
                entry.result = self.msrs.get(imm, 0)
                if not self._priv_mode:
                    entry.fault = "user rdmsr %d" % imm
                    if not self._fwd_faulting:
                        entry.result = 0
            # K_LOAD: result set by the memory phase; K_PASS: nothing.
            entry.completed = True
            entry.complete_cycle = now
            pd = entry.phys_dest
            if pd is not None and entry.result is not None:
                prf_value[pd] = entry.result
            if taint is not None:
                taint.exec_ctx = None
                taint.on_complete(entry)
            if obs_complete is not None:
                obs_complete(entry, now)
            # Inline _try_broadcast (base may_broadcast returns True).
            if pd is None:
                entry.bcast = True
                continue
            if self._ports_used < issue_width and (
                may_broadcast is None
                or may_broadcast(
                    entry, rob_entries[0].seq if rob_entries else None
                )
            ):
                # Inline _broadcast: mark ready, wake IQ waiters.
                ready_bits[pd] = True
                waiters = iq_waiters.pop(pd, None)
                if waiters:
                    # _pending/_ready rebound by squashes earlier in
                    # this very loop — read fresh per broadcast.
                    iq_pending = iq._pending
                    iq_ready = iq._ready
                    for waiter in waiters:
                        if waiter.squashed:
                            iq_pending.pop(waiter, None)
                            continue
                        if waiter not in iq_pending:
                            continue  # woken via another source already
                        remaining = iq_pending[waiter] - 1
                        if remaining <= 0:
                            del iq_pending[waiter]
                            iq_ready.append(waiter)
                            iq._ready_sorted = False
                        else:
                            iq_pending[waiter] = remaining
                entry.bcast = True
                entry.bcast_cycle = now
                self._ports_used += 1
                if obs_broadcast is not None:
                    obs_broadcast(entry, now)
            else:
                protection.defer_broadcast(entry)
                if obs_defer is not None:
                    obs_defer(entry, now)

    def _complete(self, entry: DynInstr, now: int) -> None:
        u = self.u
        pc = entry.pc
        kind = u.kinds[pc]
        taint = self.taint
        if taint is not None:
            taint.exec_ctx = entry

        if kind == K_ALU:
            vals = entry.src_vals
            a = vals[0] if vals else 0
            b = vals[1] if len(vals) > 1 else 0
            entry.result = u.exec_fns[pc](a, b)
        elif kind == K_BRANCH:
            self._resolve_branch(entry, now)
        elif kind == K_STORE:
            self._resolve_store(entry, now)
        elif kind == K_CLFLUSH:
            addr = (entry.src_vals[0] + u.imm[pc]) & U64_MASK
            self.hierarchy.flush_data_line(addr)
        elif kind == K_RDTSC:
            entry.result = now
        elif kind == K_RDMSR:
            imm = u.imm[pc]
            entry.result = self.msrs.get(imm, 0)
            if not self._priv_mode:
                entry.fault = "user rdmsr %d" % imm
                if not self._fwd_faulting:
                    entry.result = 0
        # K_LOAD: result was set by the memory phase; K_PASS: nothing.

        entry.completed = True
        entry.complete_cycle = now
        if entry.phys_dest is not None and entry.result is not None:
            self.prf.value[entry.phys_dest] = entry.result
        if taint is not None:
            taint.exec_ctx = None
            taint.on_complete(entry)
        obs = self.obs
        if obs is not None and obs.instr_complete is not None:
            obs.instr_complete(entry, now)
        self._try_broadcast(entry, now)

    def _try_broadcast(self, entry: DynInstr, now: int) -> None:
        if entry.phys_dest is None:
            entry.bcast = True  # nothing to broadcast
            return
        rob_entries = self.rob.entries
        head_seq = rob_entries[0].seq if rob_entries else None
        may_broadcast = self._hook_may_broadcast
        if self._ports_used < self._issue_width and (
            may_broadcast is None or may_broadcast(entry, head_seq)
        ):
            self._broadcast(entry, now)
            self._ports_used += 1
        else:
            self.protection.defer_broadcast(entry)
            obs = self.obs
            if obs is not None and obs.instr_defer is not None:
                obs.instr_defer(entry, now)

    def _resolve_branch(self, entry: DynInstr, now: int) -> None:
        u = self.u
        pc = entry.pc
        flags = u.flags[pc]
        vals = entry.src_vals

        if flags & F_CONDITIONAL:
            taken = u.cond_fns[pc](vals[0], vals[1])
            actual = u.target[pc] if taken else pc + 1
            self.direction.update(pc, taken)
        else:
            op_id = u.op_ids[pc]
            if op_id == _OPID_JMP:
                taken, actual = True, u.target[pc]
            elif op_id == _OPID_CALL:
                taken, actual = True, u.target[pc]
                entry.result = pc + 1
            elif op_id == _OPID_CALLR:
                taken, actual = True, vals[0] & U64_MASK
                entry.result = pc + 1
                self.btb.update(pc, actual)
            elif op_id == _OPID_JR:
                taken, actual = True, vals[0] & U64_MASK
                self.btb.update(pc, actual)
            elif op_id == _OPID_RET:
                taken, actual = True, vals[0] & U64_MASK
            else:
                raise SimulationError(
                    "unknown branch op %s" % entry.instr.op
                )

        entry.resolved = True
        entry.actual_taken = taken
        entry.actual_next_pc = actual
        on_branch_resolved = self._hook_on_branch_resolved
        if on_branch_resolved is not None:
            on_branch_resolved(entry)
        self.stats.branches_resolved += 1

        fetched = entry.fetched
        if fetched.unpredicted:
            if flags & F_CALL:
                self.ras.push(pc + 1)
            self.fetch_unit.redirect(actual, now + 1)
            return
        if actual != fetched.pred_next_pc:
            entry.mispredicted = True
            self.stats.branch_mispredicts += 1
            self._squash_after(
                entry.seq, actual, now + self._squash_penalty
            )
            self.fetch_unit.repair_ras(fetched.ras_snapshot)

    # ================================================================== #
    # Load memory phase.
    # ================================================================== #

    def _mem_phase(self, now: int) -> None:
        pending = self._pending_mem
        if not pending or pending[0][0] > now:
            return
        taint = self.taint
        ready: List[DynInstr] = []
        pop = heapq.heappop
        while pending and pending[0][0] <= now:
            _, _, entry = pop(pending)
            if not entry.squashed:
                ready.append(entry)
        if len(ready) > 1:
            ready.sort(key=_BY_SEQ)
        dcache_ports = self._dcache_ports
        dcache_used = 0
        push = heapq.heappush
        lsq = self.lsq
        memdep = self.memdep
        protection = self.protection
        load_invisible = self._hook_load_invisible
        hierarchy = self.hierarchy
        completions = self._completions
        next_cycle = now + 1
        for entry in ready:
            decision = lsq.decide_load(entry)
            action = decision.action
            if action is LoadAction.MEMORY:
                if decision.bypassed_stores and memdep.should_wait(entry.pc):
                    push(pending, (next_cycle, entry.seq, entry))
                    continue
                if dcache_used >= dcache_ports:
                    push(pending, (next_cycle, entry.seq, entry))
                    continue
                dcache_used += 1
                entry.data_obtained = True
                entry.bypassed_stores = decision.bypassed_stores or None
                invisible = (
                    load_invisible is not None and load_invisible(entry)
                )
                if taint is not None:
                    taint.exec_ctx = entry
                result = hierarchy.data_access(
                    entry.addr, now, fill=not invisible, pc=entry.pc
                )
                if invisible:
                    protection.on_invisible_load(entry, result, now)
                value = self._fast_load_value(entry)
                if taint is not None:
                    taint.exec_ctx = None
                    taint.on_load_executed(entry, from_memory=True)
                entry.result = value
                push(completions, (now + result.latency, entry.seq, entry))
            elif action is LoadAction.WAIT:
                push(pending, (next_cycle, entry.seq, entry))
            else:  # FORWARD
                entry.data_obtained = True
                entry.forwarded_from = decision.forwarded_from
                entry.bypassed_stores = decision.bypassed_stores or None
                if taint is not None:
                    taint.on_load_executed(entry, from_memory=False)
                entry.result = decision.value
                push(completions, (next_cycle, entry.seq, entry))

    def _fast_load_value(self, entry: DynInstr) -> int:
        addr = entry.addr
        if not self._priv_mode and self.program.is_privileged_addr(addr):
            entry.fault = "user load from %#x" % addr
            if not self._fwd_faulting:
                return 0
        if entry.mem_size == 1:
            return self.mem.read_byte(addr)
        return self.mem.read_word(addr)

    # ================================================================== #
    # Issue: fused select + issue over the micro-op tables.
    # ================================================================== #

    def _issue(self, now: int) -> None:
        iq = self.iq
        ready = iq._ready
        if not ready:
            return
        if not iq._ready_sorted:
            if len(ready) > 1:
                ready.sort(key=_BY_SEQ)
            iq._ready_sorted = True
        (fu_ids, latencies, flags, imms, prf_value, fus, may_issue,
         rob_entries, completions, stats) = self._issue_tables
        width = self._issue_width
        fus_used = fus._used
        if now != fus._used_cycle:
            # Inline fus._roll(now).
            for i in range(len(fus_used)):
                fus_used[i] = 0
            fus._used_cycle = now
        fus_counts = fus._counts_by_id
        can_issue = fus.can_issue_id
        rob_head = rob_entries[0] if rob_entries else None
        # Selection pass: identical decision order to IssueQueue.select
        # with the core's _may_issue veto (serializing-at-head first).
        # The FU check is inlined for pipelined units; the divider (the
        # only unit with per-slot busy state) keeps the method call.
        selected: List[DynInstr] = []
        remaining: List[DynInstr] = []
        size_drop = 0
        for entry in ready:
            if entry.squashed:
                size_drop += 1
                continue
            if len(selected) >= width:
                remaining.append(entry)
                continue
            pc = entry.pc
            fu_id = fu_ids[pc]
            if (
                (
                    fus_used[fu_id] < fus_counts[fu_id]
                    and fu_id != _FU_DIV
                    or fu_id == _FU_DIV and can_issue(fu_id, now)
                )
                and (
                    not (flags[pc] & F_SERIALIZING)
                    or rob_head is entry
                )
                and (may_issue is None or may_issue(entry, now))
            ):
                if fu_id == _FU_FP or fu_id == _FU_DIV:
                    entry.issue_penalty = fus.issue_id(
                        fu_id, now, latencies[pc]
                    )
                else:
                    # issue_penalty stays at its class default of 0.
                    fus_used[fu_id] += 1
                selected.append(entry)
                size_drop += 1
            else:
                remaining.append(entry)
        iq._ready = remaining  # filtered in order: still seq-sorted
        iq._size -= size_drop
        if not selected:
            return
        # Issue pass.
        taint = self.taint
        obs = self.obs
        obs_issue = obs.instr_issue if obs is not None else None
        pending_mem = self._pending_mem
        push = heapq.heappush
        for entry in selected:
            entry.issued = True
            entry.issue_cycle = now
            srcs = entry.phys_srcs
            n = len(srcs)
            if n == 2:
                vals = (prf_value[srcs[0]], prf_value[srcs[1]])
            elif n == 1:
                vals = (prf_value[srcs[0]],)
            elif n == 0:
                vals = ()
            else:
                vals = tuple(prf_value[s] for s in srcs)
            entry.src_vals = vals
            if taint is not None:
                taint.on_issue(entry, now)
            if obs_issue is not None:
                obs_issue(entry, now)
            pc = entry.pc
            if flags[pc] & F_LOAD:
                entry.addr = (vals[0] + imms[pc]) & U64_MASK
                push(pending_mem, (now + 1, entry.seq, entry))
            else:
                push(completions, (
                    now + latencies[pc] + entry.issue_penalty,
                    entry.seq, entry,
                ))
        n_issued = len(selected)
        stats.issued += n_issued
        self._issued_this_cycle += n_issued

    # ================================================================== #
    # Dispatch.
    # ================================================================== #

    def _dispatch(self, now: int) -> None:
        # Cheap pre-checks for the buffer head before hoisting the table
        # locals: most calls dispatch nothing (front-end pipe not yet
        # drained, fence pending, window full) and none of these reads
        # has side effects.
        buffer = self._fetch_buffer
        if not buffer:
            return
        if buffer[0].fetch_cycle + self._frontend_depth > now:
            return
        if self._fence_seq is not None:
            return
        (flags, rds, all_srcs, rat_map, ready_bits, iq_waiters,
         rob_entries, rob_capacity, iq_capacity, rename_dest, prf_free,
         on_dispatch, stats) = self._disp_tables
        iq = self.iq
        if len(rob_entries) >= rob_capacity or iq._size >= iq_capacity:
            return
        width = self._fetch_width
        depth = self._frontend_depth
        # IQ/LSQ internals rebound by squashes: read fresh each phase.
        # (_ready/_pending are stable WITHIN the phase — only select and
        # remove_squashed rebind them, and neither runs here.)
        iq_pending = iq._pending
        iq_ready = iq._ready
        lsq = self.lsq
        loads = lsq.loads
        stores = lsq.stores
        lq_capacity = lsq.lq_capacity
        sq_capacity = lsq.sq_capacity
        obs = self.obs
        obs_dispatch = obs.instr_dispatch if obs is not None else None
        count = 0
        while buffer and count < width:
            fetched = buffer[0]
            if fetched.fetch_cycle + depth > now:
                break
            if self._fence_seq is not None:
                break
            if (
                len(rob_entries) >= rob_capacity
                or iq._size >= iq_capacity
            ):
                break
            pc = fetched.pc
            rd = rds[pc]  # -1 for no dest; R0 (0) is never renamed
            if rd > 0 and not prf_free:
                break
            fl = flags[pc]
            # LSQ occupancy (inline of lsq.can_dispatch, same order).
            if fl & F_LOAD:
                if len(loads) >= lq_capacity:
                    break
            elif fl & F_STORE:
                if len(stores) >= sq_capacity:
                    break
            entry = FastDynInstr(self._next_seq, fetched, now)
            srcs = all_srcs[pc]
            n = len(srcs)
            if n == 2:
                entry.phys_srcs = (rat_map[srcs[0]], rat_map[srcs[1]])
            elif n == 1:
                entry.phys_srcs = (rat_map[srcs[0]],)
            elif n:
                entry.phys_srcs = tuple(rat_map[s] for s in srcs)
            if rd > 0:
                renamed = rename_dest(rd)
                if renamed is None:
                    break
                entry.phys_dest, entry.prev_phys = renamed
            if fl & F_MEM_BYTE:
                entry.mem_size = 1
            self._next_seq += 1
            buffer.popleft()
            rob_entries.append(entry)
            # Inline iq.insert: count unready sources, park or ready.
            outstanding = 0
            for src in entry.phys_srcs:
                if not ready_bits[src]:
                    outstanding += 1
                    w = iq_waiters.get(src)
                    if w is None:
                        iq_waiters[src] = [entry]
                    else:
                        w.append(entry)
            iq._size += 1
            if outstanding:
                iq_pending[entry] = outstanding
            else:
                iq_ready.append(entry)
                iq._ready_sorted = False
            if fl & F_LOAD:
                loads.append(entry)
            elif fl & F_STORE:
                stores.append(entry)
            if on_dispatch is not None:
                on_dispatch(entry)
            if obs_dispatch is not None:
                obs_dispatch(entry, now)
            if fl & F_SERIALIZING:
                self._fence_seq = entry.seq
            stats.dispatched += 1
            count += 1

    # ================================================================== #
    # Fetch.
    # ================================================================== #

    def _fetch(self, now: int) -> None:
        # Inline of FetchUnit.fetch with the branch test read from the
        # flags table: non-branch micro-ops (the common case) skip the
        # _predict dispatch entirely.  Same loop order, same stall/HALT/
        # taken-prediction break conditions, same predictor side effects
        # (branches still go through _predict).
        (flags, op_ids, instrs, n_instr, fu, line_available, buffer,
         append) = self._fetch_tables
        if len(buffer) >= self._fetch_cap:
            return
        # Inline fu.stalled(now), stall-cause counters included.
        if fu._halt_seen:
            return
        if fu._wait_for_resolve:
            fu.indirect_stall_cycles += 1
            return
        if now < fu._icache_ready:
            fu.icache_stall_cycles += 1
            return
        width = self._fetch_width
        count = 0
        while count < width:
            pc = fu.fetch_pc
            # Inline program.fetch(pc) (the 0 <= guard matters: reference
            # returns None for any out-of-range pc, never wraps).
            instr = instrs[pc] if 0 <= pc < n_instr else None
            if instr is None:
                break
            if not line_available(pc, now):
                break  # L1I miss: retry once the fill returns
            if flags[pc] & F_BRANCH:
                fetched = fu._predict(instr, now)
                append(fetched)
                count += 1
                fu.fetched_ops += 1
                fu.fetch_pc = fetched.pred_next_pc
                if fu._wait_for_resolve:
                    break  # unpredicted indirect target
                if fetched.pred_next_pc != pc + 1:
                    break  # taken prediction ends the fetch group
            else:
                append(FetchedOp(instr, pc, now, pc + 1))
                count += 1
                fu.fetched_ops += 1
                fu.fetch_pc = pc + 1
                if op_ids[pc] == _OPID_HALT:
                    fu._halt_seen = True
                    break  # nothing meaningful follows a halt
        if count:
            self.stats.fetched += count

    # ================================================================== #
    # Commit.
    # ================================================================== #

    def _commit(self, now: int) -> int:
        committed_now = 0
        width = self._commit_width
        (flags, op_ids, rob_entries, lsq, rat_retire, stats,
         on_commit) = self._commit_tables
        taint = self.taint
        obs = self.obs
        obs_retire = obs.instr_retire if obs is not None else None
        while committed_now < width and rob_entries:
            head = rob_entries[0]
            if not head.completed:
                break
            if head.retire_ready > now:
                break
            if head.fault is not None:
                self._commit_fault(head, now)
                committed_now += 1  # classification: progress happened
                break
            if head.phys_dest is not None and not head.bcast:
                break  # waiting for a broadcast port
            # Inline retire (same order as the reference _retire).
            pc = head.pc
            fl = flags[pc]
            rob_entries.popleft()
            if fl & _F_MEMOP:
                if fl & F_STORE:
                    self._commit_store(head)
                lsq.retire(head)
            prev = head.prev_phys
            if prev is not None:
                rat_retire(prev)
            if self._fence_seq == head.seq:
                self._fence_seq = None
            if op_ids[pc] == _OPID_HALT:
                self.halted = True
                # Drop anything fetched past the halt.
                if rob_entries:
                    self._squash_after(head.seq, 0, now + 1)
            self.committed += 1
            self._last_commit_cycle = now
            issue_cycle = head.issue_cycle
            if issue_cycle >= 0:
                # Inline stats.record_dispatch_to_issue: the bucket key
                # is the highest power of two <= latency (0 when <= 0).
                latency = issue_cycle - head.dispatch_cycle
                stats.dispatch_to_issue_sum += latency
                stats.dispatch_to_issue_count += 1
                key = (
                    0 if latency <= 0
                    else 1 << (latency.bit_length() - 1)
                )
                hist = stats.dispatch_to_issue_hist
                hist[key] = hist.get(key, 0) + 1
            if on_commit is not None:
                on_commit(head, now)
            if taint is not None:
                taint.on_commit(head)
            if obs_retire is not None:
                obs_retire(head, now)
            committed_now += 1
            if self.halted:
                break
        return committed_now

    # ================================================================== #
    # Fast-forward plumbing: table-driven twins of the reference
    # quiescence probe and run loop (same decisions, hoisted lookups).
    # ================================================================== #

    def _dispatch_blocked(self, fetched) -> bool:
        if self._fence_seq is not None:
            return True
        rob = self.rob
        if len(rob.entries) >= rob.capacity:
            return True
        iq = self.iq
        if iq._size >= iq.capacity:
            return True
        u = self.u
        pc = fetched.pc
        if u.rd[pc] > 0 and self.prf.free_count == 0:
            return True
        fl = u.flags[pc]
        lsq = self.lsq
        if fl & F_LOAD and len(lsq.loads) >= lsq.lq_capacity:
            return True
        if fl & F_STORE and len(lsq.stores) >= lsq.sq_capacity:
            return True
        return False

    def _next_interesting_cycle(self, limit: int) -> int:
        now = self.cycle
        horizon = limit
        if self.iq._ready:
            ready_horizon = self._hook_ready_horizon
            if ready_horizon is None:
                return now
            event = ready_horizon(now)
            if event is not None:
                if event <= now:
                    return now
                if event < horizon:
                    horizon = event
        completions = self._completions
        if completions:
            due = completions[0][0]
            if due <= now:
                return now
            if due < horizon:
                horizon = due
        pending = self._pending_mem
        if pending:
            due = pending[0][0]
            if due <= now:
                return now
            if due < horizon:
                horizon = due
        rob_entries = self.rob.entries
        if rob_entries:
            head = rob_entries[0]
            if head.completed:
                ready = head.retire_ready
                if ready > now:
                    if ready < horizon:
                        horizon = ready
                elif (
                    head.fault is not None
                    or head.bcast
                    or head.phys_dest is None
                ):
                    return now
        buffer = self._fetch_buffer
        if buffer:
            fetched = buffer[0]
            due = fetched.fetch_cycle + self._frontend_depth
            if due > now:
                if due < horizon:
                    horizon = due
            elif not self._dispatch_blocked(fetched):
                return now
        if len(buffer) < self._fetch_cap:
            fu = self.fetch_unit
            if not (fu._halt_seen or fu._wait_for_resolve):
                ready = fu._icache_ready
                if now < ready:
                    if ready < horizon:
                        horizon = ready
                elif self.program.fetch(fu.fetch_pc) is not None:
                    return now
        if self._has_next_event:
            event = self.protection.next_event(now)
            if event is not None:
                if event <= now:
                    return now
                if event < horizon:
                    horizon = event
        elif self._arbiter.deferred:
            # Inline of the base next_event: deferred broadcasts drain
            # every cycle, so the machine is busy right now.
            return now
        return horizon

    def _skip_to(self, target: int) -> None:
        # Reference _skip_to with the head-kind classification read from
        # the flags table instead of the instr.info property chain.
        now = self.cycle
        span = target - now
        stats = self.stats
        if len(self._fetch_buffer) < self._fetch_cap:
            self.fetch_unit.account_stalls(now, span)
        mlp_sum, mlp_cycles = self.hierarchy.offchip_profile(now, target)
        if mlp_sum:
            stats.mlp_sum += mlp_sum
            stats.mlp_cycles += mlp_cycles
        rob_entries = self.rob.entries
        cycle_class = stats.cycle_class
        if rob_entries:
            if self._flags[rob_entries[0].pc] & _F_MEMOP:
                cycle_class[CycleClass.MEMORY_STALL] += span
            else:
                cycle_class[CycleClass.BACKEND_STALL] += span
        else:
            cycle_class[CycleClass.FRONTEND_STALL] += span
        self.ff_skipped_cycles += span
        self.cycle = target
        obs = self.obs
        if obs is not None and obs.sample_due <= target:
            obs.sample(self, target)

    def run_to_commit(self, target: int, max_cycles: int) -> None:
        # Reference semantics (advance() in a loop) with the
        # per-iteration lookups hoisted, mirroring run() below.
        fast = self.fast_forward
        iq = self.iq
        step = self.step
        probe = self._next_interesting_cycle
        skip = self._skip_to
        probe_ready = self._hook_ready_horizon is not None
        while (
            not self.halted
            and self.cycle < max_cycles
            and self.committed < target
        ):
            if fast and (probe_ready or not iq._ready):
                jump = probe(max_cycles)
                if jump > self.cycle:
                    skip(jump)
                    if self.cycle >= max_cycles:
                        return
            step()

    def run(
        self,
        max_cycles: int = 5_000_000,
        deadlock_cycles: int = 100_000,
    ) -> RunOutcome:
        """Reference run semantics; loop in run_slice, hoisted."""
        wall_start = time.perf_counter()
        self.run_slice(None, max_cycles, deadlock_cycles)
        return self.finish_run(time.perf_counter() - wall_start)

    def run_slice(
        self,
        commit_target,
        max_cycles: int,
        deadlock_cycles: int = 100_000,
    ) -> bool:
        # Reference run_slice with the per-iteration lookups hoisted.
        fast = self.fast_forward
        iq = self.iq
        step = self.step
        probe = self._next_interesting_cycle
        skip = self._skip_to
        probe_ready = self._hook_ready_horizon is not None
        check_commit = commit_target is not None
        while not self.halted and self.cycle < max_cycles:
            if check_commit and self.committed >= commit_target:
                return False
            if fast and (probe_ready or not iq._ready):
                limit = self._last_commit_cycle + deadlock_cycles + 1
                if max_cycles < limit:
                    limit = max_cycles
                if self.cycle < limit:
                    target = probe(limit)
                    if target > self.cycle:
                        skip(target)
                        if self.cycle >= max_cycles:
                            break
                        if (
                            self.cycle - self._last_commit_cycle
                            > deadlock_cycles
                        ):
                            raise self._deadlock_error(deadlock_cycles)
            step()
            if self.cycle - self._last_commit_cycle > deadlock_cycles:
                raise self._deadlock_error(deadlock_cycles)
        return True
