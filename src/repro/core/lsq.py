"""Load/store queue: forwarding, speculative store bypass, and violations.

This module is the substrate for Spectre v4 (speculative store bypass): a
load whose older store has not yet computed its address *bypasses* the store
and reads stale memory.  The LSQ records which unresolved stores each load
bypassed — NDA's Bypass Restriction keeps the load's output unsafe until all
of them resolve — and squashes the load when a store resolves to an
overlapping address (the memory dependency unit of §5.2).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Set

from repro.core.rob import DynInstr


class LoadAction(enum.Enum):
    """What a load should do this cycle."""

    MEMORY = "memory"  # read from the cache hierarchy (possibly bypassing)
    FORWARD = "forward"  # take the value from an older in-flight store
    WAIT = "wait"  # blocked behind a partially overlapping older store


class LoadDecision:
    """One load's data-source decision (a per-attempt hot-path object)."""

    __slots__ = ("action", "value", "forwarded_from", "bypassed_stores")

    def __init__(
        self,
        action: LoadAction,
        value: Optional[int] = None,  # FORWARD only
        forwarded_from: Optional[int] = None,  # seq of the forwarding store
        bypassed_stores: Optional[Set[int]] = None,
    ):
        self.action = action
        self.value = value
        self.forwarded_from = forwarded_from
        self.bypassed_stores = (
            bypassed_stores if bypassed_stores is not None else set()
        )


def _overlap(addr_a: int, size_a: int, addr_b: int, size_b: int) -> bool:
    return addr_a < addr_b + size_b and addr_b < addr_a + size_a


def _contains(outer_addr, outer_size, inner_addr, inner_size) -> bool:
    return (
        outer_addr <= inner_addr
        and inner_addr + inner_size <= outer_addr + outer_size
    )


class LSQ:
    """Split load/store queues holding in-flight memory micro-ops."""

    def __init__(self, lq_entries: int, sq_entries: int):
        self.lq_capacity = lq_entries
        self.sq_capacity = sq_entries
        self.loads: List[DynInstr] = []
        self.stores: List[DynInstr] = []
        self.forwards = 0
        self.bypasses = 0
        self.violations = 0
        # Optional callable(load, store) fired on store-to-load
        # forwarding; used by the fuzzing taint oracle (repro.fuzz).
        self.taint_hook = None
        # Optional telemetry EventBus (repro.obs.bus): pure observer,
        # coexists with the taint hook.
        self.obs = None

    # ------------------------------------------------------------------ #
    # Occupancy.
    # ------------------------------------------------------------------ #

    def can_dispatch(self, entry: DynInstr) -> bool:
        if entry.is_load:
            return len(self.loads) < self.lq_capacity
        if entry.is_store:
            return len(self.stores) < self.sq_capacity
        return True

    def dispatch(self, entry: DynInstr) -> None:
        if entry.is_load:
            self.loads.append(entry)
        elif entry.is_store:
            self.stores.append(entry)

    def remove_squashed(self) -> None:
        self.loads = [e for e in self.loads if not e.squashed]
        self.stores = [e for e in self.stores if not e.squashed]

    def retire(self, entry: DynInstr) -> None:
        """Drop a committing memory op from its queue."""
        if entry.is_load:
            self.loads.remove(entry)
        elif entry.is_store:
            self.stores.remove(entry)

    # ------------------------------------------------------------------ #
    # Load execution.
    # ------------------------------------------------------------------ #

    def decide_load(self, load: DynInstr) -> LoadDecision:
        """Resolve where the load's data comes from this cycle.

        Scans older in-flight stores (youngest first).  The youngest
        overlapping resolved store wins; a fully containing one forwards,
        a partial overlap blocks.  Unresolved (address-unknown) older
        stores are *bypassed* — their seq numbers are reported so the
        caller can apply NDA's Bypass Restriction and later violation
        checks.
        """
        assert load.addr is not None
        bypassed: Set[int] = set()
        # self.stores is seq-ascending by construction (dispatch appends
        # in program order; retire/remove_squashed preserve order), so
        # youngest-first is a plain reversal — no per-call sort.
        for store in reversed(self.stores):
            if store.seq > load.seq:
                continue
            if store.addr is None:
                bypassed.add(store.seq)
                continue
            if not _overlap(store.addr, store.mem_size,
                            load.addr, load.mem_size):
                continue
            # Youngest overlapping resolved store older than the load.
            if _contains(store.addr, store.mem_size,
                         load.addr, load.mem_size):
                if store.store_data is None:
                    return LoadDecision(LoadAction.WAIT)
                value = _extract(store, load)
                self.forwards += 1
                if self.taint_hook is not None:
                    self.taint_hook(load, store)
                obs = self.obs
                if obs is not None and obs.store_forward is not None:
                    obs.store_forward(load, store)
                return LoadDecision(
                    LoadAction.FORWARD,
                    value=value,
                    forwarded_from=store.seq,
                    bypassed_stores=bypassed,
                )
            return LoadDecision(LoadAction.WAIT)
        if bypassed:
            self.bypasses += 1
        return LoadDecision(LoadAction.MEMORY, bypassed_stores=bypassed)

    # ------------------------------------------------------------------ #
    # Store resolution.
    # ------------------------------------------------------------------ #

    def check_violation(self, store: DynInstr) -> Optional[DynInstr]:
        """A store just resolved its address: find an ordering violation.

        Returns the *eldest* younger load that already obtained its value
        without seeing this store (it bypassed the store, or forwarded from
        an even older store).  The core squashes from that load.
        """
        assert store.addr is not None
        victim: Optional[DynInstr] = None
        for load in self.loads:
            if load.seq < store.seq or load.addr is None:
                continue
            if not load.data_obtained:
                continue  # never selected a data source: nothing stale yet
            if load.forwarded_from is not None and \
                    load.forwarded_from > store.seq:
                continue  # got data from a younger store: still correct
            if not _overlap(store.addr, store.mem_size,
                            load.addr, load.mem_size):
                continue
            if victim is None or load.seq < victim.seq:
                victim = load
        if victim is not None:
            self.violations += 1
        return victim

    def unresolved_store_seqs(self) -> Set[int]:
        """Seqs of stores whose address is still unknown (for NDA safety)."""
        return {s.seq for s in self.stores if s.addr is None}


def _extract(store: DynInstr, load: DynInstr) -> int:
    """Slice the load's bytes out of a containing store's data."""
    assert store.store_data is not None
    shift = 8 * (load.addr - store.addr)
    data = store.store_data >> shift
    if load.mem_size == 1:
        return data & 0xFF
    mask = (1 << (8 * load.mem_size)) - 1
    return data & mask
