"""Two-hardware-context co-residency model (SMT / shared-L2).

Two programs run co-resident and share microarchitectural state:

* ``sharing="smt"`` — one physical core, statically partitioned: each
  context gets half the fetch/issue/commit width, ROB, IQ, LQ/SQ, and
  functional units, while the BTB, RAS, direction predictor, and the
  whole L1/L2 hierarchy are shared.  A round-robin arbiter rotates which
  context's pipeline phases run first each cycle.
* ``sharing="l2"`` — two full private cores (private L1s, BTB, RAS,
  predictors) sharing one L2 cache.

Both modes share main memory, which is architecturally coherent (caches
model timing only), so the contexts can synchronize through flag words.
Select via ``SimConfig(num_contexts=2, sharing=..., engine="reference")``
and drive with :class:`SmtMachine`; the single-context path is untouched
and stays bit-identical to the golden files.
"""

from repro.smt.machine import (
    SharedState,
    SmtMachine,
    context_config,
    partitioned_core_config,
    run_pair,
)

__all__ = [
    "SharedState",
    "SmtMachine",
    "context_config",
    "partitioned_core_config",
    "run_pair",
]
