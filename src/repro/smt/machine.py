"""The two-context machine: construction, arbitration, and the run loop.

The model deliberately reuses the reference :class:`OutOfOrderCore`
unchanged: each hardware context is one core instance holding the
context's *private* state (ROB, IQ, LSQ, rename tables, fetch buffer), so
per-context squash and recovery come from the existing machinery for
free.  Sharing is injected at construction through :class:`SharedState`:
the shared objects (main memory, cache hierarchy or L2, BTB, RAS,
direction predictor) are built once and handed to both contexts.

:class:`SmtMachine` steps the contexts in lockstep on a single global
cycle number.  A deterministic round-robin arbiter rotates which context
runs its pipeline phases first each cycle — the only ordering freedom
shared structures observe — so a run is a pure function of (programs,
config) and identical runs produce identical interleavings and stats.

The idle-cycle fast-forward composes: the machine skips a span only when
*every* active context proves quiescence over it, jumping all contexts to
the earliest interesting cycle.  A quiescent context cannot touch shared
state, so the per-core quiescence proofs remain valid jointly.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.config import CoreConfig, SimConfig
from repro.core.ooo import OutOfOrderCore
from repro.core.outcome import RunOutcome
from repro.errors import ConfigError
from repro.frontend.btb import BTB
from repro.frontend.direction import make_direction_predictor
from repro.frontend.ras import RAS
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.memory import MainMemory


@dataclass
class SharedState:
    """Microarchitectural structures shared between contexts.

    Any field left ``None`` is built privately by the receiving core, so
    a ``SharedState()`` with all defaults reproduces a plain
    single-context core bit for bit.
    """

    mem: Optional[MainMemory] = None
    hierarchy: Optional[MemoryHierarchy] = None
    btb: Optional[BTB] = None
    ras: Optional[RAS] = None
    direction: Optional[object] = None


def partitioned_core_config(core: CoreConfig) -> CoreConfig:
    """One context's share of a statically partitioned SMT core.

    Widths, window entries, and functional units are halved (floor 1) —
    the even static partition of Table 3's 8-issue machine.  The physical
    register file and the BTB/RAS sizes are untouched: the former is
    amply sized for the halved ROB, the latter describe the *shared*
    front-end structures.
    """

    def half(value: int) -> int:
        return max(1, value // 2)

    return replace(
        core,
        fetch_width=half(core.fetch_width),
        issue_width=half(core.issue_width),
        commit_width=half(core.commit_width),
        rob_entries=half(core.rob_entries),
        iq_entries=half(core.iq_entries),
        lq_entries=half(core.lq_entries),
        sq_entries=half(core.sq_entries),
        num_alu=half(core.num_alu),
        num_mul=half(core.num_mul),
        num_div=half(core.num_div),
        num_fp=half(core.num_fp),
        num_mem_ports=half(core.num_mem_ports),
        num_branch=half(core.num_branch),
    )


def context_config(config: SimConfig) -> SimConfig:
    """The per-context SimConfig derived from a two-context *config*.

    SMT mode partitions the back end; shared-L2 mode keeps full private
    cores.  The derived config is single-context (each context's core is
    an ordinary core) on the reference engine.
    """
    core = (
        partitioned_core_config(config.core)
        if config.sharing == "smt" else config.core
    )
    return replace(
        config, core=core, num_contexts=1, engine="reference"
    ).validate()


class SmtMachine:
    """Two co-resident hardware contexts in lockstep.

    Parameters
    ----------
    programs:
        One :class:`Program` per context (``config.num_contexts`` of
        them).  All images are loaded into one shared main memory, so
        the programs must occupy disjoint address ranges except where
        they intentionally communicate (see ``CROSS_MAPS`` in
        :mod:`repro.attacks.common`).
    config:
        A validated two-context :class:`SimConfig`
        (``num_contexts=2``, ``engine="reference"``; the fast engine is
        rejected at SimConfig construction).
    """

    def __init__(
        self,
        programs: Sequence[Program],
        config: Optional[SimConfig] = None,
        direction_predictor: str = "tournament",
        fast_forward: bool = True,
    ):
        config = (config or SimConfig(
            num_contexts=2, engine="reference"
        )).validate()
        if config.num_contexts != len(programs):
            raise ConfigError(
                "config.num_contexts=%d but %d programs supplied"
                % (config.num_contexts, len(programs))
            )
        if config.num_contexts < 2:
            raise ConfigError(
                "SmtMachine needs num_contexts >= 2; single-context runs "
                "use make_core()/simulate()"
            )
        self.config = config
        self.fast_forward = fast_forward

        mem = MainMemory()
        ctx_cfg = context_config(config)
        if config.sharing == "smt":
            base_core = config.core
            shared = SharedState(
                mem=mem,
                hierarchy=MemoryHierarchy(config.mem),
                btb=BTB(base_core.btb_entries, base_core.btb_assoc),
                ras=RAS(base_core.ras_entries),
                direction=make_direction_predictor(
                    direction_predictor, base_core.bp_tables_bits
                ),
            )
            shareds = [shared] * len(programs)
        else:  # "l2": private cores + L1s over one L2
            first = MemoryHierarchy(config.mem)
            shareds = [SharedState(mem=mem, hierarchy=first)]
            for _ in programs[1:]:
                shareds.append(SharedState(
                    mem=mem,
                    hierarchy=MemoryHierarchy(config.mem, l2=first.l2),
                ))
        self.cores: List[OutOfOrderCore] = [
            OutOfOrderCore(
                program, ctx_cfg,
                direction_predictor=direction_predictor,
                fast_forward=fast_forward,
                ctx=index, shared=shareds[index],
            )
            for index, program in enumerate(programs)
        ]
        self.cycle = 0
        #: Rolling digest of (active-mask, leading-context) per stepped
        #: cycle — the arbiter's interleaving, pinned by determinism
        #: tests.
        self._interleave = hashlib.sha256()
        # Shared-slot routing (SMT mode only): the shared hierarchy/BTB
        # have one observer slot each, so per-context observers (taint
        # oracles, event buses) are swapped in around each context's
        # phases.  Bound lazily at run() so observers attached after
        # construction are seen.
        self._route = False

    # ------------------------------------------------------------------ #
    # Observer routing over shared structures.
    # ------------------------------------------------------------------ #

    def _bind_routes(self) -> None:
        if self.config.sharing != "smt":
            self._route = False
            return
        self._taints = [getattr(c, "taint", None) for c in self.cores]
        self._buses = [getattr(c, "obs", None) for c in self.cores]
        self._route = any(
            slot is not None for slot in self._taints + self._buses
        )

    def _enter(self, index: int) -> None:
        """Route the shared structures' observer slots to context *index*."""
        core = self.cores[index]
        hierarchy, btb = core.hierarchy, core.btb
        hierarchy.observer = self._taints[index]
        btb.observer = self._taints[index]
        hierarchy.obs = self._buses[index]
        btb.obs = self._buses[index]

    # ------------------------------------------------------------------ #
    # The lockstep run loop.
    # ------------------------------------------------------------------ #

    def _order(self) -> List[int]:
        """Round-robin arbitration: rotate which context goes first."""
        n = len(self.cores)
        start = self.cycle % n
        return [(start + i) % n for i in range(n)]

    def _ff_target(self, active, max_cycles: int,
                   deadlock_cycles: int) -> int:
        """Joint quiescence probe: the earliest cycle at which *any*
        active context can act, or ``now`` when one is busy.

        Valid jointly because a quiescent context performs no fetches,
        issues, fills, or predictor updates over the span — it cannot
        perturb the shared structures the other context's proof reads.
        """
        now = self.cycle
        target = max_cycles
        for core in active:
            if core.iq._ready and not core._ready_horizon_overridden:
                return now
            limit = core._last_commit_cycle + deadlock_cycles + 1
            if max_cycles < limit:
                limit = max_cycles
            if now >= limit:
                return now
            horizon = core._next_interesting_cycle(limit)
            if horizon <= now:
                return now
            if horizon < target:
                target = horizon
        return target

    def run(
        self,
        max_cycles: int = 5_000_000,
        deadlock_cycles: int = 100_000,
    ) -> List[RunOutcome]:
        """Run every context to HALT (or the shared cycle budget).

        Returns one :class:`RunOutcome` per context, in context order.
        A context that halts early freezes; the rest keep running.
        """
        wall_start = time.perf_counter()
        self._bind_routes()
        cores = self.cores
        route = self._route
        while self.cycle < max_cycles:
            active = [core for core in cores if not core.halted]
            if not active:
                break
            if self.fast_forward:
                target = self._ff_target(active, max_cycles, deadlock_cycles)
                if target > self.cycle:
                    for core in active:
                        core._skip_to(target)
                    self.cycle = target
                    if self.cycle >= max_cycles:
                        break
                    for core in active:
                        if (self.cycle - core._last_commit_cycle
                                > deadlock_cycles):
                            raise core._deadlock_error(deadlock_cycles)
            order = self._order()
            mask = sum(
                1 << i for i, core in enumerate(cores) if not core.halted
            )
            self._interleave.update(bytes((mask, order[0])))
            for index in order:
                core = cores[index]
                if core.halted:
                    continue
                if route:
                    self._enter(index)
                core.step()
            self.cycle += 1
            for core in active:
                if (not core.halted
                        and core.cycle - core._last_commit_cycle
                        > deadlock_cycles):
                    raise core._deadlock_error(deadlock_cycles)
        wall = time.perf_counter() - wall_start
        return [core.finish_run(wall) for core in cores]

    def interleave_digest(self) -> str:
        """Hex digest of the arbiter's interleaving so far."""
        return self._interleave.hexdigest()


def run_pair(
    programs: Sequence[Program],
    config: Optional[SimConfig] = None,
    *,
    max_cycles: int = 5_000_000,
    deadlock_cycles: int = 100_000,
    fast_forward: bool = True,
) -> List[RunOutcome]:
    """Convenience wrapper: build an :class:`SmtMachine` and run it."""
    machine = SmtMachine(programs, config, fast_forward=fast_forward)
    return machine.run(max_cycles=max_cycles, deadlock_cycles=deadlock_cycles)
