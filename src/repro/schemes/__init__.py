"""Pluggable speculative-execution protection schemes.

The :class:`ProtectionModel` interface captures the pipeline's
scheme-sensitive decision points; the registry maps kebab-case names to
model + parameter classes.  Importing this package registers the built-in
schemes in the paper's legend order:

* ``none`` — insecure OoO baseline,
* ``nda`` — the six Table 2 policies (paper's contribution),
* ``invisispec`` — the Spectre/Future comparison variants,
* ``fence-on-branch`` — the lfence-style software-mitigation analog,
  registered purely through the public API as the extensibility example.
"""

from repro.schemes.base import NoParams, ProtectionModel, SchemeParams
from repro.schemes.registry import (
    SchemeInfo,
    describe_schemes,
    make_protection,
    register_scheme,
    registered_schemes,
    scheme_info,
    schemes_markdown_table,
    unregister_scheme,
)

# Built-in scheme registration (import order = legend order).
from repro.schemes.baseline import BaselineModel
from repro.schemes.nda import NDAModel, NDAParams
from repro.schemes.invisispec import InvisiSpecModel, InvisiSpecParams
from repro.schemes.fence import FenceOnBranchModel, FenceOnBranchParams

__all__ = [
    "ProtectionModel",
    "SchemeParams",
    "NoParams",
    "SchemeInfo",
    "register_scheme",
    "unregister_scheme",
    "registered_schemes",
    "scheme_info",
    "make_protection",
    "describe_schemes",
    "schemes_markdown_table",
    "BaselineModel",
    "NDAModel",
    "NDAParams",
    "InvisiSpecModel",
    "InvisiSpecParams",
    "FenceOnBranchModel",
    "FenceOnBranchParams",
]
