"""Name-keyed registry of protection schemes.

The registry is the single point where a scheme plugs into the rest of
the platform: :func:`repro.config.config_registry` derives its sweep from
the registered variants, :class:`repro.core.ooo.OutOfOrderCore` builds its
``protection`` object via :func:`make_protection`,
:func:`repro.attacks.taxonomy.expected_leak` dispatches to the model's
security ground truth, and the CLI's ``config list`` / README's schemes
table render straight from the registered metadata.

Registering a new scheme therefore takes one call::

    from repro.schemes import ProtectionModel, SchemeParams, register_scheme

    @register_scheme
    class MyModel(ProtectionModel):
        name = "my-scheme"
        params_cls = MyParams
        description = "what it does"
        ...

after which ``SimConfig(scheme="my-scheme")`` simulates it, the attack
matrix exercises it, and its results cache under a distinct key.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, fields
from typing import Dict, Type

from repro.errors import ConfigError
from repro.schemes.base import ProtectionModel, SchemeParams

_NAME_RE = re.compile(r"^[a-z0-9]+(-[a-z0-9]+)*$")

_REGISTRY: "Dict[str, SchemeInfo]" = {}


@dataclass(frozen=True)
class SchemeInfo:
    """One registered scheme: its model class, params class, and docs."""

    name: str
    model: Type[ProtectionModel]
    params: Type[SchemeParams]
    description: str = ""


def register_scheme(model: Type[ProtectionModel], *, replace: bool = False):
    """Register *model* (usable as a class decorator); returns *model*.

    The model class provides ``name`` (kebab-case registry key),
    ``params_cls``, and ``description``.  Re-registering a name raises
    unless ``replace=True`` (useful in tests).
    """
    name = getattr(model, "name", "")
    if not name or not _NAME_RE.match(name):
        raise ConfigError(
            "scheme name %r must be non-empty kebab-case" % (name,)
        )
    if not issubclass(model, ProtectionModel):
        raise ConfigError(
            "scheme %r must subclass ProtectionModel" % name
        )
    if name in _REGISTRY and not replace:
        raise ConfigError("scheme %r is already registered" % name)
    description = model.description or (model.__doc__ or "").strip()
    description = description.splitlines()[0] if description else ""
    _REGISTRY[name] = SchemeInfo(
        name=name, model=model, params=model.params_cls,
        description=description,
    )
    return model


def unregister_scheme(name: str) -> None:
    """Remove a scheme (primarily for test teardown)."""
    _REGISTRY.pop(name, None)


def registered_schemes() -> "Dict[str, SchemeInfo]":
    """Name -> :class:`SchemeInfo` in registration order."""
    return dict(_REGISTRY)


def scheme_info(name: str) -> SchemeInfo:
    """Look up one scheme; raises :class:`ConfigError` with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            "unknown protection scheme %r (registered: %s)"
            % (name, ", ".join(sorted(_REGISTRY)) or "<none>")
        ) from None


def make_protection(core) -> ProtectionModel:
    """Build the protection model for *core* from its ``SimConfig``."""
    config = core.config
    info = scheme_info(config.scheme)
    params = config.scheme_params
    if params is None:
        params = info.params()
    return info.model(core, params)


def describe_schemes() -> str:
    """Plain-text listing for ``nda-repro config list``."""
    lines = []
    for info in _REGISTRY.values():
        names = ", ".join(name for name, _ in info.model.variants())
        lines.append("%-16s %s" % (info.name, info.description))
        lines.append("%-16s   configs: %s" % ("", names))
        params = [f.name for f in fields(info.params)]
        if params:
            lines.append(
                "%-16s   params:  %s(%s)"
                % ("", info.params.__name__, ", ".join(params))
            )
    return "\n".join(lines)


def schemes_markdown_table() -> str:
    """The README "schemes" table, generated from the live registry."""
    lines = [
        "| Scheme | Model | Parameters | Registry configs | Description |",
        "|---|---|---|---|---|",
    ]
    for info in _REGISTRY.values():
        params = ", ".join(f.name for f in fields(info.params)) or "—"
        names = ", ".join(
            "`%s`" % name for name, _ in info.model.variants()
        )
        lines.append("| `%s` | `%s` | %s | %s | %s |" % (
            info.name, info.model.__name__, params, names, info.description,
        ))
    return "\n".join(lines)
