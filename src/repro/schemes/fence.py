"""FenceOnBranch: the lfence-style software-mitigation analog.

The conservative compiler mitigation the paper benchmarks NDA against
serializes execution around speculation sources instead of controlling
data propagation.  This model implements it as two issue-stage gates:

* no micro-op may issue while an *older branch* is unresolved (the
  "lfence after every branch" rule), and
* with ``fence_loads`` (default), a load-like micro-op may issue only
  once every older ROB entry has completed (the "lfence before every
  load" rule), which also stops the branch-free chosen-code attacks
  (Meltdown/LazyFP) and speculative store bypass.

Execution still overlaps within a straight-line, branch-resolved window,
so the scheme is faster than in-order but far slower than NDA — exactly
the trade-off that motivates hardware schemes.

This scheme is intentionally registered through nothing but the public
:func:`repro.schemes.registry.register_scheme` API: it is the worked
example (see DESIGN.md) proving that a new defense needs zero changes to
the core, the config layer, the CLI, the attack matrix, or the cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rob import DynInstr
from repro.nda.safety import SafetyTracker
from repro.schemes.base import ProtectionModel, SchemeParams
from repro.schemes.registry import register_scheme


@dataclass(frozen=True)
class FenceOnBranchParams(SchemeParams):
    """FenceOnBranch tunables.

    ``fence_loads=False`` drops the second gate, modelling a literal
    "lfence after branches only" mitigation (blocks control steering but
    not chosen-code attacks or SSB).
    """

    fence_loads: bool = True


@register_scheme
class FenceOnBranchModel(ProtectionModel):
    """Serialize issue past unresolved branches (and before loads).

    The issue gates depend only on ROB/safety state, never on the cycle
    number, so the scheme is purely reactive and inherits the base
    ``next_event()``: fast-forward legality is decided entirely by the
    pipeline's own event sources.
    """

    name = "fence-on-branch"
    params_cls = FenceOnBranchParams
    description = (
        "serialize issue past unresolved branches and before loads "
        "(lfence-style software mitigation)"
    )

    def __init__(self, core, params: FenceOnBranchParams):
        super().__init__(core, params)
        # Policy-less tracker: only the unresolved-branch border is used.
        self.safety = SafetyTracker(None)

    def may_issue(self, entry: DynInstr, now: int) -> bool:
        if self.safety.guarded_by_branch(entry):
            return False
        if self.params.fence_loads and entry.is_load_like:
            for older in self.core.rob:
                if older.seq >= entry.seq:
                    break
                if not older.completed:
                    return False
        return True

    def issue_ready_horizon(self, now):
        # Both issue gates are released only by completions (an older
        # branch resolving, an older entry completing) or by squashes —
        # events the fast-forward clock already bounds via the
        # completion/memory heaps.  So when every ready entry is fenced,
        # the issue stage is provably idle until one of those fires and
        # the clock may skip; one selectable entry vetoes the skip.
        for entry in self.core.iq.ready_entries():
            if not entry.squashed and self.may_issue(entry, now):
                return now
        return None

    def on_dispatch(self, entry: DynInstr) -> None:
        self.safety.on_dispatch(entry)

    def on_branch_resolved(self, entry: DynInstr) -> None:
        self.safety.on_branch_resolved(entry)

    def on_squash(self, entry: DynInstr) -> None:
        self.safety.on_squash(entry)

    @classmethod
    def label_for(cls, params: FenceOnBranchParams) -> str:
        return "FenceOnBranch"

    @classmethod
    def expected_leak(cls, attack, params: FenceOnBranchParams) -> bool:
        if params.fence_loads:
            return False  # both gates together block every PoC
        # Branch gate alone: control-steering attacks are blocked, but
        # branch-free windows (chosen-code, SSB) still leak.  The
        # cross-context PoCs are all control-steering in the victim (the
        # transient window opens under an unresolved branch or return),
        # so both variants block them.
        return attack.access_class == "chosen-code" or attack.name == "ssb"
