"""InvisiSpec: invisible speculative loads (the comparison system of §6).

Speculative loads execute without filling the caches; once a load reaches
its visibility point it exposes (off the critical path) or validates
(blocking retirement).  The visibility rules live in
:mod:`repro.invisispec.policy`; this model owns the pending-load pool and
drives one visibility pass per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.rob import DynInstr
from repro.invisispec.policy import load_is_speculative, needs_validation
from repro.nda.safety import SafetyTracker
from repro.schemes.base import ProtectionModel, SchemeParams
from repro.schemes.registry import register_scheme


@dataclass(frozen=True)
class InvisiSpecParams(SchemeParams):
    """InvisiSpec tunables: which threat model bounds speculation."""

    #: False = Spectre model (speculative while an older branch is
    #: unresolved); True = Futuristic model (speculative until the load
    #: cannot be squashed at all).
    future: bool = False


@register_scheme
class InvisiSpecModel(ProtectionModel):
    """Invisible speculative loads with validate/expose at visibility."""

    name = "invisispec"
    params_cls = InvisiSpecParams
    description = (
        "speculative loads bypass the caches, then validate/expose "
        "(InvisiSpec, MICRO'18)"
    )

    def __init__(self, core, params: InvisiSpecParams):
        super().__init__(core, params)
        self.future = params.future
        # Policy-less tracker: only the unresolved-branch border is used.
        self.safety = SafetyTracker(None)
        self._pending: List[DynInstr] = []

    # -- visibility ---------------------------------------------------- #

    def _speculative(self, entry: DynInstr) -> bool:
        return load_is_speculative(
            entry, self.core.rob, self.safety, self.future
        )

    def load_executes_invisibly(self, entry: DynInstr) -> bool:
        return self._speculative(entry)

    def on_invisible_load(self, entry: DynInstr, access, now: int) -> None:
        entry.invisible = True
        entry.needs_validation = needs_validation(
            entry, access.l1_hit, self.core.lsq.loads
        )
        self._pending.append(entry)
        self.core.stats.invisible_loads += 1

    def load_visibility_phase(self, now: int) -> None:
        if not self._pending:
            return
        core = self.core
        still_pending: List[DynInstr] = []
        for entry in self._pending:
            if entry.squashed:
                continue  # squashed invisible loads expose nothing
            if self._speculative(entry):
                still_pending.append(entry)
                continue
            # Visibility point reached: validate (blocking) or expose.
            result = core.hierarchy.expose_fill(entry.addr, now)
            obs = core.obs
            if entry.needs_validation:
                entry.retire_ready = now + result.latency
                core.stats.validations += 1
                if obs is not None and obs.load_validate is not None:
                    obs.load_validate(entry, now, result.latency)
            else:
                core.stats.exposures += 1
                if obs is not None and obs.load_expose is not None:
                    obs.load_expose(entry, now)
        self._pending = still_pending

    def next_event(self, now: int) -> Optional[int]:
        """Veto fast-forward while any pending load can turn visible.

        Whether a pending invisible load is still speculative depends
        only on ROB/safety state, which is frozen across a quiescent
        span — so a load that is speculative now stays speculative until
        the next pipeline event, and only a load that is *already*
        non-speculative forces a per-cycle visibility pass.
        """
        for entry in self._pending:
            if not self._speculative(entry):
                return now
        return super().next_event(now)

    # -- bookkeeping --------------------------------------------------- #

    def on_dispatch(self, entry: DynInstr) -> None:
        self.safety.on_dispatch(entry)

    def on_branch_resolved(self, entry: DynInstr) -> None:
        self.safety.on_branch_resolved(entry)

    def on_store_resolved(self, entry: DynInstr) -> None:
        self.safety.on_store_resolved(entry)

    def on_squash(self, entry: DynInstr) -> None:
        self.safety.on_squash(entry)

    def after_squash(self) -> None:
        super().after_squash()
        self._pending = [e for e in self._pending if not e.squashed]

    # -- registry/UI --------------------------------------------------- #

    @classmethod
    def label_for(cls, params: InvisiSpecParams) -> str:
        return "InvisiSpec-Future" if params.future else "InvisiSpec-Spectre"

    @classmethod
    def variants(cls):
        return [
            ("invisispec-spectre", InvisiSpecParams(future=False)),
            ("invisispec-future", InvisiSpecParams(future=True)),
        ]

    @classmethod
    def expected_leak(cls, attack, params: InvisiSpecParams) -> bool:
        # InvisiSpec blocks d-cache attacks within its threat model, never
        # non-cache channels.  That split carries over to the cross-context
        # attacks: cross-d-cache and cross-ras ultimately *transmit*
        # through the d-cache (the shared RAS only steers), so the
        # invisible-fill defense blocks them, while cross-btb encodes the
        # secret in the BTB entry itself — load data is still forwarded to
        # dependents, the transient install happens, and the secret leaks.
        if attack.channel not in ("d-cache", "cross-d-cache", "cross-ras"):
            return True
        if attack.access_class == "chosen-code" or attack.name == "ssb":
            return not params.future  # -Spectre covers branches only
        return False
