"""The :class:`ProtectionModel` plug-in interface.

Every speculative-execution defense evaluated by the paper — and every
future one — touches the pipeline at the same few decision points: what
may broadcast its result tag, what may issue, whether a load's cache fill
is visible, and which bookkeeping runs on dispatch/resolve/squash/commit.
:class:`ProtectionModel` makes those points an explicit interface so that
:class:`repro.core.ooo.OutOfOrderCore` holds exactly one ``protection``
object and zero scheme conditionals.

The base class is the insecure baseline: every hook is a no-op and every
gate answers "yes".  It owns the :class:`~repro.nda.broadcast.BroadcastArbiter`
because port arbitration is shared machinery — even the unprotected core
defers a completion when all broadcast ports are busy.

Hook call sites (one pipeline cycle, reverse stage order):

=======================  ====================================================
hook                     called from
=======================  ====================================================
``may_broadcast``        writeback, before a completed op wakes dependents
``defer_broadcast``      writeback, when unsafe or port-starved
``drain_deferred``       once per cycle, retries the deferred pool
``next_event``           the idle-cycle fast-forward's quiescence check
``load_visibility_phase``once per cycle, between drain and the memory phase
``load_executes_invisibly`` memory phase, before the cache access
``on_invisible_load``    memory phase, after an invisible access
``may_issue``            issue select (AND-ed with structural readiness)
``on_dispatch``          rename/dispatch of each micro-op
``on_branch_resolved``   branch execution
``on_store_resolved``    store-address execution
``on_squash``            per squashed entry, ``after_squash`` once per squash
``on_commit``            retirement of each micro-op
``finalize_stats``       end of ``run()``
=======================  ====================================================

Schemes subclass this, set ``name``/``params_cls``/``description``, and
register with :func:`repro.schemes.registry.register_scheme`.  See
DESIGN.md ("Protection schemes as plug-ins") for the FenceOnBranch worked
example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

if TYPE_CHECKING:  # import-pure module: the core imports this package
    from repro.core.rob import DynInstr
    from repro.stats.counters import PipelineStats


@dataclass(frozen=True)
class SchemeParams:
    """Base class for per-scheme parameter blocks.

    Subclasses are frozen dataclasses; every field lands in
    :meth:`repro.config.SimConfig.to_dict` and therefore in the engine's
    cache key, so two schemes (or two parameterizations of one scheme)
    can never alias each other's cached results.
    """


@dataclass(frozen=True)
class NoParams(SchemeParams):
    """For schemes without tunables."""


class ProtectionModel:
    """One protection scheme's behavior at the pipeline's decision points.

    Instances are per-core and per-run: ``core`` is the owning
    :class:`~repro.core.ooo.OutOfOrderCore` (fully constructed except for
    ``core.protection`` itself), ``params`` the scheme's parameter block.
    """

    #: Registry key (kebab-case).  Subclasses must override.
    name: str = ""
    #: Parameter dataclass for this scheme.
    params_cls = NoParams
    #: One-line description shown by ``nda-repro config list`` / README.
    description: str = ""

    def __init__(self, core, params: SchemeParams):
        # Deferred import: this module must stay import-pure because the
        # core package itself imports repro.schemes at load time.
        from repro.nda.broadcast import BroadcastArbiter

        self.core = core
        self.params = params
        cc = core.config.core
        self.arbiter = BroadcastArbiter(cc.issue_width, cc.nda_broadcast_delay)

    # ------------------------------------------------------------------ #
    # Broadcast gating (NDA's "when may a completed op wake dependents").
    # ------------------------------------------------------------------ #

    def may_broadcast(self, entry: DynInstr, head_seq: Optional[int]) -> bool:
        """May *entry* broadcast its result tag this cycle?"""
        return True

    def defer_broadcast(self, entry: DynInstr) -> None:
        """Queue a completed entry that could not broadcast."""
        self.arbiter.defer(entry)

    def drain_deferred(
        self,
        now: int,
        ports_used: int,
        head_seq: Optional[int],
        broadcast: Callable[[DynInstr, int], None],
    ) -> int:
        """Retry the deferred pool; returns the number broadcast.

        *broadcast* takes ``(entry, now)`` so the core can pass a bound
        method instead of allocating a closure every cycle; the per-drain
        adapters below are only built when the pool is non-empty.  Also
        syncs the arbiter's counters into the core's stats whenever they
        can change, so sampled windows see up-to-date values.
        """
        arbiter = self.arbiter
        if not arbiter.deferred:
            return 0
        done = arbiter.drain(
            now,
            ports_used,
            lambda e: self.may_broadcast(e, head_seq),
            lambda e: broadcast(e, now),
        )
        stats = self.core.stats
        stats.deferred_broadcasts = arbiter.deferred_broadcasts
        stats.broadcast_port_conflicts = arbiter.port_conflicts
        return done

    def next_event(self, now: int) -> Optional[int]:
        """Earliest future cycle at which this scheme may act on its own.

        Consulted by the core's idle-cycle fast-forward once per
        quiescence check (see DESIGN.md, "The event-driven clock").
        Return values:

        * ``None`` — the scheme is purely reactive right now: it will do
          nothing until some other pipeline event (a completion, a memory
          response, a fetch redirect) happens first.
        * a cycle number — the scheme may act at that cycle, and the
          clock must not skip past it.  Returning ``now`` (or anything
          ``<= now``) vetoes fast-forwarding for this cycle.

        Implementations may rely on the span between ``now`` and the
        returned cycle being quiescent: nothing completes, issues,
        dispatches, commits, fetches, or squashes in between, so any
        state derived from the ROB/LSQ/safety tracker is frozen.

        The base implementation is conservative about the only
        time-driven machinery it owns, the deferred-broadcast pool: any
        deferred entry vetoes skipping.  Schemes that add their own
        time-driven or per-cycle behavior (e.g. a visibility phase) MUST
        override this and either veto or bound their next action; purely
        reactive schemes inherit a correct default.
        """
        return now if self.arbiter.deferred else None

    # ------------------------------------------------------------------ #
    # Issue gating (fence-style schemes).
    # ------------------------------------------------------------------ #

    def may_issue(self, entry: DynInstr, now: int) -> bool:
        """May *entry* leave the issue queue this cycle?"""
        return True

    def issue_ready_horizon(self, now: int) -> Optional[int]:
        """May the issue stage act while the ready pool is non-empty?

        Consulted by the idle-cycle fast-forward *only* when the issue
        queue's ready pool is non-empty (an empty pool needs no scheme
        opinion).  Same return contract as :meth:`next_event`: ``None``
        means no ready entry can issue until some other tracked event
        source fires first, so the clock may skip; any cycle ``<= now``
        vetoes skipping.

        The base implementation vetoes unconditionally — a ready entry
        might issue any cycle as far as the base scheme knows.  A scheme
        whose :meth:`may_issue` gate can stall *every* ready entry for
        long spans (e.g. FenceOnBranch) should override this to return
        ``None`` when all ready entries are currently vetoed, PROVIDED
        each veto is released only by events the clock already tracks
        (completions, memory responses, deferred broadcasts, its own
        ``next_event``).  The override must depend only on machine state,
        never on ``now`` itself: the fast-forward relies on a ``None``
        answer staying ``None`` across the whole skipped span.
        """
        return now

    # ------------------------------------------------------------------ #
    # Load visibility (InvisiSpec-style schemes).
    # ------------------------------------------------------------------ #

    def load_executes_invisibly(self, entry: DynInstr) -> bool:
        """Should this load's access leave the cache hierarchy untouched?"""
        return False

    def on_invisible_load(self, entry: DynInstr, access, now: int) -> None:
        """An invisible access happened; *access* is the hierarchy result."""

    def load_visibility_phase(self, now: int) -> None:
        """Once per cycle: advance loads toward their visibility point."""

    # ------------------------------------------------------------------ #
    # Pipeline event bookkeeping.
    # ------------------------------------------------------------------ #

    def on_dispatch(self, entry: DynInstr) -> None:
        """A micro-op entered the ROB/IQ/LSQ."""

    def on_branch_resolved(self, entry: DynInstr) -> None:
        """A branch computed its direction/target."""

    def on_store_resolved(self, entry: DynInstr) -> None:
        """A store computed its address."""

    def on_squash(self, entry: DynInstr) -> None:
        """One entry was squashed (called youngest-first)."""

    def after_squash(self) -> None:
        """A squash finished; drop scheme state for squashed entries."""
        self.arbiter.remove_squashed()

    def on_commit(self, entry: DynInstr, now: int) -> None:
        """A micro-op retired architecturally."""

    def finalize_stats(self, stats: PipelineStats) -> None:
        """End of run: fold scheme counters into the final stats."""
        stats.deferred_broadcasts = self.arbiter.deferred_broadcasts
        stats.broadcast_port_conflicts = self.arbiter.port_conflicts

    # ------------------------------------------------------------------ #
    # Registry/UI classmethods (no core instance involved).
    # ------------------------------------------------------------------ #

    @classmethod
    def label_for(cls, params: SchemeParams) -> str:
        """Human-readable legend label for this parameterization."""
        return cls.name

    @classmethod
    def variants(cls) -> "List[Tuple[str, SchemeParams]]":
        """``(config_name, params)`` presets to expose in the canonical
        :func:`repro.config.config_registry` sweep (legend order)."""
        return [(cls.name, cls.params_cls())]

    @classmethod
    def expected_leak(cls, attack, params: SchemeParams) -> bool:
        """Ground truth: does *attack* (an AttackInfo) leak under *params*?

        Conservative default: an unknown scheme is assumed broken until
        its model overrides this.
        """
        return True
