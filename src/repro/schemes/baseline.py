"""The insecure out-of-order baseline ("OoO" in every figure)."""

from __future__ import annotations

from repro.schemes.base import NoParams, ProtectionModel, SchemeParams
from repro.schemes.registry import register_scheme


@register_scheme
class BaselineModel(ProtectionModel):
    """Unrestricted speculation: broadcast at completion (insecure baseline).

    Purely reactive — it inherits the base ``next_event()`` (anything in
    the deferred pool is port-starved and retries every cycle; otherwise
    the scheme never initiates work), so the core's idle-cycle
    fast-forward is fully enabled under this scheme.
    """

    name = "none"
    params_cls = NoParams
    description = (
        "unrestricted speculation; every attack PoC leaks (paper baseline)"
    )

    @classmethod
    def label_for(cls, params: SchemeParams) -> str:
        return "OoO"

    @classmethod
    def variants(cls):
        # Registry/CLI name "ooo" predates the scheme registry; keep it.
        return [("ooo", NoParams())]

    @classmethod
    def expected_leak(cls, attack, params: SchemeParams) -> bool:
        return True
