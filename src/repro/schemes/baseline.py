"""The insecure out-of-order baseline ("OoO" in every figure)."""

from __future__ import annotations

from repro.schemes.base import NoParams, ProtectionModel, SchemeParams
from repro.schemes.registry import register_scheme


@register_scheme
class BaselineModel(ProtectionModel):
    """Unrestricted speculation: broadcast at completion (insecure baseline)."""

    name = "none"
    params_cls = NoParams
    description = (
        "unrestricted speculation; every attack PoC leaks (paper baseline)"
    )

    @classmethod
    def label_for(cls, params: SchemeParams) -> str:
        return "OoO"

    @classmethod
    def variants(cls):
        # Registry/CLI name "ooo" predates the scheme registry; keep it.
        return [("ooo", NoParams())]

    @classmethod
    def expected_leak(cls, attack, params: SchemeParams) -> bool:
        return True
