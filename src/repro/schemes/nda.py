"""NDA: deferred tag broadcast under a Table 2 policy (the paper's scheme).

The model composes the pre-existing NDA machinery: a
:class:`~repro.nda.safety.SafetyTracker` maintains the unresolved
branch/store borders, and the inherited
:class:`~repro.nda.broadcast.BroadcastArbiter` holds completed-but-unsafe
results until they turn safe (paying the optional Fig. 9e logic delay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import NDAPolicyName
from repro.core.rob import DynInstr
from repro.nda.policy import policy_for
from repro.nda.safety import SafetyTracker
from repro.schemes.base import ProtectionModel, SchemeParams
from repro.schemes.registry import register_scheme

_LABELS = {
    NDAPolicyName.PERMISSIVE: "Permissive",
    NDAPolicyName.PERMISSIVE_BR: "Permissive+BR",
    NDAPolicyName.STRICT: "Strict",
    NDAPolicyName.STRICT_BR: "Strict+BR",
    NDAPolicyName.LOAD_RESTRICTION: "Restricted Loads",
    NDAPolicyName.FULL_PROTECTION: "Full Protection",
}


@dataclass(frozen=True)
class NDAParams(SchemeParams):
    """NDA tunables: which Table 2 row to enforce."""

    policy: NDAPolicyName = NDAPolicyName.PERMISSIVE


@register_scheme
class NDAModel(ProtectionModel):
    """Defer result broadcast until the producing micro-op is safe (§5)."""

    name = "nda"
    params_cls = NDAParams
    description = (
        "defer tag broadcast until safe under a Table 2 policy (NDA, §5)"
    )

    def __init__(self, core, params: NDAParams):
        super().__init__(core, params)
        self.policy = policy_for(params.policy)
        self.safety = SafetyTracker(self.policy)

    def may_broadcast(self, entry: DynInstr, head_seq: Optional[int]) -> bool:
        return self.safety.is_safe(entry, head_seq)

    def next_event(self, now: int) -> Optional[int]:
        """Precise fast-forward horizon for the deferred pool.

        An *unsafe* deferred entry turns safe only through a pipeline
        event (branch/store resolution, a commit moving the ROB head),
        so it never bounds a quiescent span on its own.  A safe entry
        must broadcast at ``safe_cycle + extra_delay`` — or immediately,
        if it is still unstamped (the next drain stamps it) or its delay
        already elapsed (it was port-limited).
        """
        deferred = self.arbiter.deferred
        if not deferred:
            return None
        head = self.core.rob.head
        head_seq = head.seq if head is not None else None
        delay = self.arbiter.extra_delay
        is_safe = self.safety.is_safe
        horizon: Optional[int] = None
        for entry in deferred:
            if not is_safe(entry, head_seq):
                continue
            stamp = entry.safe_cycle
            if stamp < 0:
                return now
            due = stamp + delay
            if due <= now:
                return now
            if horizon is None or due < horizon:
                horizon = due
        return horizon

    def on_dispatch(self, entry: DynInstr) -> None:
        self.safety.on_dispatch(entry)

    def on_branch_resolved(self, entry: DynInstr) -> None:
        self.safety.on_branch_resolved(entry)

    def on_store_resolved(self, entry: DynInstr) -> None:
        self.safety.on_store_resolved(entry)

    def on_squash(self, entry: DynInstr) -> None:
        self.safety.on_squash(entry)

    @classmethod
    def label_for(cls, params: NDAParams) -> str:
        return _LABELS[params.policy]

    @classmethod
    def variants(cls):
        return [
            (policy.value, NDAParams(policy=policy))
            for policy in NDAPolicyName
        ]

    @classmethod
    def expected_leak(cls, attack, params: NDAParams) -> bool:
        policy = policy_for(params.policy)
        if attack.access_class == "chosen-code":
            # Only the load-restriction family blocks chosen-code attacks.
            return not policy.blocks_chosen_code
        if attack.name == "ssb":
            # Bypass Restriction (or load restriction) is required.
            return not policy.blocks_ssb
        if attack.name == "gpr_steering":
            # Register-resident secrets need strict propagation (§4.2);
            # permissive and load restriction leave GPRs exposed.
            return not policy.protects_gprs
        # All other control-steering attacks are blocked — including the
        # cross-context channels (cross-d-cache / cross-btb / cross-ras):
        # NDA restricts the *victim's* wrong-path data propagation at the
        # source, so it does not matter that the receiver runs on another
        # hardware context.
        return False
