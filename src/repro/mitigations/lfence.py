"""The ``lfence`` hardening pass (§3.2's "improved lfence instructions").

Inserts a speculation barrier (our ``FENCE``, which blocks dispatch of
younger micro-ops until it retires) on **both outcomes of every
conditional branch**: at the fall-through instruction and at the taken
target.  No instruction after a conditional branch can then execute before
the branch retires, which closes every control-steering window — at a
price the paper's §3.2 calls out, and which the comparison benchmark
measures against NDA.

The pass reproduces the paper's two criticisms of this defense family:

* it must be applied to every binary (here: the pass must *run* on the
  program; unmodified programs stay vulnerable), and
* it blocks only the technique it targets: SSB needs no branch, and
  chosen-code attacks (Meltdown/LazyFP) need no *mispredicted* branch, so
  both still leak on hardened binaries (see ``tests/test_mitigations.py``).

A note on Retpoline: the paper's other software mitigation retargets x86's
stack-based ``ret``.  This ISA is link-register based (ARM-style), where
ret-trampolines would clobber the live link register; real AArch64 uses
different v2 mitigations for the same reason.  Indirect-branch hardening
is therefore out of scope for the rewriting passes, documented rather than
approximated.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.mitigations.rewrite import insert_instructions


def harden_lfence(
    program: Program, allow_indirect: bool = False
) -> Program:
    """Return a copy of *program* with fences guarding conditional branches."""
    insertions: Dict[int, List[Instr]] = {}

    def guard(pc: int) -> None:
        if pc not in insertions:
            insertions[pc] = [Instr(Opcode.FENCE)]

    for pc, instr in enumerate(program.instrs):
        if instr.info.is_conditional:
            guard(pc + 1)  # fall-through path
            guard(instr.target)  # taken path
    return insert_instructions(
        program, insertions,
        allow_indirect=allow_indirect,
        name_suffix="+lfence",
    )


def count_fences(program: Program) -> int:
    """Number of FENCE micro-ops in *program* (for tests and reports)."""
    return sum(1 for i in program.instrs if i.op is Opcode.FENCE)
