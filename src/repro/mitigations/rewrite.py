"""Binary-rewriting engine for software mitigation passes.

The paper's §3.2 surveys software defenses (improved ``lfence`` insertion,
speculative load hardening, Retpoline) and argues they are per-technique
patches that must be compiled into every binary.  This package implements
such passes *as program transformations* over the micro-op ISA so their
security and cost can be measured on the same simulator as NDA.

The engine inserts instructions before chosen PCs and relocates every
static branch target and the fault handler.  **Indirect targets held in
data memory cannot be relocated** — exactly the limitation real binary
rewriting has — so passes refuse programs whose indirect branches they
would break unless the caller opts in.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import AssemblyError
from repro.isa.instruction import Instr
from repro.isa.program import Program


def clone_instr(instr: Instr) -> Instr:
    """Fresh, unlinked copy of a static instruction."""
    rs1 = instr.srcs[0] if len(instr.srcs) >= 1 else None
    rs2 = instr.srcs[1] if len(instr.srcs) >= 2 else None
    return Instr(
        instr.op,
        rd=instr.rd,
        rs1=rs1,
        rs2=rs2,
        imm=instr.imm,
        target=instr.target,
    )


def has_indirect_branches(program: Program) -> bool:
    """Does the program contain branches whose targets live in registers?

    (``RET`` is exempt: its target is a return address produced by a
    ``CALL`` *after* rewriting, so it relocates automatically.)
    """
    return any(
        instr.info.is_indirect and not instr.info.is_ret
        for instr in program.instrs
    )


def insert_instructions(
    program: Program,
    insertions: Dict[int, List[Instr]],
    allow_indirect: bool = False,
    name_suffix: str = "+rewritten",
) -> Program:
    """Insert ``insertions[pc]`` before original instruction *pc*.

    All static branch targets and the fault handler are relocated.  Raises
    :class:`~repro.errors.AssemblyError` for programs with register-indirect
    branches unless *allow_indirect* is set (the caller then guarantees no
    code address ever flows through data).
    """
    if not allow_indirect and has_indirect_branches(program):
        raise AssemblyError(
            "program %r has indirect branches whose targets cannot be "
            "relocated; pass allow_indirect=True only if no code address "
            "is materialized in data or registers" % program.name
        )
    for pc in insertions:
        if not 0 <= pc <= len(program.instrs):
            raise AssemblyError("insertion point %d out of range" % pc)

    # First pass: compute the relocation map old_pc -> new_pc.
    relocation: Dict[int, int] = {}
    new_pc = 0
    for old_pc in range(len(program.instrs)):
        new_pc += len(insertions.get(old_pc, ()))
        relocation[old_pc] = new_pc
        new_pc += 1
    relocation[len(program.instrs)] = new_pc  # one-past-the-end

    # Second pass: emit, fixing targets.
    new_instrs: List[Instr] = []
    for old_pc, instr in enumerate(program.instrs):
        for inserted in insertions.get(old_pc, ()):
            new_instrs.append(clone_instr(inserted))
        fixed = clone_instr(instr)
        if fixed.target is not None:
            fixed.target = relocation[instr.target]
        new_instrs.append(fixed)

    handler = program.fault_handler
    if handler is not None:
        handler = relocation[handler]
    return Program(
        new_instrs,
        data=dict(program.data),
        privileged=program.privileged,
        msrs=dict(program.msrs),
        fault_handler=handler,
        initial_regs=dict(program.initial_regs),
        name=program.name + name_suffix,
    )


def static_overhead(original: Program, hardened: Program) -> float:
    """Fractional static code-size growth of a pass."""
    return (len(hardened) - len(original)) / len(original)
