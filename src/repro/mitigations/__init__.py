"""Software mitigation passes (§3.2's comparison points for NDA)."""

from repro.mitigations.lfence import count_fences, harden_lfence
from repro.mitigations.rewrite import (
    clone_instr,
    has_indirect_branches,
    insert_instructions,
    static_overhead,
)

__all__ = [
    "count_fences",
    "harden_lfence",
    "clone_instr",
    "has_indirect_branches",
    "insert_instructions",
    "static_overhead",
]
