"""SMARTS-style simulation sampling (§6.1 methodology).

The paper samples SPEC execution with the SMARTS methodology: many short
measurement windows, each preceded by warm-up, aggregated with 95%
confidence intervals.  Their checkpoints come from real-hardware snapshots;
ours come from the deterministic workload generator — each *seed* is a
checkpoint.  A sample runs one generated program, discards the first
``warmup`` committed instructions (caches, predictors, and queues warm up
during them) and measures the next ``measure`` instructions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Callable, List, Optional

from repro.config import SimConfig
from repro.core.inorder import InOrderCore
from repro.core import make_core
from repro.errors import SimulationError
from repro.isa.program import Program
from repro.stats.counters import PipelineStats

# Two-sided 95% t-distribution critical values by degrees of freedom.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 15: 2.131, 20: 2.086,
    30: 2.042, 60: 2.000,
}


def t95(dof: int) -> float:
    """95% two-sided Student-t critical value."""
    if dof <= 0:
        return float("inf")
    candidates = [k for k in _T95 if k <= dof]
    if not candidates:
        return _T95[1]
    return _T95[max(candidates)]


def stats_delta(end: PipelineStats, start: PipelineStats) -> PipelineStats:
    """Back-compat alias for :meth:`PipelineStats.delta`."""
    return end.delta(start)


def snapshot(stats: PipelineStats) -> PipelineStats:
    """Back-compat alias for :meth:`PipelineStats.snapshot`."""
    return stats.snapshot()


@dataclass
class Sample:
    """One measurement window."""

    seed: int
    window: PipelineStats

    @property
    def cpi(self) -> float:
        return self.window.cpi


@dataclass
class SampledRun:
    """Aggregated samples for one (benchmark, config) pair."""

    label: str
    benchmark: str
    samples: List[Sample]

    @property
    def cpis(self) -> List[float]:
        return [sample.cpi for sample in self.samples]

    @property
    def mean_cpi(self) -> float:
        cpis = self.cpis
        return sum(cpis) / len(cpis)

    @property
    def ci95(self) -> float:
        """Half-width of the 95% confidence interval of the mean CPI."""
        cpis = self.cpis
        n = len(cpis)
        if n < 2:
            return 0.0
        mean = self.mean_cpi
        variance = sum((c - mean) ** 2 for c in cpis) / (n - 1)
        return t95(n - 1) * math.sqrt(variance / n)

    def aggregate(self) -> PipelineStats:
        """Sum of all measurement windows (for breakdown/parallelism figs)."""
        total = PipelineStats()
        for sample in self.samples:
            window = sample.window
            for field_info in fields(PipelineStats):
                name = field_info.name
                value = getattr(window, name)
                if isinstance(value, dict):
                    merged = getattr(total, name)
                    for key, item in value.items():
                        merged[key] = merged.get(key, 0) + item
                else:
                    setattr(total, name, getattr(total, name) + value)
        return total


def run_window(
    program: Program,
    config: SimConfig,
    warmup: int,
    measure: int,
    in_order: bool = False,
    max_cycles: int = 30_000_000,
    fast_forward: bool = True,
) -> PipelineStats:
    """Run *program*, returning the counters of the measurement window.

    Window boundaries are committed-instruction counts and fast-forward
    jumps commit nothing, so windows are bit-identical with the jump
    enabled (``fast_forward=False`` exists for the equivalence tests).
    """
    core = InOrderCore(program, config) if in_order \
        else make_core(program, config, fast_forward=fast_forward)
    start: Optional[PipelineStats] = None
    # Two run_to_commit legs replace the old per-advance() Python loop;
    # the cores run the identical advance sequence with the boundary
    # tests hoisted into the core's own (much cheaper) driver loop, so
    # the window counters are bit-identical to the historical loop.
    core.run_to_commit(warmup, max_cycles)
    if core.committed >= warmup:
        core.stats.cycles = core.cycle
        core.stats.committed = core.committed
        start = core.stats.snapshot()
        core.run_to_commit(warmup + measure, max_cycles)
    if start is None:
        raise SimulationError(
            "program %s halted after %d instructions, before the %d-"
            "instruction warm-up finished" %
            (program.name, core.committed, warmup)
        )
    core.stats.cycles = core.cycle
    core.stats.committed = core.committed
    window = core.stats.delta(start)
    if window.committed == 0:
        raise SimulationError("empty measurement window for %s" % program.name)
    return window


def smarts_sample(
    make_program: Callable[[int], Program],
    config: SimConfig,
    label: str,
    benchmark: str,
    samples: int = 3,
    warmup: int = 2_000,
    measure: int = 8_000,
    in_order: bool = False,
    seed0: int = 0,
) -> SampledRun:
    """SMARTS-style sampling: one window per seeded checkpoint."""
    collected = []
    for index in range(samples):
        seed = seed0 + index
        program = make_program(seed)
        window = run_window(
            program, config, warmup, measure, in_order=in_order
        )
        collected.append(Sample(seed=seed, window=window))
    return SampledRun(label=label, benchmark=benchmark, samples=collected)
