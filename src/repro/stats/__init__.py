"""Statistics: counters, sampling methodology, and report rendering.

``repro.stats.sampling`` is intentionally not re-exported here: it imports
the cores (which themselves use ``repro.stats.counters``), so pulling it
into the package root would create an import cycle.  Import it directly::

    from repro.stats.sampling import smarts_sample
"""

from repro.stats.counters import CycleClass, PipelineStats
from repro.stats.report import render_histogram, render_series, render_table

__all__ = [
    "CycleClass",
    "PipelineStats",
    "render_histogram",
    "render_series",
    "render_table",
]
