"""Pipeline statistics collected during simulation.

Everything the paper's evaluation section reports is derived from these
counters: CPI (Fig. 7), the four-way cycle breakdown (Fig. 9a), MLP and ILP
(Fig. 9b/9c), and dispatch-to-issue latency (Fig. 9d).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List


class CycleClass:
    """Labels for the Fig. 9a breakdown."""

    COMMIT = "commit"
    MEMORY_STALL = "memory_stall"
    BACKEND_STALL = "backend_stall"
    FRONTEND_STALL = "frontend_stall"

    ALL = (COMMIT, MEMORY_STALL, BACKEND_STALL, FRONTEND_STALL)


@dataclass
class PipelineStats:
    """Mutable counter block owned by one core instance."""

    cycles: int = 0
    committed: int = 0
    fetched: int = 0
    dispatched: int = 0
    issued: int = 0
    squashes: int = 0
    squashed_ops: int = 0
    branch_mispredicts: int = 0
    branches_resolved: int = 0
    memory_violations: int = 0
    faults: int = 0
    # Fig 9a cycle classification.
    cycle_class: Dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in CycleClass.ALL}
    )
    # Fig 9c ILP: issued micro-ops on cycles with >= 1 issue.
    ilp_sum: int = 0
    ilp_cycles: int = 0
    # Fig 9b MLP: outstanding off-chip misses on cycles with >= 1.
    mlp_sum: int = 0
    mlp_cycles: int = 0
    # Fig 9d dispatch-to-issue latency over committed micro-ops: mean plus
    # a power-of-two bucketed histogram (bucket key = lower bound).
    dispatch_to_issue_sum: int = 0
    dispatch_to_issue_count: int = 0
    dispatch_to_issue_hist: Dict[int, int] = field(default_factory=dict)
    # NDA accounting.
    deferred_broadcasts: int = 0
    broadcast_port_conflicts: int = 0
    # InvisiSpec accounting.
    invisible_loads: int = 0
    validations: int = 0
    exposures: int = 0
    # Host-side measurement of the run itself, filled in by ``run()``.
    # These describe the *simulator's* speed, not simulated state, so
    # they are nondeterministic and excluded from every bit-identity
    # comparison (golden tests, fast-forward equivalence).
    sim_wall_seconds: float = 0.0
    kilo_cycles_per_sec: float = 0.0

    # ------------------------------------------------------------------ #
    # Derived metrics.
    # ------------------------------------------------------------------ #

    @property
    def cpi(self) -> float:
        return self.cycles / self.committed if self.committed else float("inf")

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def ilp(self) -> float:
        """Average issue parallelism over busy-issue cycles (Fig 9c)."""
        return self.ilp_sum / self.ilp_cycles if self.ilp_cycles else 0.0

    @property
    def mlp(self) -> float:
        """Average outstanding off-chip misses when >= 1 outstanding
        (Chou et al. definition, Fig 9b)."""
        return self.mlp_sum / self.mlp_cycles if self.mlp_cycles else 0.0

    def record_dispatch_to_issue(self, latency: int) -> None:
        self.dispatch_to_issue_sum += latency
        self.dispatch_to_issue_count += 1
        bucket = 0
        while (1 << (bucket + 1)) <= latency:
            bucket += 1
        key = 0 if latency <= 0 else (1 << bucket)
        hist = self.dispatch_to_issue_hist
        hist[key] = hist.get(key, 0) + 1

    @property
    def mean_dispatch_to_issue(self) -> float:
        if not self.dispatch_to_issue_count:
            return 0.0
        return self.dispatch_to_issue_sum / self.dispatch_to_issue_count

    @property
    def mispredict_rate(self) -> float:
        if not self.branches_resolved:
            return 0.0
        return self.branch_mispredicts / self.branches_resolved

    def classify_cycle(self, label: str) -> None:
        self.cycle_class[label] += 1

    def breakdown_fractions(self) -> Dict[str, float]:
        """Cycle-class shares, summing to 1.0 (over classified cycles)."""
        total = sum(self.cycle_class.values())
        if not total:
            return {name: 0.0 for name in CycleClass.ALL}
        return {
            name: count / total for name, count in self.cycle_class.items()
        }

    def snapshot(self) -> "PipelineStats":
        """Independent copy of the counter block (dicts deep-copied)."""
        copy = PipelineStats()
        for info in fields(PipelineStats):
            value = getattr(self, info.name)
            setattr(
                copy, info.name,
                dict(value) if isinstance(value, dict) else value,
            )
        return copy

    def delta(self, start: "PipelineStats") -> "PipelineStats":
        """Counters accumulated since *start* (a snapshot of this core)."""
        delta = PipelineStats()
        for info in fields(PipelineStats):
            name = info.name
            end_value = getattr(self, name)
            start_value = getattr(start, name)
            if isinstance(end_value, dict):
                setattr(
                    delta, name,
                    {k: end_value[k] - start_value.get(k, 0)
                     for k in end_value},
                )
            else:
                setattr(delta, name, end_value - start_value)
        return delta

    def to_dict(self) -> Dict:
        """JSON-serializable form (dict keys become strings)."""
        out: Dict = {}
        for info in fields(self):
            value = getattr(self, info.name)
            if isinstance(value, dict):
                out[info.name] = {str(k): v for k, v in value.items()}
            else:
                out[info.name] = value
        return out

    @classmethod
    def from_dict(cls, payload: Dict) -> "PipelineStats":
        """Inverse of :meth:`to_dict`; integer dict keys are restored."""
        stats = cls()
        for info in fields(cls):
            if info.name not in payload:
                continue
            value = payload[info.name]
            if isinstance(value, dict):
                restored = {}
                for key, item in value.items():
                    if isinstance(key, str) and key.lstrip("-").isdigit():
                        key = int(key)
                    restored[key] = item
                setattr(stats, info.name, restored)
            else:
                setattr(stats, info.name, value)
        return stats

    def summary(self) -> Dict[str, float]:
        """Flat dict of the headline metrics (used by reports and tests)."""
        out = {
            "cycles": float(self.cycles),
            "committed": float(self.committed),
            "cpi": self.cpi,
            "ipc": self.ipc,
            "ilp": self.ilp,
            "mlp": self.mlp,
            "dispatch_to_issue": self.mean_dispatch_to_issue,
            "mispredict_rate": self.mispredict_rate,
            "squashes": float(self.squashes),
            "sim_wall_seconds": self.sim_wall_seconds,
            "kilo_cycles_per_sec": self.kilo_cycles_per_sec,
        }
        for name, count in self.cycle_class.items():
            out["cycles_" + name] = float(count)
        return out
