"""Plain-text rendering of tables and figure data.

Everything the harness produces is a list of rows; these helpers format
them the way the paper's tables/figures read, so benchmark output can be
compared against EXPERIMENTS.md side by side.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Monospace table with column alignment."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return "%.3f" % cell
    return str(cell)


def render_series(
    name: str, xs: Sequence[object], ys: Sequence[object],
    x_label: str = "x", y_label: str = "y",
) -> str:
    """A figure data series as two aligned columns."""
    rows = list(zip(xs, ys))
    return render_table((x_label, y_label), rows, title=name)


def render_histogram(
    name: str,
    values: Dict[int, int],
    width: int = 50,
) -> str:
    """ASCII bar rendering used by the attack benchmarks (Fig. 4/8)."""
    if not values:
        return name + ": (empty)"
    peak = max(values.values()) or 1
    lines = [name]
    for key in sorted(values):
        bar = "#" * max(1, int(width * values[key] / peak))
        lines.append("%6s | %s %d" % (key, bar, values[key]))
    return "\n".join(lines)
