"""``nda-repro`` command-line front-end.

Subcommands::

    nda-repro table3                 # print the simulated machine
    nda-repro attack spectre_v1 --config permissive
    nda-repro matrix                 # full security matrix (Tables 1/2)
    nda-repro matrix --configs ooo strict fence-on-branch   # subset
    nda-repro bench --benchmarks mcf leela --samples 2 --jobs 4
    nda-repro run mcf --config strict --stats
    nda-repro bench-simspeed --output BENCH_simspeed.json
    nda-repro figure 4|7|8|9a|9b|9c|9d|9e
    nda-repro config ooo             # describe one configuration
    nda-repro config list            # registered schemes + named configs
    nda-repro cache info|clear       # inspect/drop the result cache
    nda-repro cache gc --older-than 14      # prune stale cached windows
    nda-repro worker --connect HOST:PORT    # join a worker-protocol run
    nda-repro fuzz run --seeds 200 --jobs 8   # differential leak fuzzing
    nda-repro fuzz replay 7 --config strict   # one seed on one config
    nda-repro fuzz minimize 7 --output w.json # ddmin to a reproducer
    nda-repro serve --workers 2 --tokens tokens.json # HTTP job server
    nda-repro submit sweep mcf --config strict --wait # job via the server
    nda-repro submit attack spectre_v1_cache --wait
    nda-repro obs trace spectre_v1 --config strict   # Perfetto export
    nda-repro obs trace merge --dir results/traces/spans  # stitch spools
    nda-repro obs top --server http://127.0.0.1:8765  # live observatory
    nda-repro obs metrics                    # render latest metric snapshot
    nda-repro obs manifest list              # run provenance records
    nda-repro obs export --benchmarks mcf    # engine job-span trace

Sweeps (``bench``/``figure``) run on the parallel suite engine and cache
windows under ``results/.cache/``; use ``--jobs N`` to size the worker
pool and ``--no-cache`` to force re-simulation.  ``--backend`` picks the
execution backend (``serial``, ``local-pool``, ``worker-protocol``),
``--remote-cache URL`` tiers the result store with a running job
server's artifact routes, and ``--checkpoint FILE`` / ``--resume FILE``
make long campaigns survive preemption (see DESIGN.md §3.7).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.attacks.taxonomy import CROSS_IMPLEMENTED, IMPLEMENTED
from repro.config import config_registry
from repro.engine import ResultCache
from repro.harness import (
    render_figure4,
    render_figure7,
    render_figure8,
    render_figure9a,
    render_figure9bc,
    render_figure9d,
    render_figure9e,
    render_table1,
    render_table2,
    render_table3,
    run_suite,
    table1_matrix,
    table2,
)
from repro.harness.figures import figure4, figure8, figure9e
from repro.workloads.profiles import DEFAULT_SUITE, PROFILES

_CONFIG_NAMES = sorted(config_registry())


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the sweep (default: cpu count)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache location (default: results/.cache, "
             "or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--remote-cache", default=None, metavar="URL",
        help="tier the result store with a job server's "
             "/v1/artifacts routes (read-through, write-back)",
    )
    parser.add_argument(
        "--backend", default=None,
        choices=["serial", "local-pool", "worker-protocol"],
        help="execution backend (default: local-pool when --jobs > 1)",
    )
    parser.add_argument(
        "--bind", default=None, metavar="HOST:PORT",
        help="worker-protocol only: coordinator listen address "
             "(default: 127.0.0.1, ephemeral port)",
    )
    parser.add_argument(
        "--no-spawn", action="store_true",
        help="worker-protocol only: do not spawn local workers; wait "
             "for external `nda-repro worker --connect` processes",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="periodically write a resumable checkpoint manifest here",
    )
    parser.add_argument(
        "--resume", default=None, metavar="FILE",
        help="replay completed jobs from a checkpoint manifest before "
             "executing the remainder",
    )


def _backend_options(args) -> Optional[dict]:
    """worker-protocol knobs from ``--bind``/``--no-spawn`` (else None)."""
    options: dict = {}
    if getattr(args, "bind", None):
        from repro.engine.backends.worker_protocol import parse_address
        try:
            host, port = parse_address(args.bind)
        except ValueError as err:
            raise SystemExit(str(err))
        options["host"] = host
        options["port"] = port
    if getattr(args, "no_spawn", False):
        options["spawn"] = False
    return options or None


def _engine_kwargs(args) -> dict:
    return {
        "jobs": args.jobs,
        "cache": not args.no_cache,
        "cache_dir": None if args.no_cache else args.cache_dir,
        "remote_cache": getattr(args, "remote_cache", None),
        "backend": getattr(args, "backend", None),
        "backend_options": _backend_options(args),
        "checkpoint": getattr(args, "checkpoint", None),
        "resume": getattr(args, "resume", None),
    }


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nda-repro",
        description="NDA (MICRO 2019) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table3", help="print the simulated machine description")

    attack = sub.add_parser("attack", help="run one attack PoC")
    attack.add_argument(
        "name",
        choices=sorted(
            {info.name for info in IMPLEMENTED}
            | {info.name for info in CROSS_IMPLEMENTED}
        ),
    )
    attack.add_argument(
        "--config", default="ooo", choices=_CONFIG_NAMES
    )
    attack.add_argument("--secret", type=int, default=42)
    attack.add_argument("--guesses", type=int, default=64)
    attack.add_argument(
        "--contexts", type=int, default=None, choices=(1, 2),
        help="hardware contexts (cross-context attacks imply 2)",
    )
    attack.add_argument(
        "--json", action="store_true",
        help="print a repro.result/v1 attack envelope instead of text",
    )

    matrix = sub.add_parser(
        "matrix", help="run every attack on every configuration"
    )
    matrix.add_argument("--guesses", type=int, default=32)
    matrix.add_argument(
        "--configs", nargs="*", default=None, choices=_CONFIG_NAMES,
        metavar="NAME",
        help="restrict the matrix to these configurations "
             "(default: every registered one)",
    )
    matrix.add_argument(
        "--cross", action="store_true",
        help="run the two-context cross-context matrix instead "
             "(repro.smt co-residency attacks; in-order configs skipped)",
    )

    bench = sub.add_parser("bench", help="performance sweep (Fig 7/Table 2)")
    bench.add_argument(
        "--benchmarks", nargs="*", default=list(DEFAULT_SUITE),
        choices=sorted(PROFILES),
    )
    bench.add_argument("--samples", type=int, default=3)
    bench.add_argument("--warmup", type=int, default=2000)
    bench.add_argument("--measure", type=int, default=8000)
    _add_engine_args(bench)

    run_cmd = sub.add_parser(
        "run", help="run one generated workload to completion"
    )
    run_cmd.add_argument("benchmark", choices=sorted(PROFILES))
    run_cmd.add_argument("--config", default="ooo", choices=_CONFIG_NAMES)
    run_cmd.add_argument("--instructions", type=int, default=3000)
    run_cmd.add_argument("--seed", type=int, default=0)
    run_cmd.add_argument(
        "--stats", action="store_true",
        help="print the full counter summary (incl. simulator speed)",
    )
    run_cmd.add_argument(
        "--no-fast-forward", action="store_true",
        help="disable the bit-identical idle-cycle fast-forward",
    )
    run_cmd.add_argument(
        "--json", action="store_true",
        help="print a repro.result/v1 run envelope instead of text",
    )

    simspeed = sub.add_parser(
        "bench-simspeed",
        help="benchmark the simulator itself (host kilo-cycles/sec)",
    )
    simspeed.add_argument(
        "--workloads", nargs="*", default=None, choices=sorted(PROFILES),
        metavar="NAME",
    )
    simspeed.add_argument(
        "--configs", nargs="*", default=None, choices=_CONFIG_NAMES,
        metavar="NAME",
    )
    simspeed.add_argument("--instructions", type=int, default=None)
    simspeed.add_argument("--repeats", type=int, default=None)
    simspeed.add_argument("--seed", type=int, default=None)
    simspeed.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the JSON payload here",
    )
    simspeed.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="warn (exit 0) on >25%% regressions vs this payload",
    )
    simspeed.add_argument(
        "--obs", action="store_true",
        help="also measure telemetry-bus overhead (detached vs "
             "attached-idle vs metrics sampling)",
    )
    simspeed.add_argument(
        "--windows", type=int, default=1, metavar="N",
        help="also measure lockstep aggregate throughput over N "
             "windows per (workload, config)",
    )
    simspeed.add_argument(
        "--engines", nargs="*", default=None,
        choices=["reference", "fast"], metavar="ENGINE",
        help="engines to measure (default: both)",
    )
    simspeed.add_argument(
        "--profile", action="store_true",
        help="cProfile the slowest row into results/profiles/",
    )
    simspeed.add_argument(
        "--gate", action="store_true",
        help="hard-fail (exit 1) if the fast engine is under 2x the "
             "reference on mcf/ooo (stepping path)",
    )
    simspeed.add_argument(
        "--history", action="store_true",
        help="append a timestamped git-SHA-stamped row to "
             "results/bench_history.jsonl and compare against the "
             "previous row (perf trajectory across commits)",
    )

    config_cmd = sub.add_parser(
        "config", help="describe one named configuration, or list them all"
    )
    config_cmd.add_argument("name", choices=["list"] + _CONFIG_NAMES)

    cache_cmd = sub.add_parser(
        "cache", help="inspect, clear, or garbage-collect the result cache"
    )
    cache_cmd.add_argument("action", choices=["info", "clear", "gc"])
    cache_cmd.add_argument("--cache-dir", default=None, metavar="DIR")
    cache_cmd.add_argument(
        "--older-than", type=float, default=None, metavar="DAYS",
        help="gc: drop cached windows last touched more than DAYS "
             "days ago (required for gc)",
    )

    worker_cmd = sub.add_parser(
        "worker",
        help="pull jobs from a worker-protocol coordinator "
             "(see `--backend worker-protocol --no-spawn`)",
    )
    worker_cmd.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address printed by the driving sweep",
    )
    worker_cmd.add_argument(
        "--processes", type=int, default=1, metavar="N",
        help="parallel pull loops to run (default: 1)",
    )
    worker_cmd.add_argument(
        "--timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-connection idle timeout (default: 30)",
    )

    trace = sub.add_parser(
        "trace", help="pipeline trace of a micro-kernel (ASCII chart)"
    )
    trace.add_argument("kernel", choices=sorted(
        __import__("repro.workloads.kernels", fromlist=["ALL_KERNELS"])
        .ALL_KERNELS
    ))
    trace.add_argument("--config", default="ooo", choices=_CONFIG_NAMES)
    trace.add_argument("--instructions", type=int, default=60)
    trace.add_argument("--width", type=int, default=80)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument(
        "which", choices=["4", "7", "8", "9a", "9b", "9c", "9d", "9e"]
    )
    figure.add_argument("--benchmarks", nargs="*", default=None)
    figure.add_argument("--samples", type=int, default=3)
    _add_engine_args(figure)

    fuzz = sub.add_parser(
        "fuzz", help="differential speculative-leak fuzzing"
    )
    fuzz_sub = fuzz.add_subparsers(dest="fuzz_command", required=True)

    fuzz_run = fuzz_sub.add_parser(
        "run", help="run a differential campaign (seeds x configs)"
    )
    fuzz_run.add_argument("--seeds", type=int, default=50, metavar="N",
                          help="number of fuzz seeds (default: 50)")
    fuzz_run.add_argument("--seed0", type=int, default=0, metavar="S",
                          help="first seed (default: 0)")
    fuzz_run.add_argument(
        "--configs", nargs="*", default=None, choices=_CONFIG_NAMES,
        metavar="NAME",
        help="restrict the campaign to these configurations "
             "(default: every out-of-order one)",
    )
    fuzz_run.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: cpu count)",
    )
    fuzz_run.add_argument("--max-cycles", type=int, default=400_000)
    fuzz_run.add_argument(
        "--backend", default=None,
        choices=["serial", "local-pool", "worker-protocol"],
        help="execution backend (default: local-pool when --jobs > 1)",
    )
    fuzz_run.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="periodically write a resumable checkpoint manifest here",
    )
    fuzz_run.add_argument(
        "--resume", default=None, metavar="FILE",
        help="replay completed seeds from a checkpoint manifest",
    )
    fuzz_run.add_argument(
        "--windows", type=int, default=1, metavar="N",
        help="batch N runs at a time through the in-process lockstep "
             "runner (bit-identical; the fast path on one CPU; "
             "mutually exclusive with --backend/--checkpoint/--resume)",
    )
    fuzz_run.add_argument(
        "--smt", action="store_true",
        help="fuzz paired two-context programs on the co-residency "
             "model (cross-context channels; incompatible with "
             "--windows > 1)",
    )

    fuzz_replay = fuzz_sub.add_parser(
        "replay", help="re-run one seed or corpus file on one config"
    )
    fuzz_replay.add_argument(
        "what", metavar="SEED|FILE",
        help="a fuzz seed number, or a witness corpus JSON file",
    )
    fuzz_replay.add_argument(
        "--config", default="ooo", choices=_CONFIG_NAMES
    )

    fuzz_min = fuzz_sub.add_parser(
        "minimize", help="ddmin a leaking seed to a minimal reproducer"
    )
    fuzz_min.add_argument("seed", type=int)
    fuzz_min.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the minimized witness as a corpus JSON file",
    )
    fuzz_min.add_argument(
        "--blocked-under", nargs="*", default=["full-protection"],
        choices=_CONFIG_NAMES, metavar="NAME",
        help="configs the minimized program must NOT leak under",
    )
    fuzz_min.add_argument("--max-tests", type=int, default=400)

    serve_cmd = sub.add_parser(
        "serve", help="run the HTTP job server (simulation-as-a-service)"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8765)
    serve_cmd.add_argument(
        "--queue-dir", default=None, metavar="DIR",
        help="durable queue root (default: results/queue)",
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker threads draining the queue (default: 1)",
    )
    serve_cmd.add_argument(
        "--engine-jobs", type=int, default=1, metavar="N",
        help="engine worker processes per sweep job (default: 1)",
    )
    serve_cmd.add_argument(
        "--tokens", default=None, metavar="FILE",
        help="token table JSON; omitting it runs the server open",
    )
    serve_cmd.add_argument("--max-retries", type=int, default=2)
    serve_cmd.add_argument("--no-cache", action="store_true",
                           help="bypass the content-addressed result cache")
    serve_cmd.add_argument("--cache-dir", default=None, metavar="DIR")

    submit_cmd = sub.add_parser(
        "submit", help="submit a job to a running repro server"
    )
    submit_cmd.add_argument(
        "kind", choices=["sweep", "attack", "fuzz"],
        help="job kind (see DESIGN.md §3.6 for the spec fields)",
    )
    submit_cmd.add_argument(
        "target", nargs="*", default=[],
        help="attack: the attack name; sweep: benchmark names; "
             "fuzz: ignored",
    )
    submit_cmd.add_argument(
        "--server", default="http://127.0.0.1:8765", metavar="URL"
    )
    submit_cmd.add_argument("--token", default=None)
    submit_cmd.add_argument(
        "--config", default=None, metavar="NAME",
        help="attack: the config to attack; sweep: may repeat via --spec",
    )
    submit_cmd.add_argument(
        "--spec", default=None, metavar="JSON",
        help="inline JSON merged over the positional shorthand",
    )
    submit_cmd.add_argument("--priority", type=int, default=0)
    submit_cmd.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its result envelope",
    )
    submit_cmd.add_argument("--timeout", type=float, default=600.0)

    obs = sub.add_parser(
        "obs", help="telemetry: Perfetto traces, metrics, run manifests"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    obs_trace = obs_sub.add_parser(
        "trace",
        help="run one target under the event bus and export a "
             "Chrome/Perfetto trace (open at ui.perfetto.dev); "
             "`obs trace merge` stitches distributed span spools "
             "instead",
    )
    obs_trace.add_argument(
        "target", metavar="TARGET",
        help="an attack name (e.g. spectre_v1), a micro-kernel, a "
             "workload profile, or the word 'merge' to stitch span "
             "spools from a traced distributed run",
    )
    obs_trace.add_argument(
        "--dir", dest="spool_dir", default=None, metavar="DIR",
        help="merge only: span spool directory (default: "
             "$REPRO_TRACE_DIR, else results/traces/spans)",
    )
    obs_trace.add_argument(
        "--config", default="strict", choices=_CONFIG_NAMES,
        help="configuration to trace under (default: strict, which "
             "shows NDA defer gaps)",
    )
    obs_trace.add_argument("--instructions", type=int, default=2000,
                           help="length of kernel/workload targets")
    obs_trace.add_argument("--seed", type=int, default=0)
    obs_trace.add_argument("--limit", type=int, default=20_000,
                           help="max traced instructions")
    obs_trace.add_argument("--sample-interval", type=int, default=200,
                           metavar="CYCLES",
                           help="metrics sampling period (counter tracks)")
    obs_trace.add_argument(
        "--output", default=None, metavar="FILE",
        help="trace path (default results/traces/<target>-<config>.json)",
    )

    obs_metrics = obs_sub.add_parser(
        "metrics", help="render the metric snapshot stored in a manifest"
    )
    obs_metrics.add_argument(
        "path", nargs="?", default=None,
        help="manifest file (default: the latest one)",
    )

    obs_manifest = obs_sub.add_parser(
        "manifest", help="list, show, or validate run manifests"
    )
    obs_manifest.add_argument("action", choices=["list", "show", "validate"])
    obs_manifest.add_argument(
        "path", nargs="?", default=None,
        help="manifest file (default: the latest one)",
    )

    obs_top = obs_sub.add_parser(
        "top",
        help="poll a running job server's /v1/status and print live "
             "campaign progress (queue depth, workers, cache, latency)",
    )
    obs_top.add_argument(
        "--server", default="http://127.0.0.1:8765", metavar="URL"
    )
    obs_top.add_argument("--token", default=None)
    obs_top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="seconds between polls (default: 2)",
    )
    obs_top.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N polls (default: 0 = until interrupted)",
    )

    obs_export = obs_sub.add_parser(
        "export",
        help="run a small sweep with job-span collection and export the "
             "engine-level Perfetto trace",
    )
    obs_export.add_argument(
        "--benchmarks", nargs="*", default=["mcf"], choices=sorted(PROFILES)
    )
    obs_export.add_argument("--samples", type=int, default=1)
    obs_export.add_argument("--warmup", type=int, default=500)
    obs_export.add_argument("--measure", type=int, default=2000)
    obs_export.add_argument(
        "--output", default=None, metavar="FILE",
        help="trace path (default results/traces/engine.json)",
    )
    _add_engine_args(obs_export)

    return parser


#: Commands that get a root trace span when REPRO_TRACE_DIR is set —
#: the entry points named by DESIGN.md §3.10's propagation contract.
_TRACED_COMMANDS = frozenset({
    "run", "attack", "matrix", "bench", "bench-simspeed", "figure",
    "fuzz", "submit",
})


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    from repro.obs.spans import maybe_tracer
    # Untraced commands must not claim the process tracer: `serve` and
    # `worker` create their own service-named tracers on first use.
    if args.command not in _TRACED_COMMANDS:
        return _run_command(args)
    tracer = maybe_tracer("cli")
    if tracer is None:
        return _run_command(args)
    with tracer.span(
        "cli." + args.command,
        attrs={"argv": " ".join(argv if argv is not None else sys.argv[1:])},
    ) as span:
        code = _run_command(args)
        span.attrs["exit_code"] = code
        return code


def _run_command(args) -> int:
    if args.command == "table3":
        print(render_table3())
        return 0

    if args.command == "config":
        if args.name == "list":
            from repro.schemes import describe_schemes
            print(describe_schemes())
            print()
            print("Named configurations (nda-repro config <name>):")
            for name, spec in config_registry().items():
                core = "in-order" if spec.in_order else "out-of-order"
                print("  %-20s %-20s (%s)" % (name, spec.label, core))
            return 0
        spec = config_registry()[args.name]
        print(spec.config.describe())
        if spec.in_order:
            print("  core class: in-order (TimingSimpleCPU analog)")
        return 0

    if args.command == "cache":
        cache = ResultCache(args.cache_dir)
        if args.action == "clear":
            removed = cache.clear()
            print("removed %d cached windows from %s" % (removed, cache.root))
        elif args.action == "gc":
            if args.older_than is None:
                print("cache gc requires --older-than DAYS", file=sys.stderr)
                return 2
            removed = cache.gc(args.older_than)
            print("gc removed %d cached windows older than %g days from %s"
                  % (removed, args.older_than, cache.root))
        else:
            print("cache dir: %s" % cache.root)
            print("entries:   %d" % cache.size())
        return 0

    if args.command == "worker":
        from repro.engine.backends import worker_main
        return worker_main(
            args.connect, processes=args.processes, timeout=args.timeout,
        )

    if args.command == "attack":
        cross_info = next(
            (i for i in CROSS_IMPLEMENTED if i.name == args.name), None
        )
        spec = config_registry()[args.config]
        config, in_order = spec.config, spec.in_order
        from repro.attacks.common import default_guesses
        guesses = default_guesses(args.secret, args.guesses)
        if cross_info is not None:
            if args.contexts == 1:
                sys.stderr.write(
                    "error: %s is a cross-context attack; it needs "
                    "--contexts 2\n" % args.name
                )
                return 2
            if in_order:
                sys.stderr.write(
                    "error: cross-context attacks pair two out-of-order "
                    "contexts; pick an OoO --config\n"
                )
                return 2
            outcome = cross_info.module.run(
                config, secret=args.secret, guesses=guesses,
                in_order=in_order,
            )
        else:
            if args.contexts == 2:
                sys.stderr.write(
                    "error: %s is a single-context attack; drop "
                    "--contexts 2 (cross-context PoCs: %s)\n"
                    % (args.name,
                       ", ".join(i.name for i in CROSS_IMPLEMENTED))
                )
                return 2
            outcome = next(
                i for i in IMPLEMENTED if i.name == args.name
            ).module.run(
                config, secret=args.secret, guesses=guesses,
                in_order=in_order,
            )
        if args.json:
            import json as json_mod

            from repro.envelope import attack_envelope
            print(json_mod.dumps(
                attack_envelope(outcome), indent=2, sort_keys=True
            ))
        else:
            print(outcome)
            if hasattr(outcome, "bit_timings"):
                print("bit timings:", outcome.bit_timings)
            else:
                print("timings:",
                      dict(zip(outcome.guesses, outcome.timings)))
        return 0 if not outcome.leaked else 1

    if args.command == "matrix":
        configs = None
        if args.configs:
            registry = config_registry()
            configs = [registry[name] for name in args.configs]
        if args.cross:
            from repro.harness.tables import (
                cross_matrix, render_cross_matrix,
            )
            rows = cross_matrix(configs=configs, guesses=args.guesses)
            print(render_cross_matrix(rows))
        else:
            rows = table1_matrix(configs=configs, guesses=args.guesses)
            print(render_table1(rows))
        mismatches = [r for r in rows if r["leaked"] != r["expected"]]
        return 1 if mismatches else 0

    if args.command == "run":
        from repro.api import simulate
        from repro.workloads.generator import spec_program
        spec = config_registry()[args.config]
        program = spec_program(
            args.benchmark, instructions=args.instructions, seed=args.seed
        )
        outcome = simulate(
            program, spec.config, in_order=spec.in_order,
            fast_forward=not args.no_fast_forward,
        )
        if args.json:
            import json as json_mod

            from repro.envelope import run_envelope
            print(json_mod.dumps(run_envelope(
                outcome, benchmark=args.benchmark, config=args.config,
                seed=args.seed, instructions=args.instructions,
            ), indent=2, sort_keys=True))
            return 0
        print(outcome)
        if args.stats:
            for key, value in outcome.stats.summary().items():
                if isinstance(value, float):
                    print("  %-28s %.3f" % (key, value))
                else:
                    print("  %-28s %s" % (key, value))
        return 0

    if args.command == "bench-simspeed":
        import json as json_mod
        from pathlib import Path

        from repro.harness import simspeed as simspeed_mod
        kwargs = {"verbose": True}
        if args.workloads:
            kwargs["workloads"] = args.workloads
        if args.configs:
            kwargs["configs"] = args.configs
        if args.instructions is not None:
            kwargs["instructions"] = args.instructions
        if args.repeats is not None:
            kwargs["repeats"] = args.repeats
        if args.seed is not None:
            kwargs["seed"] = args.seed
        if args.obs:
            kwargs["obs"] = True
        if args.windows > 1:
            kwargs["windows"] = args.windows
        if args.engines:
            kwargs["engines"] = args.engines
        payload = simspeed_mod.run_simspeed(**kwargs)
        print()
        print(simspeed_mod.render_simspeed(payload))
        if args.output:
            Path(args.output).write_text(
                json_mod.dumps(payload, indent=2) + "\n"
            )
            print("\nwrote %s" % args.output)
        if args.profile:
            row = simspeed_mod._slowest_row(payload)
            if row is not None:
                path = simspeed_mod.profile_case(
                    row["workload"], row["config"],
                    "results/profiles/%s_%s_%s.pstats" % (
                        row["workload"], row["config"], row["engine"],
                    ),
                    instructions=payload["instructions"],
                    seed=payload["seed"], engine=row["engine"],
                )
                print("profiled slowest row to %s" % path)
        if args.baseline:
            baseline = json_mod.loads(Path(args.baseline).read_text())
            for line in simspeed_mod.compare_simspeed(payload, baseline):
                print(line)
        if args.history:
            for line in simspeed_mod.compare_history(payload):
                print(line)
            entry = simspeed_mod.append_history(payload)
            print("history: appended %s (%s) to %s"
                  % (entry["git_revision"][:12] or "no-git",
                     entry["recorded"], simspeed_mod.HISTORY_PATH))
        if args.gate:
            failures = simspeed_mod.gate_simspeed(payload)
            for line in failures:
                print(line)
            if failures:
                return 1
        return 0

    if args.command == "bench":
        suite = run_suite(
            benchmarks=args.benchmarks,
            samples=args.samples,
            warmup=args.warmup,
            measure=args.measure,
            verbose=True,
            **_engine_kwargs(args),
        )
        print("engine: %s" % suite.engine.describe())
        print()
        print(render_figure7(suite))
        print()
        print(render_table2(table2(suite)))
        return 0

    if args.command == "trace":
        from repro.core import make_core
        from repro.debug import PipelineTracer
        from repro.workloads.kernels import ALL_KERNELS
        spec = config_registry()[args.config]
        config, in_order = spec.config, spec.in_order
        if in_order:
            print("trace requires an out-of-order configuration")
            return 2
        program = ALL_KERNELS[args.kernel](args.instructions)
        core = make_core(program, config)
        tracer = PipelineTracer.attach(core, limit=args.instructions * 8)
        core.run()
        print(tracer.render(width=args.width))
        print()
        print("mean complete-to-broadcast (wake-up) delay: %.1f cycles"
              % tracer.mean_wakeup_delay())
        return 0

    if args.command == "serve":
        from repro.server import DEFAULT_QUEUE_DIR, TokenAuth, serve
        kwargs = {
            "queue_dir": args.queue_dir or DEFAULT_QUEUE_DIR,
            "workers": args.workers,
            "engine_jobs": args.engine_jobs,
            "max_retries": args.max_retries,
            "cache": not args.no_cache,
            "cache_dir": None if args.no_cache else args.cache_dir,
        }
        if args.tokens:
            kwargs["auth"] = TokenAuth.load(args.tokens)
        serve(host=args.host, port=args.port, **kwargs)
        return 0

    if args.command == "submit":
        import json as json_mod

        from repro.server import ServerClient, ServerError
        spec: dict = {}
        if args.kind == "attack" and args.target:
            spec["attack"] = args.target[0]
        elif args.kind == "sweep" and args.target:
            spec["benchmarks"] = list(args.target)
        if args.config:
            if args.kind == "attack":
                spec["config"] = args.config
            else:
                spec["configs"] = [args.config]
        if args.spec:
            spec.update(json_mod.loads(args.spec))
        client = ServerClient(args.server, token=args.token)
        # Forward the CLI's root span so the server's submit/queue/
        # execute spans land in the same trace.
        from repro.obs.spans import maybe_tracer
        tracer = maybe_tracer("cli")
        current = tracer.current() if tracer is not None else None
        try:
            job = client.submit(
                args.kind, spec, priority=args.priority,
                traceparent=current.traceparent() if current else None,
            )
            if args.wait:
                job = client.wait(job.id, timeout=args.timeout)
                if job.state == "failed":
                    print("job %s failed: %s" % (job.id[:12], job.error),
                          file=sys.stderr)
                    return 1
                print(json_mod.dumps(client.result(job.id), indent=2,
                                     sort_keys=True))
            else:
                print("job %s %s (queue position %s)"
                      % (job.id, job.state, job.queue_position))
        except ServerError as err:
            print("server error [%d %s]: %s"
                  % (err.status, err.code, err), file=sys.stderr)
            return 1
        except OSError as err:
            print("cannot reach %s: %s" % (args.server, err),
                  file=sys.stderr)
            return 1
        return 0

    if args.command == "figure":
        return _figure(args)

    if args.command == "fuzz":
        return _fuzz(args)

    if args.command == "obs":
        return _obs(args)

    return 2


def _obs_trace_program(args):
    """Resolve an ``obs trace`` target to a Program: attack name first,
    then micro-kernel, then workload profile."""
    attacks = {info.name: info for info in IMPLEMENTED}
    if args.target in attacks:
        return attacks[args.target].module.build_program()
    from repro.workloads.kernels import ALL_KERNELS
    if args.target in ALL_KERNELS:
        return ALL_KERNELS[args.target](args.instructions)
    if args.target in PROFILES:
        from repro.workloads.generator import spec_program
        return spec_program(args.target, args.instructions, args.seed)
    raise SystemExit(
        "unknown trace target %r (attacks: %s; kernels and workload "
        "profiles also accepted)"
        % (args.target, ", ".join(sorted(attacks)))
    )


def _obs(args) -> int:
    import json as json_mod
    import os

    from repro.obs import (
        EventBus,
        MetricsRegistry,
        MetricsSampler,
        build_manifest,
        counter_trace_events,
        engine_trace_events,
        latest_manifest,
        lifecycle_trace_events,
        list_manifests,
        load_manifest,
        validate_manifest,
        write_chrome_trace,
        write_manifest,
    )

    if args.obs_command == "trace" and args.target == "merge":
        from repro.obs import merge_span_spools
        directory = (
            args.spool_dir
            or os.environ.get("REPRO_TRACE_DIR")
            or os.path.join("results", "traces", "spans")
        )
        output = args.output or os.path.join(
            "results", "traces", "merged.json"
        )
        summary = merge_span_spools(directory, output)
        if not summary["spans"]:
            print("no span spools under %s (run the campaign with "
                  "REPRO_TRACE_DIR=%s first)" % (directory, directory))
            return 2
        print("merged %d spans across %d traces from %d processes (%s)"
              % (summary["spans"], summary["traces"],
                 len(summary["processes"]),
                 ", ".join(summary["processes"])))
        print("trace: %s  (open at https://ui.perfetto.dev)"
              % summary["path"])
        return 0

    if args.obs_command == "top":
        return _obs_top(args)

    if args.obs_command == "trace":
        from repro.core.inorder import InOrderCore
        from repro.core import make_core
        from repro.debug import PipelineTracer

        program = _obs_trace_program(args)
        spec = config_registry()[args.config]
        core = (
            InOrderCore(program, spec.config) if spec.in_order
            else make_core(program, spec.config)
        )
        bus = EventBus().attach(core)
        tracer = PipelineTracer(limit=args.limit)
        bus.subscribe(tracer)
        sampler = bus.add_sampler(MetricsSampler(args.sample_interval))
        outcome = core.run()

        events = lifecycle_trace_events(tracer.records)
        events += counter_trace_events(sampler)
        output = args.output or os.path.join(
            "results", "traces",
            "%s-%s.json" % (args.target, args.config),
        )
        write_chrome_trace(output, events, metadata={
            "target": args.target,
            "config": args.config,
            "scheme": spec.config.scheme,
            "cycles": outcome.stats.cycles,
        })
        manifest_path = write_manifest(build_manifest(
            spec.config, kind="trace", workload=args.target,
            seed=args.seed, stats=outcome.stats,
        ))
        deferred = sum(
            1 for r in tracer.records
            if not r.squashed and r.wakeup_delay > 1
        )
        print("traced %s on %s: %d instructions, %d samples, "
              "%d deferred wake-ups"
              % (args.target, args.config, len(tracer.records),
                 len(sampler.rows), deferred))
        print("trace:    %s  (open at https://ui.perfetto.dev)" % output)
        print("manifest: %s" % manifest_path)
        return 0

    if args.obs_command == "metrics":
        manifest = (
            load_manifest(args.path) if args.path else latest_manifest()
        )
        if manifest is None:
            print("no manifests found (run `nda-repro obs trace ...` first)")
            return 2
        snapshot = manifest.get("metrics")
        if not snapshot:
            print("manifest %s carries no metric snapshot"
                  % manifest.get("label", "?"))
            return 2
        print("%s %s (%s)" % (manifest.get("kind", "run"),
                              manifest.get("label", "?"),
                              manifest.get("git_revision", "?")[:12]))
        print(MetricsRegistry.restore(snapshot).render())
        return 0

    if args.obs_command == "manifest":
        if args.action == "list":
            paths = list_manifests()
            for path in paths:
                manifest = load_manifest(path)
                print("%-9s %-28s %s" % (
                    manifest.get("kind", "?"),
                    manifest.get("label", "?"),
                    path,
                ))
            if not paths:
                print("no manifests under %s" % (
                    os.environ.get("REPRO_MANIFEST_DIR")
                    or os.path.join("results", "manifests")
                ))
            return 0
        manifest = (
            load_manifest(args.path) if args.path else latest_manifest()
        )
        if manifest is None:
            print("no manifests found")
            return 2
        if args.action == "show":
            print(json_mod.dumps(manifest, indent=2, sort_keys=True))
            return 0
        problems = validate_manifest(manifest)
        if problems:
            for problem in problems:
                print("INVALID: %s" % problem)
            return 1
        print("valid manifest (schema %s)" % manifest["schema_version"])
        return 0

    if args.obs_command == "export":
        suite = run_suite(
            benchmarks=args.benchmarks,
            samples=args.samples,
            warmup=args.warmup,
            measure=args.measure,
            collect_trace=True,
            **_engine_kwargs(args),
        )
        output = args.output or os.path.join(
            "results", "traces", "engine.json"
        )
        write_chrome_trace(
            output, engine_trace_events(suite.engine.job_trace),
            metadata={"engine": suite.engine.describe()},
        )
        print("engine: %s" % suite.engine.describe())
        print("trace:  %s  (open at https://ui.perfetto.dev)" % output)
        return 0

    return 2


def _obs_top(args) -> int:
    """Poll ``GET /v1/status`` and print a live observatory summary."""
    import time as time_mod

    from repro.server import ServerClient, ServerError

    client = ServerClient(args.server, token=args.token)
    polls = 0
    while True:
        try:
            status = client.status()
        except ServerError as err:
            print("server error [%d %s]: %s"
                  % (err.status, err.code, err), file=sys.stderr)
            return 1
        polls += 1
        print(_render_top(status, args.server))
        if args.iterations and polls >= args.iterations:
            return 0
        try:
            time_mod.sleep(max(0.1, args.interval))
        except KeyboardInterrupt:
            print()
            return 0


def _render_top(status: dict, server: str) -> str:
    """One poll of /v1/status as a compact multi-line block."""
    import time as time_mod

    lines = ["-- %s  %s" % (server, time_mod.strftime("%H:%M:%S"))]
    queue = status.get("queue", {})
    lines.append(
        "queue    " + "  ".join(
            "%s=%d" % (state, queue.get(state, 0))
            for state in ("queued", "running", "done", "failed")
        )
    )
    jobs = status.get("jobs", {})
    for kind, counts in sorted((jobs.get("by_kind") or {}).items()):
        lines.append(
            "  %-7s %d done / %d running / %d queued / %d failed"
            " (%d cached)"
            % (kind, counts.get("done", 0), counts.get("running", 0),
               counts.get("queued", 0), counts.get("failed", 0),
               counts.get("cached", 0))
        )
    for job in status.get("running") or []:
        lines.append("  > %s %s attempt %d, %.1fs"
                     % (job.get("id"), job.get("kind"),
                        job.get("attempt", 0),
                        job.get("running_seconds", 0.0)))
    workers = status.get("workers", {})
    lines.append("workers  threads=%d executed=%d"
                 % (workers.get("threads", 0), workers.get("executed", 0)))
    for name, lease in sorted((workers.get("leases") or {}).items()):
        lines.append("  lease  %-18s %d leases, %.0fms busy, %d errors"
                     % (name, lease.get("leases", 0),
                        lease.get("busy_ms", 0.0), lease.get("errors", 0)))
    cache = status.get("cache")
    if cache:
        lines.append(
            "cache    hits=%d misses=%d stores=%d errors=%d"
            " (hit rate %.1f%%)"
            % (cache.get("hits", 0), cache.get("misses", 0),
               cache.get("stores", 0), cache.get("errors", 0),
               100.0 * cache.get("hit_rate", 0.0))
        )
    latency = status.get("latency", {})
    parts = []
    for label, key in (("queue-wait", "queue_wait"), ("execute", "execute")):
        summary = latency.get(key) or {}
        if summary.get("count"):
            parts.append("%s p50=%.0fms p95=%.0fms (n=%d)"
                         % (label, summary.get("p50_ms", 0.0),
                            summary.get("p95_ms", 0.0),
                            summary.get("count", 0)))
    if parts:
        lines.append("latency  " + "   ".join(parts))
    return "\n".join(lines)


def _fuzz(args) -> int:
    import repro.fuzz as fuzz_mod

    if args.fuzz_command == "run":
        def progress(done, total, _result):
            if done % 25 == 0 or done == total:
                sys.stderr.write("\r[%d/%d]" % (done, total))
                sys.stderr.flush()
                if done == total:
                    sys.stderr.write("\n")

        campaign = fuzz_mod.run_campaign(
            range(args.seed0, args.seed0 + args.seeds),
            config_names=args.configs,
            jobs=args.jobs,
            progress=progress,
            max_cycles=args.max_cycles,
            backend=args.backend,
            checkpoint=args.checkpoint,
            resume=args.resume,
            windows=args.windows,
            smt=args.smt,
        )
        print(campaign.describe())
        from repro.obs import (
            build_manifest, metrics_from_campaign, write_manifest,
        )
        manifest_path = write_manifest(build_manifest(
            config_registry()["ooo"].config,
            kind="fuzz-campaign",
            seed=args.seed0,
            metrics=metrics_from_campaign(campaign).collect(),
            extra={
                "seeds": args.seeds,
                "configs": sorted({
                    r.config_name for r in campaign.results
                }),
            },
        ))
        print("manifest: %s" % manifest_path)
        return 0 if campaign.ok else 1

    if args.fuzz_command == "replay":
        spec = config_registry()[args.config]
        if args.what.isdigit():
            run = fuzz_mod.run_seed(int(args.what), args.config)
            witnesses = run.witnesses
            print(
                "seed %d [%s -> %s] on %s: %d witnesses, %d cycles"
                % (run.seed, run.template, run.channel, args.config,
                   len(witnesses), run.cycles)
            )
        else:
            entry = fuzz_mod.load_witness_file(args.what)
            _, witnesses = fuzz_mod.run_with_oracle(
                entry["program"], spec.config,
                secret_ranges=entry["secret_ranges"],
                tainted_bytes=entry["tainted_bytes"],
            )
            print(
                "%s (%s) on %s: %d witnesses"
                % (args.what, entry["meta"].get("channel", "?"),
                   args.config, len(witnesses))
            )
        for witness in witnesses:
            print("  %s" % (witness.to_dict(),))
        return 0

    if args.fuzz_command == "minimize":
        fp = fuzz_mod.generate(args.seed)
        predicate = fuzz_mod.differential_predicate(
            secret_ranges=fp.secret_ranges,
            tainted_bytes=fp.tainted_bytes,
            channel=fp.channel,
            blocked_under=args.blocked_under,
        )
        try:
            result = fuzz_mod.minimize_program(
                fp.program, predicate, max_tests=args.max_tests
            )
        except ValueError as error:
            print("seed %d [%s]: %s" % (args.seed, fp.template, error))
            return 2
        print("seed %d [%s/%s]: %s"
              % (args.seed, fp.template, fp.channel, result.describe()))
        if args.output:
            fuzz_mod.save_witness_file(
                args.output, result.program,
                meta={
                    "template": fp.template,
                    "channel": fp.channel,
                    "seed": args.seed,
                    "analog": fp.analog,
                    "config_name": "ooo",
                    "original_size": result.original_size,
                    "minimized_size": result.size,
                },
                secret_ranges=fp.secret_ranges,
                tainted_bytes=fp.tainted_bytes,
            )
            print("wrote %s" % args.output)
        return 0

    return 2


def _figure(args) -> int:
    benchmarks = args.benchmarks or list(DEFAULT_SUITE)
    if args.which == "4":
        print(render_figure4(figure4()))
        return 0
    if args.which == "8":
        print(render_figure8(figure8()))
        return 0
    engine_kwargs = _engine_kwargs(args)
    if args.which == "9e":
        if engine_kwargs["cache"]:
            from repro.engine import open_store
            cache = open_store(
                engine_kwargs["cache_dir"],
                remote=engine_kwargs["remote_cache"],
            )
        else:
            cache = False
        print(render_figure9e(figure9e(
            benchmarks=benchmarks,
            jobs=engine_kwargs["jobs"],
            cache=cache,
            backend=engine_kwargs["backend"],
            backend_options=engine_kwargs["backend_options"],
            checkpoint=engine_kwargs["checkpoint"],
            resume=engine_kwargs["resume"],
        )))
        return 0
    suite = run_suite(
        benchmarks=benchmarks, samples=args.samples, **engine_kwargs
    )
    print("engine: %s" % suite.engine.describe())
    if args.which == "7":
        print(render_figure7(suite))
    elif args.which == "9a":
        print(render_figure9a(suite))
    elif args.which in ("9b", "9c"):
        print(render_figure9bc(suite))
    elif args.which == "9d":
        print(render_figure9d(suite))
    return 0


if __name__ == "__main__":
    sys.exit(main())
