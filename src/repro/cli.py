"""``nda-repro`` command-line front-end.

Subcommands::

    nda-repro table3                 # print the simulated machine
    nda-repro attack spectre_v1 --config permissive
    nda-repro matrix                 # full security matrix (Tables 1/2)
    nda-repro bench --benchmarks mcf leela --samples 2
    nda-repro figure 4|7|8|9a|9b|9c|9d|9e
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.attacks.taxonomy import IMPLEMENTED
from repro.config import (
    NDAPolicyName,
    baseline_ooo,
    invisispec_config,
    nda_config,
)
from repro.harness import (
    render_figure4,
    render_figure7,
    render_figure8,
    render_figure9a,
    render_figure9bc,
    render_figure9d,
    render_figure9e,
    render_table1,
    render_table2,
    render_table3,
    run_suite,
    table1_matrix,
    table2,
)
from repro.harness.figures import figure4, figure8, figure9e
from repro.workloads.profiles import DEFAULT_SUITE, PROFILES

_CONFIGS = {
    "ooo": lambda: (baseline_ooo(), False),
    "permissive": lambda: (nda_config(NDAPolicyName.PERMISSIVE), False),
    "permissive+br": lambda: (nda_config(NDAPolicyName.PERMISSIVE_BR), False),
    "strict": lambda: (nda_config(NDAPolicyName.STRICT), False),
    "strict+br": lambda: (nda_config(NDAPolicyName.STRICT_BR), False),
    "restricted-loads": lambda: (
        nda_config(NDAPolicyName.LOAD_RESTRICTION), False),
    "full-protection": lambda: (
        nda_config(NDAPolicyName.FULL_PROTECTION), False),
    "invisispec-spectre": lambda: (invisispec_config(False), False),
    "invisispec-future": lambda: (invisispec_config(True), False),
    "in-order": lambda: (baseline_ooo(), True),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nda-repro",
        description="NDA (MICRO 2019) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table3", help="print the simulated machine description")

    attack = sub.add_parser("attack", help="run one attack PoC")
    attack.add_argument(
        "name", choices=sorted({info.name for info in IMPLEMENTED})
    )
    attack.add_argument(
        "--config", default="ooo", choices=sorted(_CONFIGS)
    )
    attack.add_argument("--secret", type=int, default=42)
    attack.add_argument("--guesses", type=int, default=64)

    matrix = sub.add_parser(
        "matrix", help="run every attack on every configuration"
    )
    matrix.add_argument("--guesses", type=int, default=32)

    bench = sub.add_parser("bench", help="performance sweep (Fig 7/Table 2)")
    bench.add_argument(
        "--benchmarks", nargs="*", default=list(DEFAULT_SUITE),
        choices=sorted(PROFILES),
    )
    bench.add_argument("--samples", type=int, default=3)
    bench.add_argument("--warmup", type=int, default=2000)
    bench.add_argument("--measure", type=int, default=8000)

    trace = sub.add_parser(
        "trace", help="pipeline trace of a micro-kernel (ASCII chart)"
    )
    trace.add_argument("kernel", choices=sorted(
        __import__("repro.workloads.kernels", fromlist=["ALL_KERNELS"])
        .ALL_KERNELS
    ))
    trace.add_argument("--config", default="ooo", choices=sorted(_CONFIGS))
    trace.add_argument("--instructions", type=int, default=60)
    trace.add_argument("--width", type=int, default=80)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument(
        "which", choices=["4", "7", "8", "9a", "9b", "9c", "9d", "9e"]
    )
    figure.add_argument("--benchmarks", nargs="*", default=None)
    figure.add_argument("--samples", type=int, default=3)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "table3":
        print(render_table3())
        return 0

    if args.command == "attack":
        info = next(i for i in IMPLEMENTED if i.name == args.name)
        config, in_order = _CONFIGS[args.config]()
        from repro.attacks.common import default_guesses
        guesses = default_guesses(args.secret, args.guesses)
        outcome = info.module.run(
            config, secret=args.secret, guesses=guesses, in_order=in_order
        )
        print(outcome)
        if hasattr(outcome, "bit_timings"):
            print("bit timings:", outcome.bit_timings)
        else:
            print("timings:", dict(zip(outcome.guesses, outcome.timings)))
        return 0 if not outcome.leaked else 1

    if args.command == "matrix":
        rows = table1_matrix(guesses=args.guesses)
        print(render_table1(rows))
        mismatches = [r for r in rows if r["leaked"] != r["expected"]]
        return 1 if mismatches else 0

    if args.command == "bench":
        suite = run_suite(
            benchmarks=args.benchmarks,
            samples=args.samples,
            warmup=args.warmup,
            measure=args.measure,
            verbose=True,
        )
        print(render_figure7(suite))
        print()
        print(render_table2(table2(suite)))
        return 0

    if args.command == "trace":
        from repro.core.ooo import OutOfOrderCore
        from repro.debug import PipelineTracer
        from repro.workloads.kernels import ALL_KERNELS
        config, in_order = _CONFIGS[args.config]()
        if in_order:
            print("trace requires an out-of-order configuration")
            return 2
        program = ALL_KERNELS[args.kernel](args.instructions)
        core = OutOfOrderCore(program, config)
        tracer = PipelineTracer.attach(core, limit=args.instructions * 8)
        core.run()
        print(tracer.render(width=args.width))
        print()
        print("mean complete-to-broadcast (wake-up) delay: %.1f cycles"
              % tracer.mean_wakeup_delay())
        return 0

    if args.command == "figure":
        return _figure(args)

    return 2


def _figure(args) -> int:
    benchmarks = args.benchmarks or list(DEFAULT_SUITE)
    if args.which == "4":
        print(render_figure4(figure4()))
        return 0
    if args.which == "8":
        print(render_figure8(figure8()))
        return 0
    if args.which == "9e":
        print(render_figure9e(figure9e(benchmarks=benchmarks)))
        return 0
    suite = run_suite(benchmarks=benchmarks, samples=args.samples)
    if args.which == "7":
        print(render_figure7(suite))
    elif args.which == "9a":
        print(render_figure9a(suite))
    elif args.which in ("9b", "9c"):
        print(render_figure9bc(suite))
    elif args.which == "9d":
        print(render_figure9d(suite))
    return 0


if __name__ == "__main__":
    sys.exit(main())
