"""repro: a reproduction of "NDA: Preventing Speculative Execution Attacks
at Their Source" (Weisse et al., MICRO 2019).

The package implements, from scratch, a cycle-level out-of-order processor
simulator, the six NDA speculative-data-propagation policies, an InvisiSpec
comparison model, an in-order baseline, the attack proof-of-concepts
(Spectre v1 via the d-cache and the BTB, Meltdown, speculative store bypass,
LazyFP), synthetic SPEC CPU 2017-like workloads, and the harness that
regenerates every table and figure of the paper's evaluation.

Quick start::

    from repro import NDAPolicyName, baseline_ooo, nda_config, simulate
    from repro.workloads import spec_program

    program = spec_program("mcf", instructions=20_000, seed=1)
    insecure = simulate(program, baseline_ooo())
    protected = simulate(program, nda_config(NDAPolicyName.PERMISSIVE))
    print(insecure.cpi, protected.cpi)

Full sweeps (every figure/table of the paper) go through the parallel
suite engine::

    from repro import run_suite

    suite = run_suite(jobs=8, cache=True)   # fan out + on-disk cache
    print(suite.engine.describe())
"""

from repro.api import run_attack, run_window, simulate, submit_suite
from repro.config import (
    CacheConfig,
    ConfigSpec,
    CoreConfig,
    MemConfig,
    NDAPolicyName,
    ProtectionScheme,
    SimConfig,
    all_figure7_configs,
    baseline_ooo,
    config_registry,
    invisispec_config,
    nda_config,
    scheme_config,
    with_nda_delay,
)
from repro.schemes import (
    ProtectionModel,
    SchemeParams,
    register_scheme,
    registered_schemes,
)
from repro.core import (
    InOrderCore,
    OutOfOrderCore,
    RunOutcome,
)
from repro.engine import ResultCache
from repro.harness.experiment import SuiteResult, run_suite
from repro.errors import (
    AssemblyError,
    ConfigError,
    DeadlockError,
    ReproError,
    SimulationError,
)
from repro.isa import Assembler, Opcode, Program, run_reference

# Heavyweight optional surfaces (fuzzer, telemetry, job-server client)
# are served lazily through repro.api so importing repro stays cheap.
from repro.api import _FUZZ_EXPORTS, _OBS_EXPORTS, _SERVER_EXPORTS

_LAZY_EXPORTS = _SERVER_EXPORTS + _FUZZ_EXPORTS + _OBS_EXPORTS

__version__ = "1.0.0"

__all__ = [
    "simulate",
    "run_attack",
    "run_window",
    "submit_suite",
    "CacheConfig",
    "ConfigSpec",
    "CoreConfig",
    "MemConfig",
    "NDAPolicyName",
    "ProtectionScheme",
    "SimConfig",
    "all_figure7_configs",
    "baseline_ooo",
    "config_registry",
    "invisispec_config",
    "nda_config",
    "scheme_config",
    "with_nda_delay",
    "ProtectionModel",
    "SchemeParams",
    "register_scheme",
    "registered_schemes",
    "ResultCache",
    "SuiteResult",
    "run_suite",
    "InOrderCore",
    "OutOfOrderCore",
    "RunOutcome",
    "AssemblyError",
    "ConfigError",
    "DeadlockError",
    "ReproError",
    "SimulationError",
    "Assembler",
    "Opcode",
    "Program",
    "run_reference",
    "__version__",
    *_LAZY_EXPORTS,
]


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import repro.api

        return getattr(repro.api, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
