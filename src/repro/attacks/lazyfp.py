"""LazyFP / Meltdown-v3a analog — leaking a special register.

LazyFP reads stale AVX registers belonging to another process; Meltdown
v3a reads privileged MSRs.  Both are chosen-code attacks in which a
special-register read that will fault nevertheless forwards its value to
dependents.  The paper treats such reads "like loads" (§4.3/§5.2), so this
PoC issues a user-mode ``RDMSR`` — the MSR holds the victim's secret —
and transmits the value through the cache before the fault retires.

Blocked only by the load-restriction family of policies, exactly like
Meltdown (Table 2).
"""

from __future__ import annotations

from typing import List, Optional

from repro.attacks.common import (
    CACHE_LEAK_MARGIN,
    PROBE_BASE,
    PROBE_STRIDE,
    AttackOutcome,
    default_guesses,
    emit_cache_recover,
    emit_probe_flush,
    read_timings,
    run_attack,
    victim_map,
)
from repro.config import SimConfig
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import R9, R10, R12, R13, R20, R21

SECRET_MSR = 0x10  # pretend: an AVX register holding another process's key
SLOW_CHAIN = victim_map("lazyfp")["slow_chain"]


def build_program(
    secret: int = 42, guesses: Optional[List[int]] = None
) -> Program:
    guesses = guesses if guesses is not None else default_guesses(secret)
    asm = Assembler("lazyfp")
    asm.msr(SECRET_MSR, secret)
    asm.word(SLOW_CHAIN, SLOW_CHAIN + 0x800)
    asm.word(SLOW_CHAIN + 0x800, 1)
    asm.fault_handler("handler")

    asm.li(R12, PROBE_BASE)
    asm.li(R13, PROBE_STRIDE)
    emit_probe_flush(asm, guesses)
    asm.li(R20, SLOW_CHAIN)
    asm.clflush(R20, 0)
    asm.li(R20, SLOW_CHAIN + 0x800)
    asm.clflush(R20, 0)
    asm.fence()
    # Retire anchor.
    # Keep the critical sequence inside one i-cache line: a line boundary
    # in the middle would let an i-miss serialize its dispatch.
    asm.align(16)
    asm.li(R9, SLOW_CHAIN)
    asm.load(R9, R9, 0)
    asm.load(R9, R9, 0)
    # Access: the faulting special-register read (value still forwarded).
    asm.rdmsr(R10, SECRET_MSR)
    # Transmit in the fault shadow.
    asm.mul(R21, R10, R13)
    asm.add(R21, R21, R12)
    asm.load(R21, R21, 0)
    asm.nop()
    asm.jmp("handler")

    asm.label("handler")
    emit_cache_recover(asm, guesses)
    asm.halt()
    return asm.build()


def run(
    config: SimConfig,
    secret: int = 42,
    guesses: Optional[List[int]] = None,
    in_order: bool = False,
    fast_forward: bool = True,
) -> AttackOutcome:
    """Run the LazyFP-style special-register attack on *config*."""
    guesses = guesses if guesses is not None else default_guesses(secret)
    program = build_program(secret, guesses)
    outcome = run_attack(
        program, config, in_order=in_order, fast_forward=fast_forward
    )
    return AttackOutcome(
        attack="lazyfp",
        channel="cache",
        config_label=outcome.label,
        secret=secret,
        timings=read_timings(outcome, guesses),
        guesses=guesses,
        margin_required=CACHE_LEAK_MARGIN,
        outcome=outcome,
    )
