"""Meltdown (Spectre v3) — chosen-code attack on privileged memory.

Micro-op realization of the paper's Listing 2.  The attacker's own code
loads a kernel byte; the hardware flaw (modeled by
``SimConfig.forward_faulting_loads``) forwards the loaded value to
dependents before the permission check squashes at retirement.  A chain of
flushed pointer-chase loads ahead of the faulting load keeps it away from
the ROB head long enough for the transmit sequence to touch the probe line.
The fault then fires, the handler runs the recover phase.

No branch is involved, so NDA's propagation policies do not block it —
only load restriction (and full protection) does, by refusing to wake the
faulting load's dependents before it can legally retire (Table 2 row 5).
"""

from __future__ import annotations

from typing import List, Optional

from repro.attacks.common import (
    CACHE_LEAK_MARGIN,
    PROBE_BASE,
    PROBE_STRIDE,
    AttackOutcome,
    default_guesses,
    emit_cache_recover,
    emit_probe_flush,
    read_timings,
    run_attack,
    victim_map,
)
from repro.config import SimConfig
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import R0, R9, R10, R12, R13, R20, R21, R26

_MAP = victim_map("meltdown")
KERNEL_BASE = _MAP["kernel"]
KERNEL_SIZE = 4096
KERNEL_SECRET = KERNEL_BASE + 0x80
SLOW_CHAIN = _MAP["slow_chain"]  # two dependent, flushed loads: the retire anchor
FLAG_ADDR = _MAP["flag"]  # 0 = warm-up fault, 1 = attack fault


def build_program(
    secret: int = 42, guesses: Optional[List[int]] = None
) -> Program:
    guesses = guesses if guesses is not None else default_guesses(secret)
    asm = Assembler("meltdown")
    asm.privileged_range(KERNEL_BASE, KERNEL_BASE + KERNEL_SIZE)
    asm.data(KERNEL_SECRET, bytes([secret]))
    asm.word(SLOW_CHAIN, SLOW_CHAIN + 0x800)
    asm.word(SLOW_CHAIN + 0x800, 1)
    asm.fault_handler("handler")

    asm.li(R12, PROBE_BASE)
    asm.li(R13, PROBE_STRIDE)
    # Warm-up: a deliberate faulting access pulls the kernel line into the
    # caches (the access itself fills them; only the architectural write is
    # suppressed).  The handler routes the first fault to the attack stage.
    asm.li(R20, KERNEL_SECRET)
    asm.loadb(R21, R20, 0)  # faults -> handler -> attack

    asm.label("attack")
    emit_probe_flush(asm, guesses)
    # Flush the retire anchor so it keeps the ROB head busy ~2 DRAM trips.
    asm.li(R20, SLOW_CHAIN)
    asm.clflush(R20, 0)
    asm.li(R20, SLOW_CHAIN + 0x800)
    asm.clflush(R20, 0)
    asm.fence()
    # Mark that the next fault is the real one.
    asm.li(R20, 1)
    asm.li(R21, FLAG_ADDR)
    asm.store(R20, R21, 0)
    asm.fence()
    # Retire anchor: two dependent off-chip loads.
    # Keep the critical sequence inside one i-cache line: a line boundary
    # in the middle would let an i-miss serialize its dispatch.
    asm.align(16)
    asm.li(R9, SLOW_CHAIN)
    asm.load(R9, R9, 0)
    asm.load(R9, R9, 0)
    # Phase 1 - access (Listing 2 line 2): the faulting load.
    asm.li(R20, KERNEL_SECRET)
    asm.loadb(R10, R20, 0)
    # Phase 2 - transmit (Listing 2 line 6), in the fault shadow.
    asm.mul(R21, R10, R13)
    asm.add(R21, R21, R12)
    asm.load(R21, R21, 0)
    asm.nop()
    # Unreachable architecturally: the fault always fires first.
    asm.jmp("handler")

    asm.label("handler")
    asm.li(R20, FLAG_ADDR)
    asm.load(R20, R20, 0)
    asm.beq(R20, R0, "attack")
    # Phase 3 - recover.
    emit_cache_recover(asm, guesses)
    asm.halt()
    return asm.build()


def run(
    config: SimConfig,
    secret: int = 42,
    guesses: Optional[List[int]] = None,
    in_order: bool = False,
    fast_forward: bool = True,
) -> AttackOutcome:
    """Run Meltdown on *config*."""
    guesses = guesses if guesses is not None else default_guesses(secret)
    program = build_program(secret, guesses)
    outcome = run_attack(
        program, config, in_order=in_order, fast_forward=fast_forward
    )
    return AttackOutcome(
        attack="meltdown",
        channel="cache",
        config_label=outcome.label,
        secret=secret,
        timings=read_timings(outcome, guesses),
        guesses=guesses,
        margin_required=CACHE_LEAK_MARGIN,
        outcome=outcome,
    )
