"""The paper's attack taxonomy (Table 1) and protection matrix (Table 2).

:data:`TABLE1` encodes the taxonomy of documented attacks by access method
(control-steering vs. chosen-code) and covert channel.  :func:`expected_leak`
gives Table 2's ground truth for whether a given attack PoC recovers the
secret under a given configuration; the security-matrix test suite checks
the simulator against every cell, and ``benchmarks/bench_table1_taxonomy``
prints the live matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.attacks import (
    gpr_steering,
    lazyfp,
    meltdown,
    netspectre,
    spectre_btb,
    spectre_icache,
    spectre_v1,
    spectre_v2,
    ssb,
)
from repro.config import SimConfig


@dataclass(frozen=True)
class AttackInfo:
    """One taxonomy row."""

    name: str
    access_class: str  # "control-steering" or "chosen-code"
    channel: str  # covert channel used by our PoC
    module: object  # the PoC module (has .run)
    demonstrated_in: str  # citation context from Table 1


# The implemented PoCs, classified per Table 1.
IMPLEMENTED: Tuple[AttackInfo, ...] = (
    AttackInfo("spectre_v1_cache", "control-steering", "d-cache",
               spectre_v1, "Kocher et al. [34]"),
    AttackInfo("spectre_v1_btb", "control-steering", "btb",
               spectre_btb, "this paper, section 3"),
    AttackInfo("spectre_v2", "control-steering", "d-cache",
               spectre_v2, "Kocher et al. [34], v2"),
    AttackInfo("ssb", "control-steering", "d-cache",
               ssb, "Spectre v4 [27]"),
    AttackInfo("gpr_steering", "control-steering", "d-cache",
               gpr_steering, "hypothetical future attack, section 4.2"),
    AttackInfo("netspectre", "control-steering", "fpu",
               netspectre, "Schwarz et al. [55]"),
    AttackInfo("spectre_icache", "control-steering", "i-cache",
               spectre_icache, "Mambretti et al. [39]"),
    AttackInfo("meltdown", "chosen-code", "d-cache",
               meltdown, "Lipp et al. [36]"),
    AttackInfo("lazyfp", "chosen-code", "d-cache",
               lazyfp, "Stecklina & Prescher [59] / v3a"),
)

# Table 1 rows that have no separate PoC here, with the implemented PoC
# that exercises the same mechanism.
TABLE1_COVERAGE: Dict[str, str] = {
    "Spectre v1": "spectre_v1_cache / spectre_v1_btb",
    "Spectre v1.1": "spectre_v1_cache (store variant of the same steering)",
    "Spectre v2": "spectre_v2",
    "ret2spec": "spectre_v2 (RAS steering uses the same unsafe-window rule)",
    "NetSpectre": "netspectre (FPU power-state channel)",
    "SMoTher Spectre": "netspectre (port-contention needs SMT, which "
                       "Table 3's core lacks; the FPU channel exercises the "
                       "same unsafe-chain dependence)",
    "i-cache channel [39]": "spectre_icache",
    "SSB (Spectre v4)": "ssb",
    "Meltdown (v3/v3a)": "meltdown / lazyfp",
    "LazyFP": "lazyfp",
    "Foreshadow (L1TF)": "meltdown (same faulting-load forwarding flaw)",
    "MDS attacks": "meltdown (same load-like forwarding flaw)",
}


def expected_leak(attack: AttackInfo, config: SimConfig,
                  in_order: bool = False) -> bool:
    """Table 2 ground truth: does *attack* leak under *config*?

    An in-order core never speculates; otherwise the question is
    delegated to the protection model's ``expected_leak`` classmethod, so
    a newly registered scheme ships its own security ground truth.
    """
    if in_order:
        return False
    from repro.schemes.registry import scheme_info

    info = scheme_info(config.scheme)
    return info.model.expected_leak(attack, config.scheme_params)
