"""The paper's attack taxonomy (Table 1) and protection matrix (Table 2).

:data:`TABLE1` encodes the taxonomy of documented attacks by access method
(control-steering vs. chosen-code) and covert channel.  :func:`expected_leak`
gives Table 2's ground truth for whether a given attack PoC recovers the
secret under a given configuration; the security-matrix test suite checks
the simulator against every cell, and ``benchmarks/bench_table1_taxonomy``
prints the live matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.attacks import (
    cross_btb,
    cross_prime_probe,
    cross_ras,
    gpr_steering,
    lazyfp,
    meltdown,
    netspectre,
    spectre_btb,
    spectre_icache,
    spectre_v1,
    spectre_v2,
    ssb,
)
from repro.config import SimConfig


@dataclass(frozen=True)
class AttackInfo:
    """One taxonomy row."""

    name: str
    access_class: str  # "control-steering" or "chosen-code"
    channel: str  # covert channel used by our PoC
    module: object  # the PoC module (has .run)
    demonstrated_in: str  # citation context from Table 1
    # Cross-context attacks (repro.smt) run an attacker/victim pair of
    # co-resident hardware contexts; single-context rows keep the
    # defaults.
    contexts: int = 1
    sharing: str = ""  # "smt" or "l2" when contexts > 1


# The implemented PoCs, classified per Table 1.
IMPLEMENTED: Tuple[AttackInfo, ...] = (
    AttackInfo("spectre_v1_cache", "control-steering", "d-cache",
               spectre_v1, "Kocher et al. [34]"),
    AttackInfo("spectre_v1_btb", "control-steering", "btb",
               spectre_btb, "this paper, section 3"),
    AttackInfo("spectre_v2", "control-steering", "d-cache",
               spectre_v2, "Kocher et al. [34], v2"),
    AttackInfo("ssb", "control-steering", "d-cache",
               ssb, "Spectre v4 [27]"),
    AttackInfo("gpr_steering", "control-steering", "d-cache",
               gpr_steering, "hypothetical future attack, section 4.2"),
    AttackInfo("netspectre", "control-steering", "fpu",
               netspectre, "Schwarz et al. [55]"),
    AttackInfo("spectre_icache", "control-steering", "i-cache",
               spectre_icache, "Mambretti et al. [39]"),
    AttackInfo("meltdown", "chosen-code", "d-cache",
               meltdown, "Lipp et al. [36]"),
    AttackInfo("lazyfp", "chosen-code", "d-cache",
               lazyfp, "Stecklina & Prescher [59] / v3a"),
)

# Cross-context attacks: an attacker and a victim program co-resident on
# two hardware contexts (repro.smt).  Kept in their own tuple — they run
# on a pair of contexts, never on the single-context in-order core, and
# their channels get distinct "cross-*" names so single-context fuzzing
# claims are unaffected.  All are control-steering in the victim: the
# transient window opens under the victim's own unresolved branch/return.
CROSS_IMPLEMENTED: Tuple[AttackInfo, ...] = (
    AttackInfo("cross_prime_probe", "control-steering", "cross-d-cache",
               cross_prime_probe, "NDA threat model, section 3 (SMT/"
               "co-tenant co-residency)", contexts=2, sharing="l2"),
    AttackInfo("cross_btb", "control-steering", "cross-btb",
               cross_btb, "Spectre v2 cross-context variant [34]",
               contexts=2, sharing="smt"),
    AttackInfo("cross_ras", "control-steering", "cross-ras",
               cross_ras, "ret2spec cross-context variant [41]",
               contexts=2, sharing="smt"),
)

# Channels a co-resident receiver can observe without any shared address
# space; cross-i-cache has no dedicated PoC (the shared L1I is exercised
# incidentally by cross_btb's aliased fetch paths) but the taint oracle
# tracks it.
CROSS_CHANNELS: Tuple[str, ...] = (
    "cross-d-cache", "cross-i-cache", "cross-btb", "cross-ras",
)

# Table 1 rows that have no separate PoC here, with the implemented PoC
# that exercises the same mechanism.
TABLE1_COVERAGE: Dict[str, str] = {
    "Spectre v1": "spectre_v1_cache / spectre_v1_btb",
    "Spectre v1.1": "spectre_v1_cache (store variant of the same steering)",
    "Spectre v2": "spectre_v2",
    "ret2spec": "spectre_v2 (RAS steering uses the same unsafe-window rule)",
    "NetSpectre": "netspectre (FPU power-state channel)",
    "SMoTher Spectre": "netspectre (port-contention needs SMT, which "
                       "Table 3's core lacks; the FPU channel exercises the "
                       "same unsafe-chain dependence)",
    "i-cache channel [39]": "spectre_icache",
    "SSB (Spectre v4)": "ssb",
    "Meltdown (v3/v3a)": "meltdown / lazyfp",
    "LazyFP": "lazyfp",
    "Foreshadow (L1TF)": "meltdown (same faulting-load forwarding flaw)",
    "MDS attacks": "meltdown (same load-like forwarding flaw)",
}


def expected_leak(attack: AttackInfo, config: SimConfig,
                  in_order: bool = False) -> bool:
    """Table 2 ground truth: does *attack* leak under *config*?

    An in-order core never speculates; otherwise the question is
    delegated to the protection model's ``expected_leak`` classmethod, so
    a newly registered scheme ships its own security ground truth.
    """
    if in_order:
        return False
    from repro.schemes.registry import scheme_info

    info = scheme_info(config.scheme)
    return info.model.expected_leak(attack, config.scheme_params)
