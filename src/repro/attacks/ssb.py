"""Speculative store bypass (SSB / Spectre v4).

A store whose address resolves slowly (behind a division chain) is about
to overwrite a secret with a public value.  A younger load to the same
location executes first, *bypasses* the store in the LSQ, and reads the
stale secret, which the wrong path transmits through the cache.  When the
store finally resolves, the memory dependency unit squashes the load and
everything younger; the re-executed path sees the public value — but the
probe line touched with the secret survives the squash.

The paper classifies SSB as control-steering (§4.1) and defeats it with the
Bypass Restriction: rows 1 and 3 of Table 2 (permissive/strict without BR)
do NOT block this attack; rows 2 and 4-6 do.
"""

from __future__ import annotations

from typing import List, Optional

from repro.attacks.common import (
    CACHE_LEAK_MARGIN,
    PROBE_BASE,
    PROBE_STRIDE,
    AttackOutcome,
    default_guesses,
    emit_cache_recover,
    emit_probe_flush,
    read_timings,
    run_attack,
    victim_map,
)
from repro.config import SimConfig
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import (
    R10, R12, R13, R16, R17, R18, R19, R20, R21,
)

SLOT_ADDR = victim_map("ssb")["slot"]  # holds the secret until the store lands
PUBLIC_VALUE = 201  # excluded from the guess list: its probe line is
# legitimately touched by the squash-replay of the transmit sequence.


def attack_guesses(secret: int, count: int = 64) -> List[int]:
    """Guess list for SSB: never time the public value's line."""
    return [g for g in default_guesses(secret, count) if g != PUBLIC_VALUE]


def build_program(
    secret: int = 42, guesses: Optional[List[int]] = None
) -> Program:
    guesses = guesses if guesses is not None else attack_guesses(secret)
    asm = Assembler("ssb")
    asm.word(SLOT_ADDR, secret)  # stale (secret) contents

    asm.li(R12, PROBE_BASE)
    asm.li(R13, PROBE_STRIDE)
    # Warm the slot so the bypassing load completes inside the window.
    asm.li(R20, SLOT_ADDR)
    asm.loadb(R21, R20, 0)
    emit_probe_flush(asm, guesses)

    # Compute the store address through a division chain (~30 cycles).
    # Keep the critical sequence inside one i-cache line: a line boundary
    # in the middle would let an i-miss serialize its dispatch.
    asm.align(16)
    asm.li(R16, SLOT_ADDR)
    asm.li(R17, 3)
    asm.mul(R18, R16, R17)
    asm.div(R18, R18, R17)  # == SLOT_ADDR, eventually
    asm.li(R17, 7)
    asm.mul(R19, R18, R17)
    asm.div(R19, R19, R17)  # == SLOT_ADDR, even later
    asm.li(R20, PUBLIC_VALUE)
    asm.store(R20, R19, 0)  # the store the load will bypass
    # The malicious load (Access phase): address known immediately.
    asm.li(R21, SLOT_ADDR)
    asm.loadb(R10, R21, 0)  # bypasses -> reads the stale secret
    # Transmit phase.
    asm.mul(R21, R10, R13)
    asm.add(R21, R21, R12)
    asm.load(R21, R21, 0)
    # The store resolves, the violation squash replays from the load; the
    # replayed path transmits PUBLIC_VALUE (not timed by the recover loop).
    asm.fence()
    emit_cache_recover(asm, guesses)
    asm.halt()
    return asm.build()


def run(
    config: SimConfig,
    secret: int = 42,
    guesses: Optional[List[int]] = None,
    in_order: bool = False,
    fast_forward: bool = True,
) -> AttackOutcome:
    """Run the SSB attack on *config*."""
    guesses = guesses if guesses is not None else attack_guesses(secret)
    program = build_program(secret, guesses)
    outcome = run_attack(
        program, config, in_order=in_order, fast_forward=fast_forward
    )
    return AttackOutcome(
        attack="ssb",
        channel="cache",
        config_label=outcome.label,
        secret=secret,
        timings=read_timings(outcome, guesses),
        guesses=guesses,
        margin_required=CACHE_LEAK_MARGIN,
        outcome=outcome,
    )
