"""Cross-context RAS poisoning on an SMT core (``sharing="smt"``).

The return address stack is shared and pushed/popped at *fetch*, so one
context's calls land on top of the stack the other context's next RET
will pop.  The attacker pushes the PC of a disclosure gadget that exists
only in the victim's address space; the victim's return is then predicted
into the gadget, which transiently reads the victim's secret and
transmits it through the shared d-cache before the mispredicted return
resolves and squashes.

Choreography (ret2spec across hardware contexts):

1. The victim enters a function, parks its real return address in a
   *flushed* memory slot, and signals ``IN_FUNC``.
2. The attacker primes the probe lines, then executes eight ``call``s
   whose fetch PC is ``GADGET_PC - 1`` — each push deposits ``GADGET_PC``
   on the shared RAS — waits out a DRAM round trip so the last push is
   safely below the victim's in-flight speculation, and sets
   ``POISONED``.
3. The victim reloads its return address from the flushed slot (a DRAM
   round trip) and returns.  The RET pops ``GADGET_PC``, the wrong path
   runs the gadget for the full miss latency, and the probe line for the
   secret byte is filled in the shared cache before the squash.
4. The attacker times the probe lines.

Blocked by every NDA policy (the gadget's secret load is deferred under
the unresolved return), by InvisiSpec (the transmit fill is invisible),
and by fence-on-branch; leaks under the unprotected baseline.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.attacks.common import (
    CACHE_LEAK_MARGIN,
    PROBE_BASE,
    PROBE_STRIDE,
    AttackOutcome,
    default_guesses,
    emit_cache_recover,
    emit_probe_flush,
    emit_set_flag,
    emit_spin_nonzero,
    pad_to,
    read_timings,
    run_cross_attack,
    victim_map,
)
from repro.config import SimConfig
from repro.errors import ConfigError
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import LR, R15, R16, R20, R21, R22, R24

SHARING = "smt"

_MAP = victim_map("cross_ras")
ARRAY_BASE = _MAP["array"]
SECRET_ADDR = ARRAY_BASE  # no bounds-check here; the gadget reads directly
LR_SAVE_ADDR = _MAP["scratch"]  # victim return address, flushed (slow ret)
DELAY_ADDR = _MAP["scratch"] + 128  # attacker settle delay, flushed
IN_FUNC_FLAG = _MAP["flags"] + 0  # victim -> attacker: RET is pending
POISONED_FLAG = _MAP["flags"] + 8  # attacker -> victim: RAS is loaded
DONE_FLAG = _MAP["flags"] + 16  # victim -> attacker: transmit attempted

# The disclosure gadget sits at this PC in the *victim's* address space;
# the attacker's call instruction sits at GADGET_PC - 1 in its own space,
# so every push (pc + 1, taken at fetch) deposits GADGET_PC.
GADGET_PC = 64
N_PUSHES = 8  # RAS holds 16; victim uses one entry, we stack eight


def build_programs(
    secret: int = 42, guesses: Optional[List[int]] = None
) -> Tuple[Program, Program]:
    """Assemble the (attacker, victim) pair."""
    guesses = guesses if guesses is not None else default_guesses(secret)

    # Attacker (context 0).
    atk = Assembler("cross_ras_attacker")
    emit_spin_nonzero(atk, IN_FUNC_FLAG)
    emit_probe_flush(atk, guesses)
    atk.li(R20, DELAY_ADDR)
    atk.clflush(R20, 0)
    atk.fence()
    atk.li(R15, 0)
    atk.li(R16, N_PUSHES)
    atk.label("push_loop")
    pad_to(atk, GADGET_PC - 1)
    atk.call("sink")  # fetch pushes pc + 1 == GADGET_PC onto the shared RAS
    atk.label("sink")
    atk.addi(R15, R15, 1)
    atk.blt(R15, R16, "push_loop")
    # A DRAM round trip between the last push and the POISONED store: the
    # victim may have spin iterations in flight that predate the pushes,
    # and the flag must not outrun them.
    atk.li(R20, DELAY_ADDR)
    atk.load(R21, R20, 0)
    atk.fence()
    emit_set_flag(atk, POISONED_FLAG)
    emit_spin_nonzero(atk, DONE_FLAG)
    emit_cache_recover(atk, guesses)
    atk.halt()

    # Victim (context 1).
    vic = Assembler("cross_ras_victim")
    vic.data(SECRET_ADDR, bytes([secret]))

    vic.jmp("main")
    vic.label("victim_fn")
    vic.li(R24, LR_SAVE_ADDR)
    vic.store(LR, R24, 0)  # park the return address...
    vic.fence()
    vic.clflush(R24, 0)  # ...and flush it: the RET resolves a DRAM later
    vic.fence()
    emit_set_flag(vic, IN_FUNC_FLAG)
    emit_spin_nonzero(vic, POISONED_FLAG)
    vic.load(LR, R24, 0)
    vic.ret()  # predicted from the shared RAS: straight into the gadget
    # The disclosure gadget: reachable only through the poisoned RAS.
    pad_to(vic, GADGET_PC)
    vic.li(R20, SECRET_ADDR)
    vic.loadb(R21, R20, 0)  # access: the (cache-warm) secret
    vic.li(R22, PROBE_STRIDE)
    vic.mul(R21, R21, R22)
    vic.li(R22, PROBE_BASE)
    vic.add(R21, R21, R22)
    vic.load(R21, R21, 0)  # transmit: fills the shared d-cache
    vic.label("gadget_spin")
    vic.jmp("gadget_spin")  # wrong-path only; squashed with the RET

    vic.label("main")
    vic.li(R20, SECRET_ADDR)
    vic.loadb(R21, R20, 0)  # the victim touched its secret recently
    vic.call("victim_fn")
    vic.fence()
    emit_set_flag(vic, DONE_FLAG)
    vic.halt()

    return atk.build(), vic.build()


def run(
    config: SimConfig,
    secret: int = 42,
    guesses: Optional[List[int]] = None,
    in_order: bool = False,
    fast_forward: bool = True,
) -> AttackOutcome:
    """Run the attack pair on *config*; report whether the secret leaked."""
    if in_order:
        raise ConfigError(
            "cross-context attacks run on co-resident OoO contexts; the "
            "in-order core has no multi-context mode"
        )
    guesses = guesses if guesses is not None else default_guesses(secret)
    programs = build_programs(secret, guesses)
    _, outcomes = run_cross_attack(
        programs, config, SHARING, fast_forward=fast_forward
    )
    return AttackOutcome(
        attack="cross_ras",
        channel="cross-ras",
        config_label=outcomes[0].label,
        secret=secret,
        timings=read_timings(outcomes[0], guesses),
        guesses=guesses,
        margin_required=CACHE_LEAK_MARGIN,
        outcome=outcomes[0],
    )
