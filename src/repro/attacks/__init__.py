"""Attack proof-of-concepts running on the simulated cores.

Each module builds a complete micro-op program implementing the paper's
three attack phases (access, transmit, recover — Fig. 3) and reports an
:class:`~repro.attacks.common.AttackOutcome` whose ``leaked`` property says
whether the secret was recoverable from the covert channel.
"""

from repro.attacks import (
    cross_btb,
    cross_prime_probe,
    cross_ras,
    gpr_steering,
    lazyfp,
    meltdown,
    netspectre,
    spectre_btb,
    spectre_icache,
    spectre_v1,
    spectre_v2,
    ssb,
)
from repro.attacks.common import (
    AttackOutcome,
    BitChannelOutcome,
    default_guesses,
    read_timings,
    run_attack,
    run_cross_attack,
)

__all__ = [
    "cross_btb",
    "cross_prime_probe",
    "cross_ras",
    "gpr_steering",
    "lazyfp",
    "meltdown",
    "netspectre",
    "spectre_btb",
    "spectre_icache",
    "spectre_v1",
    "spectre_v2",
    "ssb",
    "AttackOutcome",
    "BitChannelOutcome",
    "default_guesses",
    "read_timings",
    "run_attack",
    "run_cross_attack",
]
