"""Attack proof-of-concepts running on the simulated cores.

Each module builds a complete micro-op program implementing the paper's
three attack phases (access, transmit, recover — Fig. 3) and reports an
:class:`~repro.attacks.common.AttackOutcome` whose ``leaked`` property says
whether the secret was recoverable from the covert channel.
"""

from repro.attacks import (
    gpr_steering,
    lazyfp,
    meltdown,
    netspectre,
    spectre_btb,
    spectre_icache,
    spectre_v1,
    spectre_v2,
    ssb,
)
from repro.attacks.common import (
    AttackOutcome,
    BitChannelOutcome,
    default_guesses,
    read_timings,
    run_attack,
)

__all__ = [
    "gpr_steering",
    "lazyfp",
    "meltdown",
    "netspectre",
    "spectre_btb",
    "spectre_icache",
    "spectre_v1",
    "spectre_v2",
    "ssb",
    "AttackOutcome",
    "BitChannelOutcome",
    "default_guesses",
    "read_timings",
    "run_attack",
]
