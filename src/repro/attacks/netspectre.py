"""NetSpectre-style attack: the FPU power-state covert channel.

Schwarz et al.'s NetSpectre [55] showed that the power state of the
FPU/AVX unit is a speculative covert channel: a wrong-path vector
instruction wakes the power-gated unit, and the attacker senses the state
by timing its own FP instruction.  The squash does not put the unit back
to sleep.

The transmit gadget leaks one bit per experiment: the wrong path extracts
bit *i* of the secret and executes an ``FADD`` only when the bit is set
(via a second, nested mispredicted branch).  Eight experiments reconstruct
the byte.

This channel has nothing to do with the d-cache, so it defeats InvisiSpec
entirely, while every NDA policy blocks it at the source: the bit-extract
chain depends on the unsafe load, so the nested branch never resolves and
the FADD is never fetched on the wrong path (§5.5: "NetSpectre ... which
are not addressed by prior work ... are defeated").
"""

from __future__ import annotations

from typing import List, Optional

from repro.attacks.common import (
    ARRAY_SIZE,
    RESULTS_BASE,
    SECRET_OFFSET,
    BitChannelOutcome,
    run_attack,
    victim_map,
)
from repro.config import SimConfig
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import (
    F0, F1, F2, F3, F4, F5, R0, R10, R11, R15, R20, R21, R22, R23, R24, R26,
)

_MAP = victim_map("netspectre")
ARRAY_BASE = _MAP["array"]
SIZE_ADDR = _MAP["size"]
SECRET_ADDR = ARRAY_BASE + SECRET_OFFSET
TRAIN_CALLS = 4
N_BITS = 8
# Decode threshold: a warm FPU measurement costs ~(FADD latency + commit
# overheads) ~ 10 cycles; a cold one adds the 20-cycle wake-up.
WARM_THRESHOLD = 20
LEAK_MARGIN = 8


def build_program(secret: int = 42) -> Program:
    asm = Assembler("netspectre")
    asm.word(SIZE_ADDR, ARRAY_SIZE)
    asm.data(ARRAY_BASE, bytes([0] * ARRAY_SIZE))  # benign values: bit == 0
    asm.data(SECRET_ADDR, bytes([secret]))
    asm.jmp("main")

    # One victim per bit index (mirrors NetSpectre's repeated gadget
    # invocations): r10 = x.  The bit-conditional FADD sits behind an
    # *indirect* jump whose target is computed from the secret bit:
    # ``target = done - 2*bit``.  Fetch follows the BTB (trained to
    # ``done`` by the benign calls), so the FADD can only execute through
    # a data-driven resolution redirect — i.e. only when the wrong path
    # actually obtained the secret.  A conditional branch here would leak
    # prediction noise instead (its not-taken path can be fetched on a
    # whim of the direction predictor).
    for bit in range(N_BITS):
        asm.label("victim_%d" % bit)
        asm.li(R20, SIZE_ADDR)
        asm.load(R20, R20, 0)
        asm.bge(R10, R20, "victim_done_%d" % bit)
        asm.add(R21, R11, R10)
        asm.loadb(R21, R21, 0)  # (1) access
        asm.shri(R21, R21, bit)
        asm.andi(R21, R21, 1)
        asm.shli(R23, R21, 1)  # 2*bit
        asm.li(R22, asm.here + 5)  # pc of victim_done below
        asm.sub(R22, R22, R23)  # done (bit=0) or the fadd (bit=1)
        asm.jr(R22)
        asm.fadd(F0, F1, F2)  # (2) transmit: wake the FPU
        asm.nop()
        asm.label("victim_done_%d" % bit)
        asm.ret()

    asm.label("main")
    asm.li(R11, ARRAY_BASE)
    asm.li(R20, SECRET_ADDR)
    asm.loadb(R21, R20, 0)  # warm the secret's line
    asm.li(R15, 0)  # delay-loop scratch

    for bit in range(N_BITS):
        # Train both branches with in-bounds, zero-valued accesses.
        for train in range(TRAIN_CALLS):
            asm.li(R10, train % ARRAY_SIZE)
            asm.call("victim_%d" % bit)
        # Let the FPU power down: spin far past fpu_sleep_cycles without
        # issuing FP work (the serial subi chain bounds the loop below at
        # one cycle per iteration on every core model).
        asm.li(R15, 500)
        asm.label("sleep_%d" % bit)
        asm.subi(R15, R15, 1)
        asm.bne(R15, R0, "sleep_%d" % bit)
        # Slow down the bounds check and fire the attack call.
        # Fence BEFORE flushing: under InvisiSpec, an earlier invisible
        # training load may otherwise expose (refill) the line after the
        # flush executes out of order.
        asm.fence()
        asm.li(R20, SIZE_ADDR)
        asm.clflush(R20, 0)
        asm.fence()
        asm.li(R10, SECRET_OFFSET)
        asm.call("victim_%d" % bit)
        asm.fence()
        # (3) recover: time one FP op; fast iff the wrong path woke
        # the unit.
        asm.rdtsc(R22)
        asm.fadd(F3, F4, F5)
        asm.rdtsc(R23)
        asm.sub(R24, R23, R22)
        asm.li(R26, RESULTS_BASE + bit * 8)
        asm.store(R24, R26, 0)
    asm.halt()
    return asm.build()


def run(
    config: SimConfig,
    secret: int = 42,
    guesses: Optional[List[int]] = None,  # unused: bit-serial channel
    in_order: bool = False,
    fast_forward: bool = True,
) -> BitChannelOutcome:
    """Run the NetSpectre PoC on *config*."""
    program = build_program(secret)
    outcome = run_attack(
        program, config, in_order=in_order, fast_forward=fast_forward
    )
    memory = outcome.state.memory
    bit_timings = [
        memory.read_word(RESULTS_BASE + bit * 8) for bit in range(N_BITS)
    ]
    return BitChannelOutcome(
        attack="netspectre",
        channel="fpu",
        config_label=outcome.label,
        secret=secret,
        bit_timings=bit_timings,
        threshold=WARM_THRESHOLD,
        margin_required=LEAK_MARGIN,
        outcome=outcome,
    )
