"""Spectre v1 — bounds-check bypass with the d-cache covert channel.

The micro-op realization of the paper's Listing 1.  A victim function
bounds-checks its index before accessing ``array``; the attacker trains the
direction predictor with in-bounds calls, flushes the bounds variable so
the check resolves late, and then calls with an out-of-bounds index that
makes ``array[x]`` alias the secret.  The wrong path loads the secret and
transmits it by touching ``probe[secret * stride]``; the recover phase
times every probe line.

Control-steering attack, d-cache channel: blocked by every NDA policy and
by both InvisiSpec variants (Table 2).
"""

from __future__ import annotations

from typing import List, Optional

from repro.attacks.common import (
    ARRAY_SIZE,
    CACHE_LEAK_MARGIN,
    PROBE_BASE,
    PROBE_STRIDE,
    SECRET_OFFSET,
    AttackOutcome,
    default_guesses,
    emit_cache_recover,
    emit_probe_flush,
    read_timings,
    run_attack,
    victim_map,
)
from repro.config import SimConfig
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import R0, R10, R11, R12, R13, R20, R21

_MAP = victim_map("spectre_v1_cache")
ARRAY_BASE = _MAP["array"]
SIZE_ADDR = _MAP["size"]
SECRET_ADDR = ARRAY_BASE + SECRET_OFFSET
TRAIN_CALLS = 6


def build_program(
    secret: int = 42, guesses: Optional[List[int]] = None
) -> Program:
    """Assemble the full train / access+transmit / recover program."""
    guesses = guesses if guesses is not None else default_guesses(secret)
    asm = Assembler("spectre_v1_cache")
    asm.word(SIZE_ADDR, ARRAY_SIZE)
    asm.data(ARRAY_BASE, bytes(range(1, ARRAY_SIZE + 1)))
    asm.data(SECRET_ADDR, bytes([secret]))

    asm.jmp("main")

    # Victim (Listing 1 lines 5-9): r10 = x, r11 = array, r12 = probe base,
    # r13 = probe stride.
    asm.label("victim")
    asm.li(R20, SIZE_ADDR)
    asm.load(R20, R20, 0)  # array_size (flushed before the attack call)
    asm.bge(R10, R20, "victim_done")  # the mis-trained bounds check
    asm.add(R21, R11, R10)
    asm.loadb(R21, R21, 0)  # (1) access: secret = array[x]
    asm.mul(R21, R21, R13)  # (2) pre-process: secret * stride
    asm.add(R21, R21, R12)
    asm.load(R21, R21, 0)  # (2) transmit: touch probe[secret * stride]
    asm.label("victim_done")
    asm.ret()

    asm.label("main")
    asm.li(R11, ARRAY_BASE)
    asm.li(R12, PROBE_BASE)
    asm.li(R13, PROBE_STRIDE)
    # Warm the secret's line: the victim touched its own secret recently.
    asm.li(R20, SECRET_ADDR)
    asm.loadb(R21, R20, 0)
    # Train the direction predictor with in-bounds calls.
    for index in range(TRAIN_CALLS):
        asm.li(R10, index % ARRAY_SIZE)
        asm.call("victim")
    # Prepare the channel: probe lines cold, bounds check slow to resolve.
    emit_probe_flush(asm, guesses)
    asm.li(R20, SIZE_ADDR)
    asm.clflush(R20, 0)
    asm.fence()
    # The attack call (out-of-bounds x).
    asm.li(R10, SECRET_OFFSET)
    asm.call("victim")
    asm.fence()
    # (3) recover.
    emit_cache_recover(asm, guesses)
    asm.halt()
    return asm.build()


def run(
    config: SimConfig,
    secret: int = 42,
    guesses: Optional[List[int]] = None,
    in_order: bool = False,
    fast_forward: bool = True,
) -> AttackOutcome:
    """Run the attack on *config* and report whether the secret leaked."""
    guesses = guesses if guesses is not None else default_guesses(secret)
    program = build_program(secret, guesses)
    outcome = run_attack(
        program, config, in_order=in_order, fast_forward=fast_forward
    )
    return AttackOutcome(
        attack="spectre_v1",
        channel="cache",
        config_label=outcome.label,
        secret=secret,
        timings=read_timings(outcome, guesses),
        guesses=guesses,
        margin_required=CACHE_LEAK_MARGIN,
        outcome=outcome,
    )
