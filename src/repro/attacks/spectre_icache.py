"""Spectre v1 with the instruction-cache covert channel.

Mambretti et al. [39] demonstrated covert transmission through the i-cache;
the paper's related-work section (§7) stresses that d-cache defenses like
InvisiSpec do not extend to the instruction side cheaply.  This PoC
transmits one bit per experiment: the wrong path computes an indirect jump
target from the secret bit and — only when the bit is set — redirects fetch
into a never-executed, line-aligned code stub.  The instruction fetch fills
the stub's i-cache line, the squash does not evict it, and the recover
phase times an architectural call into the stub.

Like the BTB and FPU channels, this leaks under both InvisiSpec variants
and is blocked by every NDA policy (the target computation depends on the
unsafe load).
"""

from __future__ import annotations

from typing import List, Optional

from repro.attacks.common import (
    ARRAY_SIZE,
    RESULTS_BASE,
    SECRET_OFFSET,
    BitChannelOutcome,
    run_attack,
    victim_map,
)
from repro.config import SimConfig
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import (
    R0, R10, R11, R15, R20, R21, R22, R23, R24, R26,
)

_MAP = victim_map("spectre_icache")
ARRAY_BASE = _MAP["array"]
SIZE_ADDR = _MAP["size"]
SECRET_ADDR = ARRAY_BASE + SECRET_OFFSET
TRAIN_CALLS = 4
N_BITS = 8
# Warm call+ret ~ 15 cycles; a cold stub pays an off-chip i-fetch (~140).
WARM_THRESHOLD = 60
LEAK_MARGIN = 40


def build_program(secret: int = 42) -> Program:
    asm = Assembler("spectre_icache")
    asm.word(SIZE_ADDR, ARRAY_SIZE)
    asm.data(ARRAY_BASE, bytes([0] * ARRAY_SIZE))
    asm.data(SECRET_ADDR, bytes([secret]))
    asm.jmp("main")

    # Per-bit victims: identical to the NetSpectre gadget, but the
    # bit-gated instruction is a direct jump into a cold code stub.
    for bit in range(N_BITS):
        asm.label("victim_%d" % bit)
        asm.li(R20, SIZE_ADDR)
        asm.load(R20, R20, 0)
        asm.bge(R10, R20, "victim_done_%d" % bit)
        asm.add(R21, R11, R10)
        asm.loadb(R21, R21, 0)  # (1) access
        asm.shri(R21, R21, bit)
        asm.andi(R21, R21, 1)
        asm.shli(R23, R21, 1)
        asm.li(R22, asm.here + 5)  # pc of victim_done below
        asm.sub(R22, R22, R23)
        asm.jr(R22)  # done (bit=0) or the stub jump (bit=1)
        asm.jmp("stub_%d" % bit)  # (2) transmit: fetch fills the i-line
        asm.nop()
        asm.label("victim_done_%d" % bit)
        asm.ret()

    # The cold stubs: one per bit, each alone on its own i-cache line and
    # never executed (or even fetched) before its recover call.
    asm.align(16)
    for bit in range(N_BITS):
        asm.label("stub_%d" % bit)
        asm.ret()
        asm.align(16)

    asm.label("main")
    asm.li(R11, ARRAY_BASE)
    asm.li(R20, SECRET_ADDR)
    asm.loadb(R21, R20, 0)  # warm the secret's line

    for bit in range(N_BITS):
        for train in range(TRAIN_CALLS):
            asm.li(R10, train % ARRAY_SIZE)
            asm.call("victim_%d" % bit)
        # Fence BEFORE flushing: under InvisiSpec, an earlier invisible
        # training load may otherwise expose (refill) the line after the
        # flush executes out of order.
        asm.fence()
        asm.li(R20, SIZE_ADDR)
        asm.clflush(R20, 0)
        asm.fence()
        asm.li(R10, SECRET_OFFSET)
        asm.call("victim_%d" % bit)
        asm.fence()
        # (3) recover: time an architectural call into the stub.  The call
        # must be *indirect* through a fresh call site: a direct call's
        # target would be fetched (and the line warmed) while the rdtsc
        # below still blocks dispatch — the measurement would warm its own
        # target.  A BTB-missing indirect call stalls fetch until it
        # resolves, which is after t1 commits.
        asm.rdtsc(R22)
        asm.li(R21, asm._labels["stub_%d" % bit])
        asm.callr(R21)
        asm.rdtsc(R23)
        asm.sub(R24, R23, R22)
        asm.li(R26, RESULTS_BASE + bit * 8)
        asm.store(R24, R26, 0)
    asm.halt()
    return asm.build()


def run(
    config: SimConfig,
    secret: int = 42,
    guesses: Optional[List[int]] = None,  # unused: bit-serial channel
    in_order: bool = False,
    fast_forward: bool = True,
) -> BitChannelOutcome:
    """Run the i-cache-channel attack on *config*."""
    program = build_program(secret)
    outcome = run_attack(
        program, config, in_order=in_order, fast_forward=fast_forward
    )
    memory = outcome.state.memory
    bit_timings = [
        memory.read_word(RESULTS_BASE + bit * 8) for bit in range(N_BITS)
    ]
    return BitChannelOutcome(
        attack="spectre_icache",
        channel="i-cache",
        config_label=outcome.label,
        secret=secret,
        bit_timings=bit_timings,
        threshold=WARM_THRESHOLD,
        margin_required=LEAK_MARGIN,
        outcome=outcome,
    )
