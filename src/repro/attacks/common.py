"""Shared infrastructure for the attack proof-of-concepts.

Every attack is a complete micro-op program that runs on a simulated core:
it mis-trains predictors / arranges hardware state, triggers wrong-path
execution that accesses and covertly transmits a secret, and then executes
a *recover phase* that times the covert channel with ``RDTSC`` and stores
one cycle count per guess into a results array.  The host-side harness
reads the results array out of final memory and decides whether the secret
leaked.

Channel layout notes:

* The probe array uses a 4160-byte stride (4 kB + one line) instead of the
  paper's 512 so that consecutive guesses never collide in an L1 set during
  the destructive recover loop — the same trick real PoCs use.
* ``RDTSC`` is serializing in this ISA (it issues only at the head of the
  ROB), which gives it ``rdtscp``-like fencing semantics without extra
  fences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import SimConfig
from repro.core.inorder import InOrderCore
from repro.core import make_core
from repro.core.outcome import RunOutcome
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import R0, R20, R21, R22, R23, R24, R26, R29

# Shared memory map for attack programs (distinct from workload addresses).
PROBE_BASE = 0x0200_0000
PROBE_STRIDE = 4160  # 4 kB + one line: guess lines never alias in the L1
N_BYTE_VALUES = 256
RESULTS_BASE = 0x0300_0000
SCRATCH_BASE = 0x0310_0000  # link-register save slots etc.

# Victim-side constants shared by several PoCs (and the fuzz generator).
ARRAY_SIZE = 8  # victim array length used by every bounds-check gadget
SECRET_OFFSET = 0x1000  # array[SECRET_OFFSET] aliases the secret byte

# Per-attack victim memory maps.  Every PoC gets its own non-overlapping
# block so that one attack's warm-up can never pollute another's channel
# when programs are concatenated or compared; the single table below is
# the one place those block assignments live (the attack modules and the
# fuzz generator all import from here).
VICTIM_MAPS = {
    "spectre_v1_cache": {"array": 0x0050_0000, "size": 0x0051_0000},
    "spectre_v1_btb": {
        "array": 0x0052_0000, "size": 0x0053_0000, "table": 0x0054_0000,
    },
    "spectre_v2": {"array": 0x0056_0000, "fptr": 0x0057_0000},
    "gpr_steering": {"secret": 0x0058_0000, "size": 0x0059_0000},
    "netspectre": {"array": 0x005A_0000, "size": 0x005B_0000},
    "spectre_icache": {"array": 0x005C_0000, "size": 0x005D_0000},
    "fuzz": {
        "array": 0x0060_0000, "size": 0x0061_0000, "table": 0x0062_0000,
        "slot": 0x0063_0000,
    },
    "meltdown": {
        "kernel": 0x0700_0000, "slow_chain": 0x0071_0000,
        "flag": 0x0072_0000,
    },
    "lazyfp": {"slow_chain": 0x0073_0000},
    "ssb": {"slot": 0x0080_0000},
}


def victim_map(attack: str) -> dict:
    """The victim memory-map block assigned to *attack*."""
    return VICTIM_MAPS[attack]

# Margins for deciding that a timing difference constitutes a leak.
CACHE_LEAK_MARGIN = 20  # cycles; L1/L2 hit vs DRAM differ by >= ~100
BTB_LEAK_MARGIN = 5  # cycles; correct vs squashed prediction ~ 10-20


@dataclass
class AttackOutcome:
    """Result of one attack run on one configuration."""

    attack: str
    channel: str
    config_label: str
    secret: int
    timings: List[int]
    guesses: List[int]
    margin_required: int
    outcome: RunOutcome = field(repr=False, default=None)

    @property
    def recovered(self) -> int:
        """The guess whose access was fastest."""
        best = min(range(len(self.timings)), key=lambda i: self.timings[i])
        return self.guesses[best]

    @property
    def margin(self) -> float:
        """How far the fastest guess sits below the median timing."""
        ordered = sorted(self.timings)
        median = ordered[len(ordered) // 2]
        return median - min(self.timings)

    @property
    def leaked(self) -> bool:
        """True when the secret is recoverable from the covert channel."""
        return (
            self.recovered == self.secret
            and self.margin >= self.margin_required
        )

    def timing_of(self, guess: int) -> int:
        return self.timings[self.guesses.index(guess)]

    def __repr__(self) -> str:
        return (
            "<AttackOutcome %s/%s on %s: secret=%d recovered=%d "
            "margin=%.0f leaked=%s>"
            % (self.attack, self.channel, self.config_label, self.secret,
               self.recovered, self.margin, self.leaked)
        )


@dataclass
class BitChannelOutcome:
    """Result of a bit-serial covert channel (NetSpectre / i-cache PoCs).

    These channels transmit one bit per experiment; eight experiments
    reconstruct a byte.  ``bit_timings`` holds one cycle count per bit,
    and a bit decodes to 1 when its timing is *fast* (the wrong path
    warmed the structure).
    """

    attack: str
    channel: str
    config_label: str
    secret: int
    bit_timings: List[int]
    threshold: int  # timings strictly below decode as bit == 1
    margin_required: int
    outcome: RunOutcome = field(repr=False, default=None)

    @property
    def recovered(self) -> int:
        value = 0
        for bit, timing in enumerate(self.bit_timings):
            if timing < self.threshold:
                value |= 1 << bit
        return value

    @property
    def margin(self) -> float:
        """Separation between the fast and slow timing clusters."""
        fast = [t for t in self.bit_timings if t < self.threshold]
        slow = [t for t in self.bit_timings if t >= self.threshold]
        if not fast or not slow:
            return 0.0
        return min(slow) - max(fast)

    @property
    def leaked(self) -> bool:
        if self.recovered != self.secret:
            return False
        ones = bin(self.secret).count("1")
        if 0 < ones < 8:
            return self.margin >= self.margin_required
        # All-zero / all-one secrets have a single cluster; accept the
        # decode alone (the matrix tests use mixed-bit secrets anyway).
        return True

    def __repr__(self) -> str:
        return (
            "<BitChannelOutcome %s/%s on %s: secret=%d recovered=%d "
            "leaked=%s>"
            % (self.attack, self.channel, self.config_label, self.secret,
               self.recovered, self.leaked)
        )


def run_attack(
    program: Program,
    config: SimConfig,
    in_order: bool = False,
    max_cycles: int = 30_000_000,
    fast_forward: bool = True,
) -> RunOutcome:
    """Execute an attack program on the chosen core.

    ``fast_forward`` toggles the OoO core's bit-identical idle-cycle
    fast-forward (attack outcomes and timings are unchanged either way;
    the flag feeds the equivalence tests).
    """
    if in_order:
        return InOrderCore(program, config).run(max_cycles=max_cycles)
    core = make_core(program, config, fast_forward=fast_forward)
    return core.run(max_cycles=max_cycles)


def read_timings(
    outcome: RunOutcome, guesses: List[int]
) -> List[int]:
    """Pull the recover-phase cycle counts out of final memory."""
    memory = outcome.state.memory
    return [
        memory.read_word(RESULTS_BASE + index * 8)
        for index in range(len(guesses))
    ]


# ---------------------------------------------------------------------- #
# Emission helpers shared by the attack programs.  Register convention for
# these blocks: r20-r29 are scratch; attacks keep their own state in
# r8-r19.
# ---------------------------------------------------------------------- #


def emit_probe_flush(asm: Assembler, guesses: List[int]) -> None:
    """Flush every probe line that the recover phase will time.

    Fenced on both sides: CLFLUSH is weakly ordered, so without the leading
    fence a flush can execute before an *older* in-flight load to the same
    line completes, leaving the line resident (the same pitfall real PoCs
    guard against with ``mfence``).
    """
    asm.fence()
    for guess in guesses:
        asm.li(R20, PROBE_BASE + guess * PROBE_STRIDE)
        asm.clflush(R20, 0)
    asm.fence()


def emit_probe_warm(asm: Assembler, guesses: List[int]) -> None:
    """Touch every probe line (used to pre-fill TLB/page structures)."""
    for guess in guesses:
        asm.li(R20, PROBE_BASE + guess * PROBE_STRIDE)
        asm.load(R21, R20, 0)
    asm.fence()


def emit_cache_recover(asm: Assembler, guesses: List[int]) -> None:
    """Time a probe-array load per guess; store cycles to the results array.

    Phase 3 of Fig. 3 — runs entirely on the architectural (correct) path.
    Before timing, every probe *page* is touched through a non-measured
    line so that TLB walks do not add noise to the per-line timings (the
    TLB is itself a side channel; here we deliberately neutralize it to
    isolate the d-cache signal).
    """
    for guess in guesses:
        asm.li(R20, PROBE_BASE + guess * PROBE_STRIDE + 1024)
        asm.load(R21, R20, 0)
    asm.fence()
    for index, guess in enumerate(guesses):
        asm.li(R20, PROBE_BASE + guess * PROBE_STRIDE)
        asm.rdtsc(R22)
        asm.load(R21, R20, 0)
        asm.rdtsc(R23)
        asm.sub(R24, R23, R22)
        asm.li(R26, RESULTS_BASE + index * 8)
        asm.store(R24, R26, 0)


def default_guesses(
    secret: int, count: int = 64, span: int = 256
) -> List[int]:
    """An evenly spread guess list guaranteed to include the secret.

    Attacks time every guess with a serializing recover loop, so the unit
    tests and the security matrix use a reduced guess set; the figure
    benchmarks pass ``range(256)`` for the full paper-style sweep.
    """
    if count >= span:
        return list(range(span))
    step = max(1, span // count)
    guesses = sorted(set(range(0, span, step)) | {secret})
    return guesses
