"""Shared infrastructure for the attack proof-of-concepts.

Every attack is a complete micro-op program that runs on a simulated core:
it mis-trains predictors / arranges hardware state, triggers wrong-path
execution that accesses and covertly transmits a secret, and then executes
a *recover phase* that times the covert channel with ``RDTSC`` and stores
one cycle count per guess into a results array.  The host-side harness
reads the results array out of final memory and decides whether the secret
leaked.

Channel layout notes:

* The probe array uses a 4160-byte stride (4 kB + one line) instead of the
  paper's 512 so that consecutive guesses never collide in an L1 set during
  the destructive recover loop — the same trick real PoCs use.
* ``RDTSC`` is serializing in this ISA (it issues only at the head of the
  ROB), which gives it ``rdtscp``-like fencing semantics without extra
  fences.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.core.inorder import InOrderCore
from repro.core import make_core
from repro.core.outcome import RunOutcome
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import R0, R20, R21, R22, R23, R24, R26, R27, R29

# Shared memory map for attack programs (distinct from workload addresses).
PROBE_BASE = 0x0200_0000
PROBE_STRIDE = 4160  # 4 kB + one line: guess lines never alias in the L1
N_BYTE_VALUES = 256
RESULTS_BASE = 0x0300_0000
SCRATCH_BASE = 0x0310_0000  # link-register save slots etc.

# Victim-side constants shared by several PoCs (and the fuzz generator).
ARRAY_SIZE = 8  # victim array length used by every bounds-check gadget
SECRET_OFFSET = 0x1000  # array[SECRET_OFFSET] aliases the secret byte

# Per-attack victim memory maps.  Every PoC gets its own non-overlapping
# block so that one attack's warm-up can never pollute another's channel
# when programs are concatenated or compared; the single table below is
# the one place those block assignments live (the attack modules and the
# fuzz generator all import from here).
VICTIM_MAPS = {
    "spectre_v1_cache": {"array": 0x0050_0000, "size": 0x0051_0000},
    "spectre_v1_btb": {
        "array": 0x0052_0000, "size": 0x0053_0000, "table": 0x0054_0000,
    },
    "spectre_v2": {"array": 0x0056_0000, "fptr": 0x0057_0000},
    "gpr_steering": {"secret": 0x0058_0000, "size": 0x0059_0000},
    "netspectre": {"array": 0x005A_0000, "size": 0x005B_0000},
    "spectre_icache": {"array": 0x005C_0000, "size": 0x005D_0000},
    "fuzz": {
        "array": 0x0060_0000, "size": 0x0061_0000, "table": 0x0062_0000,
        "slot": 0x0063_0000,
    },
    "meltdown": {
        "kernel": 0x0700_0000, "slow_chain": 0x0071_0000,
        "flag": 0x0072_0000,
    },
    "lazyfp": {"slow_chain": 0x0073_0000},
    "ssb": {"slot": 0x0080_0000},
    # Cross-context attacks (repro.smt): each pair of programs shares main
    # memory, so the attacker and victim blocks — including the handshake
    # flag words both sides poll — live in one table entry per attack
    # instead of being re-declared per module.  ``flags`` is a base; flag
    # word k sits at ``flags + 8*k``.
    "cross_prime_probe": {
        "array": 0x0090_0000, "size": 0x0091_0000, "flags": 0x0092_0000,
    },
    "cross_btb": {
        "array": 0x0093_0000, "size": 0x0094_0000, "flags": 0x0095_0000,
    },
    "cross_ras": {
        "array": 0x0096_0000, "flags": 0x0097_0000, "scratch": 0x0098_0000,
    },
    "smt_fuzz": {
        "array": 0x009A_0000, "size": 0x009B_0000, "table": 0x009C_0000,
        "flags": 0x009D_0000, "slot": 0x009E_0000,
    },
}


def victim_map(attack: str) -> dict:
    """The victim memory-map block assigned to *attack*."""
    return VICTIM_MAPS[attack]

# Margins for deciding that a timing difference constitutes a leak.
CACHE_LEAK_MARGIN = 20  # cycles; L1/L2 hit vs DRAM differ by >= ~100
BTB_LEAK_MARGIN = 5  # cycles; correct vs squashed prediction ~ 10-20


@dataclass
class AttackOutcome:
    """Result of one attack run on one configuration."""

    attack: str
    channel: str
    config_label: str
    secret: int
    timings: List[int]
    guesses: List[int]
    margin_required: int
    outcome: RunOutcome = field(repr=False, default=None)

    @property
    def recovered(self) -> int:
        """The guess whose access was fastest."""
        best = min(range(len(self.timings)), key=lambda i: self.timings[i])
        return self.guesses[best]

    @property
    def margin(self) -> float:
        """How far the fastest guess sits below the median timing."""
        ordered = sorted(self.timings)
        median = ordered[len(ordered) // 2]
        return median - min(self.timings)

    @property
    def leaked(self) -> bool:
        """True when the secret is recoverable from the covert channel."""
        return (
            self.recovered == self.secret
            and self.margin >= self.margin_required
        )

    def timing_of(self, guess: int) -> int:
        return self.timings[self.guesses.index(guess)]

    def __repr__(self) -> str:
        return (
            "<AttackOutcome %s/%s on %s: secret=%d recovered=%d "
            "margin=%.0f leaked=%s>"
            % (self.attack, self.channel, self.config_label, self.secret,
               self.recovered, self.margin, self.leaked)
        )


@dataclass
class BitChannelOutcome:
    """Result of a bit-serial covert channel (NetSpectre / i-cache PoCs).

    These channels transmit one bit per experiment; eight experiments
    reconstruct a byte.  ``bit_timings`` holds one cycle count per bit,
    and a bit decodes to 1 when its timing is *fast* (the wrong path
    warmed the structure).
    """

    attack: str
    channel: str
    config_label: str
    secret: int
    bit_timings: List[int]
    threshold: int  # timings strictly below decode as bit == 1
    margin_required: int
    outcome: RunOutcome = field(repr=False, default=None)

    @property
    def recovered(self) -> int:
        value = 0
        for bit, timing in enumerate(self.bit_timings):
            if timing < self.threshold:
                value |= 1 << bit
        return value

    @property
    def margin(self) -> float:
        """Separation between the fast and slow timing clusters."""
        fast = [t for t in self.bit_timings if t < self.threshold]
        slow = [t for t in self.bit_timings if t >= self.threshold]
        if not fast or not slow:
            return 0.0
        return min(slow) - max(fast)

    @property
    def leaked(self) -> bool:
        if self.recovered != self.secret:
            return False
        ones = bin(self.secret).count("1")
        if 0 < ones < 8:
            return self.margin >= self.margin_required
        # All-zero / all-one secrets have a single cluster; accept the
        # decode alone (the matrix tests use mixed-bit secrets anyway).
        return True

    def __repr__(self) -> str:
        return (
            "<BitChannelOutcome %s/%s on %s: secret=%d recovered=%d "
            "leaked=%s>"
            % (self.attack, self.channel, self.config_label, self.secret,
               self.recovered, self.leaked)
        )


def run_attack(
    program: Program,
    config: SimConfig,
    in_order: bool = False,
    max_cycles: int = 30_000_000,
    fast_forward: bool = True,
) -> RunOutcome:
    """Execute an attack program on the chosen core.

    ``fast_forward`` toggles the OoO core's bit-identical idle-cycle
    fast-forward (attack outcomes and timings are unchanged either way;
    the flag feeds the equivalence tests).
    """
    if in_order:
        return InOrderCore(program, config).run(max_cycles=max_cycles)
    core = make_core(program, config, fast_forward=fast_forward)
    return core.run(max_cycles=max_cycles)


def read_timings(
    outcome: RunOutcome, guesses: List[int]
) -> List[int]:
    """Pull the recover-phase cycle counts out of final memory."""
    memory = outcome.state.memory
    return [
        memory.read_word(RESULTS_BASE + index * 8)
        for index in range(len(guesses))
    ]


# ---------------------------------------------------------------------- #
# Emission helpers shared by the attack programs.  Register convention for
# these blocks: r20-r29 are scratch; attacks keep their own state in
# r8-r19.
# ---------------------------------------------------------------------- #


def emit_probe_flush(asm: Assembler, guesses: List[int]) -> None:
    """Flush every probe line that the recover phase will time.

    Fenced on both sides: CLFLUSH is weakly ordered, so without the leading
    fence a flush can execute before an *older* in-flight load to the same
    line completes, leaving the line resident (the same pitfall real PoCs
    guard against with ``mfence``).
    """
    asm.fence()
    for guess in guesses:
        asm.li(R20, PROBE_BASE + guess * PROBE_STRIDE)
        asm.clflush(R20, 0)
    asm.fence()


def emit_probe_warm(asm: Assembler, guesses: List[int]) -> None:
    """Touch every probe line (used to pre-fill TLB/page structures)."""
    for guess in guesses:
        asm.li(R20, PROBE_BASE + guess * PROBE_STRIDE)
        asm.load(R21, R20, 0)
    asm.fence()


def emit_cache_recover(asm: Assembler, guesses: List[int]) -> None:
    """Time a probe-array load per guess; store cycles to the results array.

    Phase 3 of Fig. 3 — runs entirely on the architectural (correct) path.
    Before timing, every probe *page* is touched through a non-measured
    line so that TLB walks do not add noise to the per-line timings (the
    TLB is itself a side channel; here we deliberately neutralize it to
    isolate the d-cache signal).
    """
    for guess in guesses:
        asm.li(R20, PROBE_BASE + guess * PROBE_STRIDE + 1024)
        asm.load(R21, R20, 0)
    asm.fence()
    for index, guess in enumerate(guesses):
        asm.li(R20, PROBE_BASE + guess * PROBE_STRIDE)
        asm.rdtsc(R22)
        asm.load(R21, R20, 0)
        asm.rdtsc(R23)
        asm.sub(R24, R23, R22)
        asm.li(R26, RESULTS_BASE + index * 8)
        asm.store(R24, R26, 0)


# ---------------------------------------------------------------------- #
# Cross-context (repro.smt) helpers.  The attacker and victim are separate
# programs sharing one main memory; they synchronize through flag words
# (main memory is architecturally coherent — the caches model timing only)
# and, where the channel requires it, place key instructions at *matching*
# PCs in both address spaces (the shared BTB is PC-indexed).
# ---------------------------------------------------------------------- #


def pad_to(asm: Assembler, pc: int) -> None:
    """NOP-pad so the next emitted instruction lands exactly at *pc*.

    Cross-context attacks on PC-indexed shared structures (BTB, RAS) need
    the attacker's and victim's key instructions at identical PCs; this
    raises immediately when a program has already grown past the slot.
    """
    gap = pc - asm.here
    if gap < 0:
        raise ValueError(
            "program %r already at pc %d, cannot pad back to %d"
            % (asm.name, asm.here, pc)
        )
    asm.nops(gap)


def emit_set_flag(asm: Assembler, addr: int, value: int = 1) -> None:
    """Store *value* to the flag word at *addr*, fenced afterwards."""
    asm.li(R29, addr)
    asm.li(R27, value)
    asm.store(R27, R29, 0)
    asm.fence()


def emit_spin_nonzero(asm: Assembler, addr: int) -> None:
    """Spin until the flag word at *addr* is non-zero.

    The trailing fence keeps wrong-path execution past the spin exit from
    dispatching before the flag is architecturally observed — without it
    the code after a spin could run transiently while the other context
    is still setting up.
    """
    label = "spin_nz_%d" % asm.here
    asm.li(R29, addr)
    asm.label(label)
    asm.load(R27, R29, 0)
    asm.beq(R27, R0, label)
    asm.fence()


def emit_spin_geq(asm: Assembler, addr: int, reg: int) -> None:
    """Spin until the counter word at *addr* is >= the value in *reg*.

    The REQ/ACK handshake primitive for per-round lockstep between the
    contexts; fenced like :func:`emit_spin_nonzero`.
    """
    label = "spin_geq_%d" % asm.here
    asm.li(R29, addr)
    asm.label(label)
    asm.load(R27, R29, 0)
    asm.blt(R27, reg, label)
    asm.fence()


def run_cross_attack(
    programs: Sequence[Program],
    config: SimConfig,
    sharing: str,
    max_cycles: int = 30_000_000,
    fast_forward: bool = True,
) -> Tuple[object, List[RunOutcome]]:
    """Run an attacker/victim pair co-resident under *config*'s scheme.

    Derives the two-context config (the protection scheme, core, and
    memory parameters are taken from *config*; ``sharing`` picks the
    co-residency mode) and runs both programs on an
    :class:`~repro.smt.SmtMachine`.  Returns ``(machine, outcomes)`` —
    the machine so callers can also pin the arbiter's interleave digest.
    """
    from repro.smt import SmtMachine

    two = replace(
        config, num_contexts=len(programs), sharing=sharing,
        engine="reference",
    ).validate()
    machine = SmtMachine(list(programs), two, fast_forward=fast_forward)
    outcomes = machine.run(max_cycles=max_cycles)
    return machine, outcomes


def default_guesses(
    secret: int, count: int = 64, span: int = 256
) -> List[int]:
    """An evenly spread guess list guaranteed to include the secret.

    Attacks time every guess with a serializing recover loop, so the unit
    tests and the security matrix use a reduced guess set; the figure
    benchmarks pass ``range(256)`` for the full paper-style sweep.
    """
    if count >= span:
        return list(range(span))
    step = max(1, span // count)
    guesses = sorted(set(range(0, span, step)) | {secret})
    return guesses
