"""Spectre v2 — branch target injection through the BTB.

The attacker first trains an indirect call site to dispatch to a *gadget*
(by installing the gadget in the function-pointer slot and invoking the
victim with a benign index).  It then restores a benign function pointer,
flushes the pointer's cache line so the indirect call resolves late, and
invokes the victim with a secret-selecting index: fetch follows the stale
BTB prediction into the gadget, which loads the secret and transmits it
through the d-cache before the squash.

Control-steering attack: blocked by every NDA policy and by InvisiSpec
(it uses the cache as its transmit channel).
"""

from __future__ import annotations

from typing import List, Optional

from repro.attacks.common import (
    CACHE_LEAK_MARGIN,
    PROBE_BASE,
    PROBE_STRIDE,
    SCRATCH_BASE,
    AttackOutcome,
    default_guesses,
    emit_cache_recover,
    emit_probe_flush,
    read_timings,
    run_attack,
    victim_map,
)
from repro.config import SimConfig
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import LR, R10, R11, R12, R13, R20, R21, R24, R28

_MAP = victim_map("spectre_v2")
ARRAY_BASE = _MAP["array"]
FPTR_ADDR = _MAP["fptr"]
LR_SAVE = SCRATCH_BASE + 0x200
BENIGN_INDEX = 0
BENIGN_VALUE = 7
SECRET_INDEX = 0x2000
TRAIN_CALLS = 4


def build_program(
    secret: int = 42, guesses: Optional[List[int]] = None
) -> Program:
    guesses = guesses if guesses is not None else default_guesses(secret)
    asm = Assembler("spectre_v2")
    asm.data(ARRAY_BASE + BENIGN_INDEX, bytes([BENIGN_VALUE]))
    asm.data(ARRAY_BASE + SECRET_INDEX, bytes([secret]))

    asm.jmp("main")

    # The victim's indirect dispatch: r10 = index argument.
    asm.label("dispatcher")
    asm.li(R24, LR_SAVE)
    asm.store(LR, R24, 0)
    asm.li(R20, FPTR_ADDR)
    asm.load(R20, R20, 0)
    asm.callr(R20)  # steered via the BTB while the pointer load is in flight
    asm.li(R24, LR_SAVE)
    asm.load(LR, R24, 0)
    asm.ret()

    # The gadget the attacker wants to run speculatively: it dereferences
    # array[r10] and touches a probe line derived from the value.
    asm.label("gadget")
    asm.add(R21, R11, R10)
    asm.loadb(R21, R21, 0)  # access
    asm.mul(R21, R21, R13)
    asm.add(R21, R21, R12)
    asm.load(R21, R21, 0)  # transmit
    asm.ret()

    asm.label("benign")
    asm.ret()

    asm.label("main")
    asm.li(R11, ARRAY_BASE)
    asm.li(R12, PROBE_BASE)
    asm.li(R13, PROBE_STRIDE)
    # Warm the secret's line (the victim touched it on its own earlier).
    asm.li(R20, ARRAY_BASE + SECRET_INDEX)
    asm.loadb(R21, R20, 0)
    # Poison phase: point the function pointer at the gadget and train the
    # BTB with benign invocations.
    asm.li(R20, 0)  # patched below to the gadget's PC
    asm.label("after_gadget_li")
    asm.li(R21, FPTR_ADDR)
    asm.store(R20, R21, 0)
    asm.fence()
    for _ in range(TRAIN_CALLS):
        asm.li(R10, BENIGN_INDEX)
        asm.call("dispatcher")
    # Restore the benign pointer, flush it so the attack call's dispatch
    # resolves late, and clear the probe lines.
    asm.li(R20, 0)  # patched below to benign's PC
    asm.label("after_benign_li")
    asm.li(R21, FPTR_ADDR)
    asm.store(R20, R21, 0)
    asm.fence()
    emit_probe_flush(asm, guesses)
    asm.li(R21, FPTR_ADDR)
    asm.clflush(R21, 0)
    asm.fence()
    # Attack call: architecturally runs `benign`, speculatively the gadget.
    asm.li(R10, SECRET_INDEX)
    asm.call("dispatcher")
    asm.fence()
    emit_cache_recover(asm, guesses)
    asm.halt()

    program = asm.build()
    _patch_pc_immediates(program, asm)
    return program


def _patch_pc_immediates(program: Program, asm: Assembler) -> None:
    """Fill in the li immediates that hold function PCs.

    The assembler resolves labels for branch targets only; two ``li``
    instructions need *code addresses* as data, which are only known after
    layout, so they are patched post-build.
    """
    labels = asm._labels
    gadget_pc = labels["gadget"]
    benign_pc = labels["benign"]
    for marker, value in (
        ("after_gadget_li", gadget_pc),
        ("after_benign_li", benign_pc),
    ):
        li_instr = program.instrs[labels[marker] - 1]
        li_instr.imm = value


def run(
    config: SimConfig,
    secret: int = 42,
    guesses: Optional[List[int]] = None,
    in_order: bool = False,
    fast_forward: bool = True,
) -> AttackOutcome:
    """Run the branch-target-injection attack on *config*."""
    guesses = guesses if guesses is not None else default_guesses(secret)
    program = build_program(secret, guesses)
    outcome = run_attack(
        program, config, in_order=in_order, fast_forward=fast_forward
    )
    return AttackOutcome(
        attack="spectre_v2",
        channel="cache",
        config_label=outcome.label,
        secret=secret,
        timings=read_timings(outcome, guesses),
        guesses=guesses,
        margin_required=CACHE_LEAK_MARGIN,
        outcome=outcome,
    )
