"""Control-steering attack on a register-resident secret (§4.2).

No documented attack leaks from general-purpose registers, but the paper's
second threat model anticipates one: the victim already holds a secret in a
GPR when the attacker steers its control flow, and the wrong path
pre-processes and transmits the register's contents.  NDA's *strict*
propagation exists precisely for this case — permissive propagation marks
only loads unsafe, so the (non-load) pre-processing chain still runs and
the attack succeeds.

Expected Table 2 column: blocked by Strict, Strict+BR, and Full Protection
(the GPR diamonds), and by InvisiSpec (it transmits through the d-cache);
it leaks under Permissive(+BR) and Restricted Loads, which do not protect
GPRs.
"""

from __future__ import annotations

from typing import List, Optional

from repro.attacks.common import (
    CACHE_LEAK_MARGIN,
    PROBE_BASE,
    PROBE_STRIDE,
    AttackOutcome,
    default_guesses,
    emit_cache_recover,
    emit_probe_flush,
    read_timings,
    run_attack,
    victim_map,
)
from repro.config import SimConfig
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import R0, R10, R11, R12, R13, R20, R21

_MAP = victim_map("gpr_steering")
SECRET_ADDR = _MAP["secret"]
SIZE_ADDR = _MAP["size"]
BOUND = 8
TRAIN_CALLS = 5


def build_program(
    secret: int = 42, guesses: Optional[List[int]] = None
) -> Program:
    guesses = guesses if guesses is not None else default_guesses(secret)
    asm = Assembler("gpr_steering")
    asm.word(SIZE_ADDR, BOUND)
    asm.data(SECRET_ADDR, bytes([secret]))
    asm.jmp("main")

    # Victim: the secret is already in r10; r11 is an attacker-influenced
    # index.  The in-bounds path's own micro-ops double as the wrong-path
    # transmit gadget.
    asm.label("victim")
    asm.li(R20, SIZE_ADDR)
    asm.load(R20, R20, 0)
    asm.bge(R11, R20, "victim_done")  # the steering point
    asm.mul(R21, R10, R13)  # pre-process the GPR (non-load: safe under
    asm.add(R21, R21, R12)  # permissive propagation!)
    asm.load(R21, R21, 0)  # transmit
    asm.label("victim_done")
    asm.li(R10, 0)  # scrub
    asm.ret()

    asm.label("main")
    asm.li(R12, PROBE_BASE)
    asm.li(R13, PROBE_STRIDE)
    # The victim's secret line is warm (it uses the value regularly).
    asm.li(R20, SECRET_ADDR)
    asm.loadb(R21, R20, 0)
    # Train the bounds check in-bounds with a harmless r10.
    for index in range(TRAIN_CALLS):
        asm.li(R10, 0)
        asm.li(R11, index % BOUND)
        asm.call("victim")
    emit_probe_flush(asm, guesses)
    asm.li(R20, SIZE_ADDR)
    asm.clflush(R20, 0)
    asm.fence()
    # The victim loads its secret into r10, then the attacker invokes it
    # with an out-of-bounds index: the wrong path transmits the register.
    asm.li(R20, SECRET_ADDR)
    asm.loadb(R10, R20, 0)
    asm.li(R11, 0x1000)
    asm.call("victim")
    asm.fence()
    emit_cache_recover(asm, guesses)
    asm.halt()
    return asm.build()


def run(
    config: SimConfig,
    secret: int = 42,
    guesses: Optional[List[int]] = None,
    in_order: bool = False,
    fast_forward: bool = True,
) -> AttackOutcome:
    """Run the GPR-steering attack on *config*."""
    guesses = guesses if guesses is not None else default_guesses(secret)
    program = build_program(secret, guesses)
    outcome = run_attack(
        program, config, in_order=in_order, fast_forward=fast_forward
    )
    return AttackOutcome(
        attack="gpr_steering",
        channel="d-cache",
        config_label=outcome.label,
        secret=secret,
        timings=read_timings(outcome, guesses),
        guesses=guesses,
        margin_required=CACHE_LEAK_MARGIN,
        outcome=outcome,
    )
