"""Spectre v1 with the BTB covert channel (the paper's §3 / Listing 3).

Identical access phase to :mod:`repro.attacks.spectre_v1`, but the transmit
phase leaks through the *branch target buffer*: the wrong path calls
``jumpToTarget(secret)``, an indirect call made from a single call site, so
the BTB entry for that site ends up pointing at ``targets[secret]``.  The
squash does not revert the BTB.  The recover phase re-runs the access phase
for every guess (the channel is destructive) and times
``jumpToTarget(guess)``: only the correct guess predicts the target and
avoids the ~16-cycle misprediction penalty (paper Fig. 5).

Every cache line involved (targets table, target functions) is kept warm
during access, transmit, and recovery, so timing differences can come only
from the BTB — the validation step the paper describes in §3.

This attack defeats cache-only defenses: it leaks under both InvisiSpec
variants but is blocked by every NDA policy.
"""

from __future__ import annotations

from typing import List, Optional

from repro.attacks.common import (
    ARRAY_SIZE,
    BTB_LEAK_MARGIN,
    RESULTS_BASE,
    SCRATCH_BASE,
    SECRET_OFFSET,
    AttackOutcome,
    default_guesses,
    read_timings,
    run_attack,
    victim_map,
)
from repro.config import SimConfig
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import (
    LR, R0, R10, R11, R14, R20, R21, R22, R23, R24, R26,
)

_MAP = victim_map("spectre_v1_btb")
ARRAY_BASE = _MAP["array"]
SIZE_ADDR = _MAP["size"]
SECRET_ADDR = ARRAY_BASE + SECRET_OFFSET
TARGETS_TABLE = _MAP["table"]  # 256 function pointers
LR_SAVE_JUMP = SCRATCH_BASE + 0x100
LR_SAVE_VICTIM = SCRATCH_BASE + 0x108
N_TARGETS = 256
TRAIN_CALLS = 3


def build_program(
    secret: int = 42, guesses: Optional[List[int]] = None
) -> Program:
    guesses = guesses if guesses is not None else default_guesses(secret)
    asm = Assembler("spectre_v1_btb")
    asm.word(SIZE_ADDR, ARRAY_SIZE)
    asm.data(ARRAY_BASE, bytes(range(1, ARRAY_SIZE + 1)))
    asm.data(SECRET_ADDR, bytes([secret]))

    asm.jmp("main")

    # jumpToTarget (Listing 3 lines 5-6): r10 = index; single indirect call
    # site, so all targets conflict on one BTB entry.
    asm.label("jump_to_target")
    asm.li(R24, LR_SAVE_JUMP)
    asm.store(LR, R24, 0)
    asm.shli(R21, R10, 3)
    asm.add(R21, R21, R14)  # r14 = targets table base
    asm.load(R21, R21, 0)
    asm.callr(R21)  # the covert channel
    asm.li(R24, LR_SAVE_JUMP)
    asm.load(LR, R24, 0)
    asm.ret()

    # Victim (Listing 3 lines 7-14): r10 = x.
    asm.label("victim")
    asm.li(R24, LR_SAVE_VICTIM)
    asm.store(LR, R24, 0)
    asm.li(R20, SIZE_ADDR)
    asm.load(R20, R20, 0)
    asm.bge(R10, R20, "victim_done")
    asm.add(R21, R11, R10)
    asm.loadb(R10, R21, 0)  # (1) access: r10 = secret
    asm.call("jump_to_target")  # (2) transmit: BTB := targets[secret]
    asm.label("victim_done")
    asm.li(R24, LR_SAVE_VICTIM)
    asm.load(LR, R24, 0)
    asm.ret()

    asm.label("main")
    asm.li(R11, ARRAY_BASE)
    asm.li(R14, TARGETS_TABLE)
    # Warm the secret line and every channel structure so the cache cannot
    # carry the signal (§3: "no change to the cache hierarchy during the
    # attack may depend upon the secret value").
    asm.li(R20, SECRET_ADDR)
    asm.loadb(R21, R20, 0)
    for index in range(N_TARGETS):
        asm.li(R20, TARGETS_TABLE + index * 8)
        asm.load(R21, R20, 0)
    # Execute every target once (direct calls, so the BTB entry of the
    # covert call site is untouched): their instruction-cache lines must be
    # warm or the recover phase would time the i-cache, not the BTB.
    for index in range(N_TARGETS):
        asm.call("tgt_%d" % index)
    asm.fence()

    # Recover phase (Listing 3 lines 17-24).  The channel is destructive,
    # so each guess re-runs training + access + transmit first.
    for index, guess in enumerate(guesses):
        # Vary the training-call count per iteration: a fixed period would
        # let a global-history predictor learn the train/attack rhythm and
        # stop mis-speculating (real PoCs randomize for the same reason).
        for train in range(TRAIN_CALLS + (index * 5 + 3) % 4):
            asm.li(R10, train % ARRAY_SIZE)
            asm.call("victim")
        asm.li(R20, SIZE_ADDR)
        asm.clflush(R20, 0)
        asm.fence()
        asm.li(R10, SECRET_OFFSET)
        asm.call("victim")  # wrong path updates the BTB with the secret
        asm.fence()
        asm.li(R10, guess)
        asm.rdtsc(R22)
        asm.call("jump_to_target")
        asm.rdtsc(R23)
        asm.sub(R24, R23, R22)
        asm.li(R26, RESULTS_BASE + index * 8)
        asm.store(R24, R26, 0)
    asm.halt()

    # 256 distinct target functions (Listing 3 line 2).
    target_pcs = []
    for index in range(N_TARGETS):
        asm.label("tgt_%d" % index)
        target_pcs.append(asm.here)
        asm.ret()
    for index, pc in enumerate(target_pcs):
        asm.word(TARGETS_TABLE + index * 8, pc)
    return asm.build()


def run(
    config: SimConfig,
    secret: int = 42,
    guesses: Optional[List[int]] = None,
    in_order: bool = False,
    fast_forward: bool = True,
) -> AttackOutcome:
    """Run the BTB-channel attack on *config*."""
    guesses = guesses if guesses is not None else default_guesses(secret)
    program = build_program(secret, guesses)
    outcome = run_attack(
        program, config, in_order=in_order, fast_forward=fast_forward
    )
    return AttackOutcome(
        attack="spectre_v1",
        channel="btb",
        config_label=outcome.label,
        secret=secret,
        timings=read_timings(outcome, guesses),
        guesses=guesses,
        margin_required=BTB_LEAK_MARGIN,
        outcome=outcome,
    )
