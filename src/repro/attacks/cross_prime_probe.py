"""Cross-context PRIME+PROBE over the shared L2 (``sharing="l2"``).

Two full cores share only the L2.  The victim context runs a classic
bounds-check-bypass gadget against *its own* mis-trained predictor; the
attacker context never executes victim code at all — it primes the probe
lines out of the shared L2, signals the victim to fire, and then times
the probe lines from its own core.  The victim's wrong-path transmit load
fills the shared L2, so the secret's line comes back at L2-hit latency
while every other guess pays the DRAM round trip.

This is the co-residency channel NDA's threat model calls out: no shared
address-space entry point is needed, only a shared cache level.  Blocked
by every NDA policy and by InvisiSpec (the transmit load never fills);
leaks under the unprotected baseline.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.attacks.common import (
    ARRAY_SIZE,
    CACHE_LEAK_MARGIN,
    PROBE_BASE,
    PROBE_STRIDE,
    SECRET_OFFSET,
    AttackOutcome,
    default_guesses,
    emit_cache_recover,
    emit_probe_flush,
    emit_set_flag,
    emit_spin_nonzero,
    read_timings,
    run_cross_attack,
    victim_map,
)
from repro.config import SimConfig
from repro.errors import ConfigError
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import R10, R11, R12, R13, R20, R21

SHARING = "l2"

_MAP = victim_map("cross_prime_probe")
ARRAY_BASE = _MAP["array"]
SIZE_ADDR = _MAP["size"]
SECRET_ADDR = ARRAY_BASE + SECRET_OFFSET
GO_FLAG = _MAP["flags"] + 0  # attacker -> victim: probes are primed, fire
DONE_FLAG = _MAP["flags"] + 8  # victim -> attacker: transmit attempted
TRAIN_CALLS = 6


def build_programs(
    secret: int = 42, guesses: Optional[List[int]] = None
) -> Tuple[Program, Program]:
    """Assemble the (attacker, victim) pair."""
    guesses = guesses if guesses is not None else default_guesses(secret)

    # Attacker (context 0): prime -> signal -> wait -> probe.
    atk = Assembler("cross_pp_attacker")
    emit_probe_flush(atk, guesses)
    emit_set_flag(atk, GO_FLAG)
    emit_spin_nonzero(atk, DONE_FLAG)
    emit_cache_recover(atk, guesses)
    atk.halt()

    # Victim (context 1): the Listing-1 gadget, self-trained; it fires
    # once the attacker has primed the probe lines out of the shared L2.
    vic = Assembler("cross_pp_victim")
    vic.word(SIZE_ADDR, ARRAY_SIZE)
    vic.data(ARRAY_BASE, bytes(range(1, ARRAY_SIZE + 1)))
    vic.data(SECRET_ADDR, bytes([secret]))

    vic.jmp("main")
    vic.label("victim")
    vic.li(R20, SIZE_ADDR)
    vic.load(R20, R20, 0)  # array_size (flushed before the attack call)
    vic.bge(R10, R20, "victim_done")
    vic.add(R21, R11, R10)
    vic.loadb(R21, R21, 0)  # access: secret = array[x]
    vic.mul(R21, R21, R13)
    vic.add(R21, R21, R12)
    vic.load(R21, R21, 0)  # transmit: fills the *shared* L2
    vic.label("victim_done")
    vic.ret()

    vic.label("main")
    vic.li(R11, ARRAY_BASE)
    vic.li(R12, PROBE_BASE)
    vic.li(R13, PROBE_STRIDE)
    vic.li(R20, SECRET_ADDR)
    vic.loadb(R21, R20, 0)  # the victim touched its secret recently
    for index in range(TRAIN_CALLS):
        vic.li(R10, index % ARRAY_SIZE)
        vic.call("victim")
    emit_spin_nonzero(vic, GO_FLAG)
    vic.li(R20, SIZE_ADDR)
    vic.clflush(R20, 0)
    vic.fence()
    vic.li(R10, SECRET_OFFSET)  # out-of-bounds: array[x] aliases the secret
    vic.call("victim")
    vic.fence()
    emit_set_flag(vic, DONE_FLAG)
    vic.halt()

    return atk.build(), vic.build()


def run(
    config: SimConfig,
    secret: int = 42,
    guesses: Optional[List[int]] = None,
    in_order: bool = False,
    fast_forward: bool = True,
) -> AttackOutcome:
    """Run the attack pair on *config*; report whether the secret leaked."""
    if in_order:
        raise ConfigError(
            "cross-context attacks run on co-resident OoO contexts; the "
            "in-order core has no multi-context mode"
        )
    guesses = guesses if guesses is not None else default_guesses(secret)
    programs = build_programs(secret, guesses)
    _, outcomes = run_cross_attack(
        programs, config, SHARING, fast_forward=fast_forward
    )
    return AttackOutcome(
        attack="cross_prime_probe",
        channel="cross-d-cache",
        config_label=outcomes[0].label,
        secret=secret,
        timings=read_timings(outcomes[0], guesses),
        guesses=guesses,
        margin_required=CACHE_LEAK_MARGIN,
        outcome=outcomes[0],
    )
