"""Cross-context BTB channel on an SMT core (``sharing="smt"``).

The shared BTB is PC-indexed, so a branch the *victim* context executes
at PC ``p`` steers the prediction of any attacker branch placed at the
same PC in the attacker's own address space.  Here the BTB entry itself
is the covert channel (receiver-style, like the paper's ``spectre_v1_btb``
variant, but across contexts):

1. The victim runs a bounds-check-bypass gadget whose wrong path computes
   an indirect-call target from the secret (``T(secret & 7)``) and
   executes ``callr`` at the shared ``BRANCH_PC``.  The transient call
   resolves long before the flushed bounds check does, so its resolution
   *installs the secret-dependent target in the shared BTB* even though
   the call itself is squashed.
2. The attacker times its own ``jr`` at ``BRANCH_PC``: jumping to the
   guessed target ``T(g)`` is fast when the BTB already predicts it and
   pays a squash + refetch penalty otherwise.

Both programs NOP-pad so the key branch sits at ``BRANCH_PC`` and keep
landing pads at the eight ``T(k)`` PCs.  A REQ/ACK counter handshake
re-poisons the entry before every timed guess (the attacker's own jump
resolution overwrites it each round), and round 0 is an untimed warm-up.

Per Table 2: every NDA policy blocks this (the transient target depends
on a deferred load, so the wrong-path ``callr`` never resolves and never
installs), as does fence-on-branch.  InvisiSpec does *not* — it hides
cache fills but still forwards load data to dependents, so the transient
install happens and the secret leaks.  That is exactly the paper's point
that cache-centric defenses miss non-cache channels.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.attacks.common import (
    ARRAY_SIZE,
    BTB_LEAK_MARGIN,
    RESULTS_BASE,
    SCRATCH_BASE,
    SECRET_OFFSET,
    AttackOutcome,
    emit_spin_geq,
    pad_to,
    read_timings,
    run_cross_attack,
    victim_map,
)
from repro.config import SimConfig
from repro.errors import ConfigError
from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import (
    LR,
    R0,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R15,
    R16,
    R17,
    R20,
    R21,
    R22,
    R23,
    R24,
)

SHARING = "smt"

_MAP = victim_map("cross_btb")
ARRAY_BASE = _MAP["array"]
SIZE_ADDR = _MAP["size"]
SECRET_ADDR = ARRAY_BASE + SECRET_OFFSET
REQ_FLAG = _MAP["flags"] + 0  # attacker -> victim: poison round r, please
ACK_FLAG = _MAP["flags"] + 8  # victim -> attacker: entry re-poisoned

# Both programs place their key indirect branch at this exact PC (the
# shared BTB is PC-indexed) and keep landing pads at the target PCs.
BRANCH_PC = 64
PAD_BASE = 96  # i-cache-line aligned; 8 pads of 2 instrs fill one line
PAD_STRIDE = 2
N_TARGETS = 8  # 3-bit channel: target index = secret & 7
N_ROUNDS = N_TARGETS + 1  # round 0 is an untimed cold-structure warm-up


def _target_pc(index: int) -> int:
    return PAD_BASE + index * PAD_STRIDE


def build_programs(secret: int = 5) -> Tuple[Program, Program]:
    """Assemble the (attacker, victim) pair."""

    # Attacker (context 0): per round, bump REQ, wait for ACK, then time
    # one jr through the shared BTB entry.  r8 holds round+1 (1-based).
    atk = Assembler("cross_btb_attacker")
    atk.li(R8, 1)
    atk.li(R9, N_ROUNDS + 1)
    atk.li(R10, REQ_FLAG)
    atk.li(R11, ACK_FLAG)
    atk.label("loop")
    atk.store(R8, R10, 0)  # REQ = round
    emit_spin_geq(atk, ACK_FLAG, R8)
    # Guess for this round: g = round - 2 (round 1 is the warm-up, g = 0).
    atk.subi(R20, R8, 2)
    atk.bge(R20, R0, "have_g")
    atk.li(R20, 0)
    atk.label("have_g")
    atk.shli(R21, R20, 1)  # PAD_STRIDE = 2
    atk.li(R16, PAD_BASE)
    atk.add(R16, R16, R21)  # actual target T(g)
    atk.rdtsc(R13)
    pad_to(atk, BRANCH_PC)
    atk.jr(R16)  # the timed branch: fast iff the BTB predicts T(g)
    pad_to(atk, PAD_BASE)
    for _ in range(N_TARGETS):
        atk.jmp("join")
        atk.nop()
    atk.label("join")
    atk.rdtsc(R22)
    atk.sub(R23, R22, R13)
    atk.subi(R20, R8, 2)
    atk.blt(R20, R0, "skip_store")  # warm-up round is untimed
    atk.shli(R21, R20, 3)
    atk.li(R24, RESULTS_BASE)
    atk.add(R24, R24, R21)
    atk.store(R23, R24, 0)
    atk.label("skip_store")
    atk.addi(R8, R8, 1)
    atk.blt(R8, R9, "loop")
    atk.halt()

    # Victim (context 1): per round, mis-train the bounds check with
    # in-bounds calls (array values are 0, so training installs T(0)),
    # then fire once out of bounds so the wrong path installs
    # T(secret & 7) in the shared BTB.
    vic = Assembler("cross_btb_victim")
    vic.word(SIZE_ADDR, ARRAY_SIZE)
    vic.data(ARRAY_BASE, bytes(ARRAY_SIZE))  # zeros: training target T(0)
    vic.data(SECRET_ADDR, bytes([secret]))

    vic.jmp("main")
    vic.label("victim_fn")
    vic.li(R24, SCRATCH_BASE)
    vic.store(LR, R24, 0)  # callr below clobbers the link register
    vic.li(R20, SIZE_ADDR)
    vic.load(R20, R20, 0)  # flushed before the firing call
    vic.bge(R10, R20, "victim_done")
    vic.add(R21, R11, R10)
    vic.loadb(R21, R21, 0)  # access: secret = array[x]
    vic.andi(R21, R21, 7)
    vic.shli(R21, R21, 1)
    vic.li(R22, PAD_BASE)
    vic.add(R22, R22, R21)
    pad_to(vic, BRANCH_PC)
    vic.callr(R22)  # resolves early; installs T(secret & 7) transiently
    vic.label("victim_done")
    vic.li(R24, SCRATCH_BASE)
    vic.load(LR, R24, 0)
    vic.ret()
    pad_to(vic, PAD_BASE)
    for _ in range(N_TARGETS):
        vic.ret()  # architectural training calls return through here
        vic.nop()

    vic.label("main")
    vic.li(R11, ARRAY_BASE)
    vic.li(R20, SECRET_ADDR)
    vic.loadb(R21, R20, 0)  # the victim touched its secret recently
    vic.li(R8, 1)
    vic.li(R9, N_ROUNDS + 1)
    vic.li(R13, ACK_FLAG)
    vic.label("vloop")
    emit_spin_geq(vic, REQ_FLAG, R8)
    # Vary the training count per round so the shared direction
    # predictor's history tables cannot lock onto the round rhythm.
    vic.andi(R17, R8, 3)
    vic.addi(R17, R17, 4)
    vic.li(R15, 0)
    vic.label("train")
    vic.li(R10, 0)
    vic.call("victim_fn")
    vic.addi(R15, R15, 1)
    vic.blt(R15, R17, "train")
    vic.li(R20, SIZE_ADDR)
    vic.clflush(R20, 0)
    vic.fence()
    vic.li(R10, SECRET_OFFSET)  # out of bounds: aliases the secret byte
    vic.call("victim_fn")
    vic.fence()
    vic.store(R8, R13, 0)  # ACK = round
    vic.addi(R8, R8, 1)
    vic.blt(R8, R9, "vloop")
    vic.fence()
    vic.halt()

    return atk.build(), vic.build()


def run(
    config: SimConfig,
    secret: int = 5,
    guesses: Optional[List[int]] = None,
    in_order: bool = False,
    fast_forward: bool = True,
) -> AttackOutcome:
    """Run the attack pair on *config*; report whether the secret leaked.

    The channel is 3-bit (eight shared-BTB targets, one timed per
    handshake round), so the guess list is always ``range(8)`` and the
    reported secret is ``secret & 7``; *guesses* is accepted for
    signature compatibility and ignored.
    """
    if in_order:
        raise ConfigError(
            "cross-context attacks run on co-resident OoO contexts; the "
            "in-order core has no multi-context mode"
        )
    if secret & 7 == 0:
        raise ValueError(
            "secret & 7 must be non-zero: training installs T(0), so a "
            "zero residue is indistinguishable from a blocked channel"
        )
    del guesses
    guess_list = list(range(N_TARGETS))
    programs = build_programs(secret)
    _, outcomes = run_cross_attack(
        programs, config, SHARING, fast_forward=fast_forward
    )
    return AttackOutcome(
        attack="cross_btb",
        channel="cross-btb",
        config_label=outcomes[0].label,
        secret=secret & 7,
        timings=read_timings(outcomes[0], guess_list),
        guesses=guess_list,
        margin_required=BTB_LEAK_MARGIN,
        outcome=outcomes[0],
    )
