"""The versioned result envelope: one JSON shape for every result.

Before this module, three unrelated JSON shapes carried
:class:`~repro.core.outcome.RunOutcome`-derived results out of the repo:
the CLI printed ad-hoc dicts, run manifests used their own top-level
layout, and the fuzz corpus writers stamped a bare integer ``schema``.
Every result document now opens with the same two fields::

    {"schema": "repro.result/v1", "kind": "<document kind>", ...}

and is produced by the one serializer here (:func:`make_envelope`).
``kind`` names the document family (``run``, ``attack``, ``window``,
``suite``, ``fuzz-witness``, ``job``, ``error``, plus the manifest kinds
``run``/``trace``/``fuzz-campaign`` — manifests are envelopes too).  The
body is flat: kind-specific fields sit next to ``schema``/``kind``
rather than under a nested wrapper, which keeps manifests and corpus
files human-diffable.

Consumers dispatch on ``schema`` first (reject unknown majors), then on
``kind``.  :func:`validate_envelope` enforces the common contract;
kind-specific validation stays with the kind's owner (e.g.
:func:`repro.obs.manifest.validate_manifest`).
"""

from __future__ import annotations

from typing import List, Optional

#: The one version string every result document opens with.  Bump the
#: ``/v1`` suffix (and keep a reader for the old one) on incompatible
#: layout changes.
RESULT_SCHEMA = "repro.result/v1"

#: Document kinds with a serializer in-repo.  Open set — validate_envelope
#: accepts unknown kinds so downstream tools can mint their own — but the
#: CLI/server/manifest/corpus writers stick to these.
KNOWN_KINDS = (
    "run", "attack", "window", "suite", "trace", "fuzz-campaign",
    "fuzz-witness", "job", "error",
)


def make_envelope(kind: str, **body) -> dict:
    """The one result serializer: stamp ``schema`` + ``kind`` over *body*.

    ``body`` fields land flat at the top level; ``schema`` and ``kind``
    are reserved and may not appear in it.
    """
    if not kind or not isinstance(kind, str):
        raise ValueError("envelope kind must be a non-empty string")
    for reserved in ("schema", "kind"):
        if reserved in body:
            raise ValueError(
                "envelope body may not carry the reserved field %r"
                % reserved
            )
    envelope = {"schema": RESULT_SCHEMA, "kind": kind}
    envelope.update(body)
    return envelope


def validate_envelope(payload) -> List[str]:
    """Check the common envelope contract; returns problems (empty == ok)."""
    if not isinstance(payload, dict):
        return ["envelope must be a JSON object"]
    problems = []
    schema = payload.get("schema")
    if schema != RESULT_SCHEMA:
        problems.append(
            "unknown schema %r (this build reads %r)"
            % (schema, RESULT_SCHEMA)
        )
    kind = payload.get("kind")
    if not isinstance(kind, str) or not kind:
        problems.append("missing or non-string 'kind'")
    return problems


def is_envelope(payload) -> bool:
    return isinstance(payload, dict) and payload.get("schema") == RESULT_SCHEMA


# ---------------------------------------------------------------------- #
# RunOutcome-family bodies.
# ---------------------------------------------------------------------- #


def outcome_body(outcome, **extra) -> dict:
    """Body fields for one :class:`RunOutcome` (kind ``run``/``window``)."""
    stats = outcome.stats
    body = {
        "label": outcome.label,
        "cycles": stats.cycles,
        "committed": stats.committed,
        "cpi": stats.cpi,
        "stats": stats.to_dict(),
    }
    body.update(extra)
    return body


def run_envelope(outcome, **extra) -> dict:
    """Envelope for one completed simulation run."""
    return make_envelope("run", **outcome_body(outcome, **extra))


def attack_envelope(attack_outcome, **extra) -> dict:
    """Envelope for one attack PoC outcome (timing or bit channel)."""
    body = {
        "attack": attack_outcome.attack,
        "channel": attack_outcome.channel,
        "config": attack_outcome.config_label,
        "secret": attack_outcome.secret,
        "recovered": attack_outcome.recovered,
        "leaked": attack_outcome.leaked,
        "margin": attack_outcome.margin,
    }
    if hasattr(attack_outcome, "bit_timings"):
        body["bit_timings"] = list(attack_outcome.bit_timings)
        body["threshold"] = attack_outcome.threshold
    else:
        body["guesses"] = list(attack_outcome.guesses)
        body["timings"] = list(attack_outcome.timings)
    run = getattr(attack_outcome, "outcome", None)
    if run is not None:
        body["run"] = outcome_body(run)
    body.update(extra)
    return make_envelope("attack", **body)


def error_envelope(code: str, message: str,
                   detail: Optional[dict] = None) -> dict:
    """Structured error body (HTTP error responses, CLI failures)."""
    error = {"code": code, "message": message}
    if detail:
        error["detail"] = detail
    return make_envelope("error", error=error)
