"""Architectural semantics: the single source of truth for what ops compute.

Two consumers share these functions:

* the cycle-level cores (:mod:`repro.core`) call :func:`eval_alu` and
  :func:`branch_taken` from their execute stages, and
* the :class:`ReferenceMachine` here executes whole programs in one
  architectural step per instruction.

Because both paths evaluate through the same code, the property tests can
assert that every pipelined core commits exactly the architectural state the
reference machine computes (the "golden model equivalence" anchor in
DESIGN.md).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_ARCH_REGS, R0
from repro.memory.memory import MainMemory, U64_MASK

_SIGN_BIT = 1 << 63


def to_signed(value: int) -> int:
    """Interpret a 64-bit pattern as a signed integer."""
    value &= U64_MASK
    return value - (1 << 64) if value & _SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Wrap a Python int into a 64-bit pattern."""
    return value & U64_MASK


def _as_f64(pattern: int) -> float:
    return struct.unpack("<d", (pattern & U64_MASK).to_bytes(8, "little"))[0]


def _from_f64(value: float) -> int:
    try:
        return int.from_bytes(struct.pack("<d", value), "little")
    except (OverflowError, ValueError):
        return 0


def eval_alu(op: Opcode, a: int, b: int, imm: int) -> int:
    """Compute the destination value of a non-memory, non-branch micro-op.

    *a* and *b* are the source register values (*b* is 0 when the op has a
    single register source); *imm* is the instruction immediate.  The result
    is a 64-bit pattern.
    """
    if op is Opcode.ADD:
        return (a + b) & U64_MASK
    if op is Opcode.SUB:
        return (a - b) & U64_MASK
    if op is Opcode.AND:
        return a & b
    if op is Opcode.OR:
        return a | b
    if op is Opcode.XOR:
        return a ^ b
    if op is Opcode.SHL:
        return (a << (b & 63)) & U64_MASK
    if op is Opcode.SHR:
        return (a & U64_MASK) >> (b & 63)
    if op is Opcode.SLT:
        return 1 if to_signed(a) < to_signed(b) else 0
    if op is Opcode.ADDI:
        return (a + imm) & U64_MASK
    if op is Opcode.ANDI:
        return a & (imm & U64_MASK)
    if op is Opcode.ORI:
        return a | (imm & U64_MASK)
    if op is Opcode.XORI:
        return a ^ (imm & U64_MASK)
    if op is Opcode.SHLI:
        return (a << (imm & 63)) & U64_MASK
    if op is Opcode.SHRI:
        return (a & U64_MASK) >> (imm & 63)
    if op is Opcode.LI:
        return imm & U64_MASK
    if op is Opcode.MUL:
        return (a * b) & U64_MASK
    if op is Opcode.DIV:
        divisor = to_signed(b)
        if divisor == 0:
            return U64_MASK  # x86-like: define instead of faulting
        return to_unsigned(to_signed(a) // divisor)
    if op is Opcode.FADD:
        return _from_f64(_as_f64(a) + _as_f64(b))
    if op is Opcode.FMUL:
        return _from_f64(_as_f64(a) * _as_f64(b))
    if op is Opcode.FDIV:
        fb = _as_f64(b)
        if fb == 0.0 or fb != fb:  # zero or NaN divisor
            return 0
        return _from_f64(_as_f64(a) / fb)
    raise SimulationError("eval_alu cannot evaluate %s" % op)


def branch_taken(op: Opcode, a: int, b: int) -> bool:
    """Direction of a conditional branch given its source values."""
    if op is Opcode.BEQ:
        return a == b
    if op is Opcode.BNE:
        return a != b
    if op is Opcode.BLT:
        return to_signed(a) < to_signed(b)
    if op is Opcode.BGE:
        return to_signed(a) >= to_signed(b)
    raise SimulationError("%s is not a conditional branch" % op)


class Fault(Exception):
    """A privilege violation raised during architectural execution."""

    def __init__(self, pc: int, reason: str):
        super().__init__("fault at pc=%d: %s" % (pc, reason))
        self.pc = pc
        self.reason = reason


@dataclass
class MachineState:
    """Architectural state snapshot used for cross-model comparison."""

    regs: List[int]
    memory: MainMemory
    halted: bool
    pc: int
    committed: int
    faults: int = 0

    def reg(self, index: int) -> int:
        return self.regs[index]


class ReferenceMachine:
    """In-order, one-instruction-per-step architectural evaluator.

    This machine has no micro-architecture at all: no caches, no predictors,
    no speculation.  It defines correct final state.  ``RDTSC`` is the one
    op whose value is timing-dependent; the reference machine returns an
    incrementing virtual counter, and the cross-model property tests simply
    avoid letting RDTSC results flow into final state (or mask them out).
    """

    def __init__(self, program: Program, privileged_mode: bool = False):
        self.program = program
        self.privileged_mode = privileged_mode
        self.regs: List[int] = [0] * NUM_ARCH_REGS
        for reg, value in program.initial_regs.items():
            self.regs[reg] = value & U64_MASK
        self.regs[R0] = 0
        self.memory = MainMemory()
        self.memory.load_image(program.data)
        self.msrs: Dict[int, int] = dict(program.msrs)
        self.pc = 0
        self.halted = False
        self.committed = 0
        self.faults = 0
        self.tsc = 0

    # ------------------------------------------------------------------ #

    def _check_privilege(self, addr: int, pc: int) -> None:
        if not self.privileged_mode and self.program.is_privileged_addr(addr):
            raise Fault(pc, "user access to privileged address %#x" % addr)

    def step(self) -> None:
        """Architecturally execute one instruction."""
        if self.halted:
            return
        instr = self.program.fetch(self.pc)
        if instr is None:
            self.halted = True
            return
        try:
            self._execute(instr)
        except Fault:
            self.faults += 1
            if self.program.fault_handler is None:
                self.halted = True
            else:
                self.pc = self.program.fault_handler
        self.committed += 1
        self.regs[R0] = 0

    def _write(self, rd: Optional[int], value: int) -> None:
        if rd is not None and rd != R0:
            self.regs[rd] = value & U64_MASK

    def _execute(self, instr: Instr) -> None:
        op = instr.op
        regs = self.regs
        next_pc = self.pc + 1

        if op in (Opcode.NOP, Opcode.FENCE):
            pass
        elif op is Opcode.HALT:
            self.halted = True
        elif op is Opcode.LOAD or op is Opcode.LOADB:
            addr = (regs[instr.srcs[0]] + instr.imm) & U64_MASK
            self._check_privilege(addr, instr.pc)
            if op is Opcode.LOAD:
                self._write(instr.rd, self.memory.read_word(addr))
            else:
                self._write(instr.rd, self.memory.read_byte(addr))
        elif op is Opcode.STORE or op is Opcode.STOREB:
            addr = (regs[instr.srcs[0]] + instr.imm) & U64_MASK
            self._check_privilege(addr, instr.pc)
            value = regs[instr.srcs[1]]
            if op is Opcode.STORE:
                self.memory.write_word(addr, value)
            else:
                self.memory.write_byte(addr, value)
        elif op is Opcode.CLFLUSH:
            pass  # cache-only effect; architecturally a no-op
        elif op is Opcode.RDTSC:
            self.tsc += 1
            self._write(instr.rd, self.tsc)
        elif op is Opcode.RDMSR:
            if not self.privileged_mode:
                raise Fault(instr.pc, "user rdmsr %d" % instr.imm)
            self._write(instr.rd, self.msrs.get(instr.imm, 0))
        elif instr.info.is_branch:
            next_pc = self._branch(instr, next_pc)
        else:
            a = regs[instr.srcs[0]] if instr.srcs else 0
            b = regs[instr.srcs[1]] if len(instr.srcs) > 1 else 0
            self._write(instr.rd, eval_alu(op, a, b, instr.imm))

        self.pc = next_pc if not self.halted else self.pc

    def _branch(self, instr: Instr, next_pc: int) -> int:
        op = instr.op
        regs = self.regs
        if instr.info.is_conditional:
            a, b = regs[instr.srcs[0]], regs[instr.srcs[1]]
            return instr.target if branch_taken(op, a, b) else next_pc
        if op is Opcode.JMP:
            return instr.target
        if op is Opcode.JR:
            return regs[instr.srcs[0]] & U64_MASK
        if op is Opcode.CALL:
            self._write(instr.rd, next_pc)
            return instr.target
        if op is Opcode.CALLR:
            target = regs[instr.srcs[0]] & U64_MASK
            self._write(instr.rd, next_pc)
            return target
        if op is Opcode.RET:
            return regs[instr.srcs[0]] & U64_MASK
        raise SimulationError("unhandled branch %s" % op)

    # ------------------------------------------------------------------ #

    def run(self, max_steps: int = 1_000_000) -> MachineState:
        """Execute until HALT / off-the-end, or *max_steps* instructions."""
        steps = 0
        while not self.halted and steps < max_steps:
            self.step()
            steps += 1
        return self.state()

    def state(self) -> MachineState:
        return MachineState(
            regs=list(self.regs),
            memory=self.memory,
            halted=self.halted,
            pc=self.pc,
            committed=self.committed,
            faults=self.faults,
        )


def run_reference(
    program: Program,
    max_steps: int = 1_000_000,
    privileged_mode: bool = False,
) -> MachineState:
    """Convenience wrapper: architecturally execute *program* to completion."""
    machine = ReferenceMachine(program, privileged_mode=privileged_mode)
    return machine.run(max_steps=max_steps)
