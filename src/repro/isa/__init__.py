"""Micro-op ISA: registers, opcodes, instructions, programs, semantics."""

from repro.isa.assembler import Assembler, assemble
from repro.isa.instruction import Instr
from repro.isa.opcodes import FUType, Opcode, OpInfo, info
from repro.isa.program import Program
from repro.isa.semantics import (
    Fault,
    MachineState,
    ReferenceMachine,
    branch_taken,
    eval_alu,
    run_reference,
)

__all__ = [
    "Assembler",
    "assemble",
    "Instr",
    "FUType",
    "Opcode",
    "OpInfo",
    "info",
    "Program",
    "Fault",
    "MachineState",
    "ReferenceMachine",
    "branch_taken",
    "eval_alu",
    "run_reference",
]
