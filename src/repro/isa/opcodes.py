"""Micro-op opcodes and their static properties.

The simulator operates at micro-op granularity, mirroring how the paper
reasons about NDA ("any micro-op dispatched after an unresolved branch...").
Each opcode carries the static metadata every pipeline stage needs: which
functional-unit class executes it, its execution latency, and the boolean
attributes (is it a load-like op? a branch? serializing?) that drive both the
baseline scheduler and the NDA safety logic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FUType(enum.Enum):
    """Functional-unit classes, used by the issue stage for port binding."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    FP = "fp"
    MEM = "mem"  # address generation + cache port (loads, stores, clflush)
    BRANCH = "branch"
    SYS = "sys"  # serializing system ops (rdtsc, fence, halt)


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one opcode."""

    name: str
    fu: FUType
    latency: int  # execution latency in cycles, excluding cache time
    is_load: bool = False  # reads memory
    is_store: bool = False  # writes memory
    is_branch: bool = False  # may redirect control flow
    is_indirect: bool = False  # branch target comes from a register
    is_conditional: bool = False  # branch direction depends on operands
    is_call: bool = False
    is_ret: bool = False
    is_load_like: bool = False  # treated as a load by NDA (loads, RDMSR)
    is_serializing: bool = False  # issues only when eldest in the ROB
    writes_dest: bool = True


class Opcode(enum.Enum):
    """Every micro-op the simulated machine understands."""

    # Integer ALU (reg-reg and reg-imm forms).
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SLT = "slt"
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SHLI = "shli"
    SHRI = "shri"
    LI = "li"
    # Long-latency integer.
    MUL = "mul"
    DIV = "div"
    # Floating point (operates on 64-bit patterns; see semantics module).
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"
    # Memory.
    LOAD = "load"
    LOADB = "loadb"
    STORE = "store"
    STOREB = "storeb"
    CLFLUSH = "clflush"
    # Control.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JMP = "jmp"
    JR = "jr"
    CALL = "call"
    CALLR = "callr"
    RET = "ret"
    # System.
    RDTSC = "rdtsc"
    RDMSR = "rdmsr"
    FENCE = "fence"
    NOP = "nop"
    HALT = "halt"


_ALU = dict(fu=FUType.ALU, latency=1)

OP_INFO: dict[Opcode, OpInfo] = {
    Opcode.ADD: OpInfo("add", **_ALU),
    Opcode.SUB: OpInfo("sub", **_ALU),
    Opcode.AND: OpInfo("and", **_ALU),
    Opcode.OR: OpInfo("or", **_ALU),
    Opcode.XOR: OpInfo("xor", **_ALU),
    Opcode.SHL: OpInfo("shl", **_ALU),
    Opcode.SHR: OpInfo("shr", **_ALU),
    Opcode.SLT: OpInfo("slt", **_ALU),
    Opcode.ADDI: OpInfo("addi", **_ALU),
    Opcode.ANDI: OpInfo("andi", **_ALU),
    Opcode.ORI: OpInfo("ori", **_ALU),
    Opcode.XORI: OpInfo("xori", **_ALU),
    Opcode.SHLI: OpInfo("shli", **_ALU),
    Opcode.SHRI: OpInfo("shri", **_ALU),
    Opcode.LI: OpInfo("li", **_ALU),
    Opcode.MUL: OpInfo("mul", fu=FUType.MUL, latency=3),
    Opcode.DIV: OpInfo("div", fu=FUType.DIV, latency=12),
    Opcode.FADD: OpInfo("fadd", fu=FUType.FP, latency=4),
    Opcode.FMUL: OpInfo("fmul", fu=FUType.FP, latency=5),
    Opcode.FDIV: OpInfo("fdiv", fu=FUType.FP, latency=14),
    Opcode.LOAD: OpInfo(
        "load", fu=FUType.MEM, latency=1, is_load=True, is_load_like=True
    ),
    Opcode.LOADB: OpInfo(
        "loadb", fu=FUType.MEM, latency=1, is_load=True, is_load_like=True
    ),
    Opcode.STORE: OpInfo(
        "store", fu=FUType.MEM, latency=1, is_store=True, writes_dest=False
    ),
    Opcode.STOREB: OpInfo(
        "storeb", fu=FUType.MEM, latency=1, is_store=True, writes_dest=False
    ),
    Opcode.CLFLUSH: OpInfo(
        "clflush", fu=FUType.MEM, latency=1, writes_dest=False
    ),
    Opcode.BEQ: OpInfo(
        "beq", fu=FUType.BRANCH, latency=1, is_branch=True,
        is_conditional=True, writes_dest=False,
    ),
    Opcode.BNE: OpInfo(
        "bne", fu=FUType.BRANCH, latency=1, is_branch=True,
        is_conditional=True, writes_dest=False,
    ),
    Opcode.BLT: OpInfo(
        "blt", fu=FUType.BRANCH, latency=1, is_branch=True,
        is_conditional=True, writes_dest=False,
    ),
    Opcode.BGE: OpInfo(
        "bge", fu=FUType.BRANCH, latency=1, is_branch=True,
        is_conditional=True, writes_dest=False,
    ),
    Opcode.JMP: OpInfo(
        "jmp", fu=FUType.BRANCH, latency=1, is_branch=True, writes_dest=False
    ),
    Opcode.JR: OpInfo(
        "jr", fu=FUType.BRANCH, latency=1, is_branch=True, is_indirect=True,
        writes_dest=False,
    ),
    Opcode.CALL: OpInfo(
        "call", fu=FUType.BRANCH, latency=1, is_branch=True, is_call=True
    ),
    Opcode.CALLR: OpInfo(
        "callr", fu=FUType.BRANCH, latency=1, is_branch=True,
        is_indirect=True, is_call=True,
    ),
    Opcode.RET: OpInfo(
        "ret", fu=FUType.BRANCH, latency=1, is_branch=True, is_indirect=True,
        is_ret=True, writes_dest=False,
    ),
    Opcode.RDTSC: OpInfo(
        "rdtsc", fu=FUType.SYS, latency=1, is_serializing=True
    ),
    Opcode.RDMSR: OpInfo(
        "rdmsr", fu=FUType.SYS, latency=2, is_load_like=True
    ),
    Opcode.FENCE: OpInfo(
        "fence", fu=FUType.SYS, latency=1, is_serializing=True,
        writes_dest=False,
    ),
    Opcode.NOP: OpInfo("nop", fu=FUType.ALU, latency=1, writes_dest=False),
    Opcode.HALT: OpInfo(
        "halt", fu=FUType.SYS, latency=1, is_serializing=True,
        writes_dest=False,
    ),
}

# Opcode groups used by the workload generator and the tests.
ALU_OPS = (
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SHL, Opcode.SHR, Opcode.SLT,
)
ALU_IMM_OPS = (
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SHLI, Opcode.SHRI,
)
FP_OPS = (Opcode.FADD, Opcode.FMUL, Opcode.FDIV)
COND_BRANCH_OPS = (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE)


def info(op: Opcode) -> OpInfo:
    """Return the static :class:`OpInfo` record for *op*."""
    return OP_INFO[op]
