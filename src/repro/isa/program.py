"""Programs: ordered static instructions plus an initial machine image.

A :class:`Program` bundles everything a core needs to run a workload:

* the static instruction stream (PC = instruction index),
* an initial data-memory image,
* the privileged address ranges (accesses from user mode fault — this is
  the substrate the Meltdown-style chosen-code attacks exercise),
* model-specific register (MSR) contents, readable only in privileged mode
  (the LazyFP / Meltdown-v3a substrate),
* an optional fault-handler PC, entered when a faulting instruction commits.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import AssemblyError
from repro.isa.instruction import Instr


class Program:
    """An immutable, fully linked program.

    Args:
        instrs: static instructions in program order.  Branch targets must
            already be resolved to instruction indices.
        data: initial data memory image, mapping byte address -> bytes.
        privileged: iterable of half-open byte ranges ``(lo, hi)`` that may
            only be accessed in privileged mode.
        msrs: initial model-specific register file.
        fault_handler: PC the core redirects to when a fault commits; when
            ``None``, a committing fault halts the program.
        initial_regs: architectural register values installed before cycle 0.
        name: label used in reports.
    """

    def __init__(
        self,
        instrs: Sequence[Instr],
        data: Optional[Dict[int, bytes]] = None,
        privileged: Iterable[Tuple[int, int]] = (),
        msrs: Optional[Dict[int, int]] = None,
        fault_handler: Optional[int] = None,
        initial_regs: Optional[Dict[int, int]] = None,
        name: str = "program",
    ):
        if not instrs:
            raise AssemblyError("a program needs at least one instruction")
        self.instrs: List[Instr] = list(instrs)
        for pc, instr in enumerate(self.instrs):
            instr.pc = pc
        self.data = dict(data or {})
        self.privileged = tuple(privileged)
        self.msrs = dict(msrs or {})
        self.fault_handler = fault_handler
        self.initial_regs = dict(initial_regs or {})
        self.name = name
        self._check_targets()

    def _check_targets(self) -> None:
        n = len(self.instrs)
        for instr in self.instrs:
            if instr.target is not None:
                if not isinstance(instr.target, int):
                    raise AssemblyError(
                        "unresolved target %r in %r" % (instr.target, instr)
                    )
                if not 0 <= instr.target < n:
                    raise AssemblyError(
                        "target %d out of range in %r" % (instr.target, instr)
                    )
        if self.fault_handler is not None and not (
            0 <= self.fault_handler < n
        ):
            raise AssemblyError(
                "fault handler %d out of range" % self.fault_handler
            )

    def __len__(self) -> int:
        return len(self.instrs)

    def fetch(self, pc: int) -> Optional[Instr]:
        """Return the instruction at *pc*, or None when pc is off the end."""
        if 0 <= pc < len(self.instrs):
            return self.instrs[pc]
        return None

    def is_privileged_addr(self, addr: int) -> bool:
        """True when byte *addr* lies in a privileged range."""
        for lo, hi in self.privileged:
            if lo <= addr < hi:
                return True
        return False

    def __repr__(self) -> str:
        return "<Program %s: %d instrs, %d data blobs>" % (
            self.name, len(self.instrs), len(self.data),
        )
