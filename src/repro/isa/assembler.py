"""A tiny assembler DSL for hand-written micro-op programs.

The attack proof-of-concepts and the example scripts build programs through
this class rather than instantiating :class:`~repro.isa.instruction.Instr`
directly, which keeps them readable::

    a = Assembler("demo")
    a.li(R1, 10)
    a.label("loop")
    a.addi(R2, R2, 1)
    a.subi(R1, R1, 1)
    a.bne(R1, R0, "loop")
    a.halt()
    program = a.build()

Labels may be referenced before they are defined; ``build`` resolves all
forward references and raises :class:`~repro.errors.AssemblyError` for any
that remain dangling.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import AssemblyError
from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import R0

Target = Union[str, int]


class Assembler:
    """Incrementally builds a :class:`~repro.isa.program.Program`."""

    def __init__(self, name: str = "program"):
        self.name = name
        self._instrs: List[Tuple[Instr, Optional[Target]]] = []
        self._labels: Dict[str, int] = {}
        self._data: Dict[int, bytes] = {}
        self._privileged: List[Tuple[int, int]] = []
        self._msrs: Dict[int, int] = {}
        self._fault_handler: Optional[Target] = None
        self._initial_regs: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Layout directives.
    # ------------------------------------------------------------------ #

    def label(self, name: str) -> "Assembler":
        """Define *name* at the current PC."""
        if name in self._labels:
            raise AssemblyError("duplicate label %r" % name)
        self._labels[name] = len(self._instrs)
        return self

    @property
    def here(self) -> int:
        """PC of the next instruction to be emitted."""
        return len(self._instrs)

    def data(self, addr: int, payload: bytes) -> "Assembler":
        """Place *payload* at byte address *addr* in the initial image."""
        self._data[addr] = bytes(payload)
        return self

    def word(self, addr: int, value: int) -> "Assembler":
        """Place one little-endian 64-bit *value* at *addr*."""
        return self.data(addr, (value & (2 ** 64 - 1)).to_bytes(8, "little"))

    def privileged_range(self, lo: int, hi: int) -> "Assembler":
        """Mark bytes ``[lo, hi)`` as privileged (user access faults)."""
        if hi <= lo:
            raise AssemblyError("empty privileged range [%d, %d)" % (lo, hi))
        self._privileged.append((lo, hi))
        return self

    def msr(self, index: int, value: int) -> "Assembler":
        """Set the initial contents of MSR *index*."""
        self._msrs[index] = value
        return self

    def fault_handler(self, target: Target) -> "Assembler":
        """Route committed faults to *target* instead of halting."""
        self._fault_handler = target
        return self

    def init_reg(self, reg: int, value: int) -> "Assembler":
        """Install *value* in architectural register *reg* before cycle 0."""
        self._initial_regs[reg] = value
        return self

    # ------------------------------------------------------------------ #
    # Instruction emitters.
    # ------------------------------------------------------------------ #

    def emit(self, instr: Instr, target: Optional[Target] = None) -> int:
        """Append *instr*; return its PC.  *target* is resolved at build."""
        self._instrs.append((instr, target))
        return len(self._instrs) - 1

    def _alu(self, op: Opcode, rd: int, rs1: int, rs2: int) -> int:
        return self.emit(Instr(op, rd=rd, rs1=rs1, rs2=rs2))

    def _alui(self, op: Opcode, rd: int, rs1: int, imm: int) -> int:
        return self.emit(Instr(op, rd=rd, rs1=rs1, imm=imm))

    def add(self, rd, rs1, rs2):
        return self._alu(Opcode.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        return self._alu(Opcode.SUB, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        return self._alu(Opcode.AND, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2):
        return self._alu(Opcode.OR, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2):
        return self._alu(Opcode.XOR, rd, rs1, rs2)

    def shl(self, rd, rs1, rs2):
        return self._alu(Opcode.SHL, rd, rs1, rs2)

    def shr(self, rd, rs1, rs2):
        return self._alu(Opcode.SHR, rd, rs1, rs2)

    def slt(self, rd, rs1, rs2):
        return self._alu(Opcode.SLT, rd, rs1, rs2)

    def mul(self, rd, rs1, rs2):
        return self._alu(Opcode.MUL, rd, rs1, rs2)

    def div(self, rd, rs1, rs2):
        return self._alu(Opcode.DIV, rd, rs1, rs2)

    def fadd(self, rd, rs1, rs2):
        return self._alu(Opcode.FADD, rd, rs1, rs2)

    def fmul(self, rd, rs1, rs2):
        return self._alu(Opcode.FMUL, rd, rs1, rs2)

    def fdiv(self, rd, rs1, rs2):
        return self._alu(Opcode.FDIV, rd, rs1, rs2)

    def addi(self, rd, rs1, imm):
        return self._alui(Opcode.ADDI, rd, rs1, imm)

    def subi(self, rd, rs1, imm):
        return self._alui(Opcode.ADDI, rd, rs1, -imm)

    def andi(self, rd, rs1, imm):
        return self._alui(Opcode.ANDI, rd, rs1, imm)

    def ori(self, rd, rs1, imm):
        return self._alui(Opcode.ORI, rd, rs1, imm)

    def xori(self, rd, rs1, imm):
        return self._alui(Opcode.XORI, rd, rs1, imm)

    def shli(self, rd, rs1, imm):
        return self._alui(Opcode.SHLI, rd, rs1, imm)

    def shri(self, rd, rs1, imm):
        return self._alui(Opcode.SHRI, rd, rs1, imm)

    def li(self, rd, imm):
        return self.emit(Instr(Opcode.LI, rd=rd, imm=imm))

    def mov(self, rd, rs):
        return self._alui(Opcode.ADDI, rd, rs, 0)

    def load(self, rd, rs1, imm=0):
        return self.emit(Instr(Opcode.LOAD, rd=rd, rs1=rs1, imm=imm))

    def loadb(self, rd, rs1, imm=0):
        return self.emit(Instr(Opcode.LOADB, rd=rd, rs1=rs1, imm=imm))

    def store(self, rs2, rs1, imm=0):
        """``mem[rs1 + imm] = rs2`` (note the value-first operand order)."""
        return self.emit(Instr(Opcode.STORE, rs1=rs1, rs2=rs2, imm=imm))

    def storeb(self, rs2, rs1, imm=0):
        return self.emit(Instr(Opcode.STOREB, rs1=rs1, rs2=rs2, imm=imm))

    def clflush(self, rs1, imm=0):
        return self.emit(Instr(Opcode.CLFLUSH, rs1=rs1, imm=imm))

    def _branch(self, op: Opcode, rs1, rs2, target: Target) -> int:
        return self.emit(Instr(op, rs1=rs1, rs2=rs2, target=0), target)

    def beq(self, rs1, rs2, target: Target):
        return self._branch(Opcode.BEQ, rs1, rs2, target)

    def bne(self, rs1, rs2, target: Target):
        return self._branch(Opcode.BNE, rs1, rs2, target)

    def blt(self, rs1, rs2, target: Target):
        return self._branch(Opcode.BLT, rs1, rs2, target)

    def bge(self, rs1, rs2, target: Target):
        return self._branch(Opcode.BGE, rs1, rs2, target)

    def jmp(self, target: Target):
        return self.emit(Instr(Opcode.JMP, target=0), target)

    def jr(self, rs1):
        return self.emit(Instr(Opcode.JR, rs1=rs1))

    def call(self, target: Target):
        return self.emit(Instr(Opcode.CALL, target=0), target)

    def callr(self, rs1):
        return self.emit(Instr(Opcode.CALLR, rs1=rs1))

    def ret(self):
        return self.emit(Instr(Opcode.RET))

    def rdtsc(self, rd):
        return self.emit(Instr(Opcode.RDTSC, rd=rd))

    def rdmsr(self, rd, msr_index: int):
        return self.emit(Instr(Opcode.RDMSR, rd=rd, imm=msr_index))

    def fence(self):
        return self.emit(Instr(Opcode.FENCE))

    def nop(self):
        return self.emit(Instr(Opcode.NOP))

    def nops(self, count: int):
        for _ in range(count):
            self.nop()
        return self

    def align(self, instrs: int = 16):
        """Pad with NOPs so the next instruction starts a new group.

        With 4-byte instructions and 64-byte cache lines, ``align(16)``
        puts the following code at an instruction-cache line boundary —
        attack PoCs use it to keep a critical sequence within one line so
        an i-cache miss cannot split its dispatch.
        """
        while len(self._instrs) % instrs:
            self.nop()
        return self

    def halt(self):
        return self.emit(Instr(Opcode.HALT))

    # ------------------------------------------------------------------ #
    # Linking.
    # ------------------------------------------------------------------ #

    def _resolve(self, target: Target) -> int:
        if isinstance(target, int):
            return target
        try:
            return self._labels[target]
        except KeyError:
            raise AssemblyError("undefined label %r" % target) from None

    def build(self, name: Optional[str] = None) -> Program:
        """Resolve labels and produce an immutable Program."""
        instrs = []
        for instr, target in self._instrs:
            if target is not None:
                instr.target = self._resolve(target)
            instrs.append(instr)
        handler = None
        if self._fault_handler is not None:
            handler = self._resolve(self._fault_handler)
        return Program(
            instrs,
            data=self._data,
            privileged=self._privileged,
            msrs=self._msrs,
            fault_handler=handler,
            initial_regs=self._initial_regs,
            name=name or self.name,
        )


def assemble(lines: Iterable[Instr], name: str = "program") -> Program:
    """Convenience wrapper: build a Program from raw Instr objects."""
    asm = Assembler(name)
    for instr in lines:
        asm.emit(instr)
    return asm.build()


# Re-export R0 so attack modules importing the assembler get the common case.
__all__ = ["Assembler", "assemble", "R0"]
