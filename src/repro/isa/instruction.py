"""Static instruction representation.

An :class:`Instr` is one *static* micro-op of a program.  The pipeline
creates lightweight dynamic instances (ROB entries) that point back at these
static objects, so ``Instr`` precomputes everything the hot loops need:
the source-register tuple, the destination register, and the static
:class:`~repro.isa.opcodes.OpInfo`.

Instructions are addressed by instruction index: the PC of the *i*-th
instruction of a program is simply *i*.  Data memory lives in a separate
byte-addressable space (see :mod:`repro.memory.memory`).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import AssemblyError
from repro.isa.opcodes import FUType, Opcode, OpInfo, info
from repro.isa.registers import LR, is_arch_reg, reg_name

# Opcodes whose destination register is implicitly the link register.
_CALL_OPS = (Opcode.CALL, Opcode.CALLR)


class Instr:
    """One static micro-op.

    Attributes:
        op: the :class:`Opcode`.
        info: cached :class:`OpInfo` for ``op``.
        rd: destination architectural register or ``None``.
        srcs: tuple of source architectural registers (possibly empty).
        imm: immediate operand (offset for memory ops, literal for ALU-imm
            ops, MSR index for ``RDMSR``).
        target: static branch/jump/call target PC, or ``None`` for indirect
            branches (whose target comes from ``srcs[0]``) and non-branches.
        pc: instruction index within its program, assigned at build time.
    """

    __slots__ = ("op", "info", "rd", "srcs", "imm", "target", "pc")

    def __init__(
        self,
        op: Opcode,
        rd: Optional[int] = None,
        rs1: Optional[int] = None,
        rs2: Optional[int] = None,
        imm: int = 0,
        target: Optional[int] = None,
    ):
        op_info: OpInfo = info(op)
        self.op = op
        self.info = op_info
        self.imm = imm
        self.target = target
        self.pc = -1  # assigned by Program

        if op in _CALL_OPS:
            rd = LR
        if op is Opcode.RET:
            rs1 = LR
        if not op_info.writes_dest:
            rd = None
        self.rd = rd

        srcs = []
        if rs1 is not None:
            srcs.append(rs1)
        if rs2 is not None:
            srcs.append(rs2)
        self.srcs = tuple(srcs)

        self._validate()

    def _validate(self) -> None:
        op_info = self.info
        if op_info.writes_dest and self.rd is None:
            raise AssemblyError("%s requires a destination register" % self.op)
        if self.rd is not None and not is_arch_reg(self.rd):
            raise AssemblyError("bad destination register %r" % (self.rd,))
        for src in self.srcs:
            if not is_arch_reg(src):
                raise AssemblyError("bad source register %r" % (src,))
        if op_info.is_branch and not op_info.is_indirect:
            if self.target is None:
                raise AssemblyError("%s requires a static target" % self.op)
        if op_info.is_indirect and not op_info.is_ret and not self.srcs:
            raise AssemblyError("%s requires a target register" % self.op)
        expected = _expected_src_count(self.op)
        if expected is not None and len(self.srcs) != expected:
            raise AssemblyError(
                "%s expects %d source registers, got %d"
                % (self.op, expected, len(self.srcs))
            )

    @property
    def is_mem(self) -> bool:
        """True for micro-ops that use the memory port."""
        return self.info.fu is FUType.MEM

    def __repr__(self) -> str:
        parts = [self.op.value]
        if self.rd is not None:
            parts.append(reg_name(self.rd))
        parts.extend(reg_name(s) for s in self.srcs)
        if self.imm:
            parts.append("#%d" % self.imm)
        if self.target is not None:
            parts.append("@%s" % (self.target,))
        return "<%s pc=%d>" % (" ".join(parts), self.pc)


def _expected_src_count(op: Opcode) -> Optional[int]:
    """Number of register sources *op* must have, or None if flexible."""
    two_src = {
        Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.SHL, Opcode.SHR, Opcode.SLT, Opcode.MUL, Opcode.DIV,
        Opcode.FADD, Opcode.FMUL, Opcode.FDIV,
        Opcode.STORE, Opcode.STOREB,
        Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
    }
    one_src = {
        Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
        Opcode.SHLI, Opcode.SHRI,
        Opcode.LOAD, Opcode.LOADB, Opcode.CLFLUSH,
        Opcode.JR, Opcode.CALLR, Opcode.RET,
    }
    zero_src = {
        Opcode.LI, Opcode.JMP, Opcode.CALL, Opcode.RDTSC, Opcode.RDMSR,
        Opcode.FENCE, Opcode.NOP, Opcode.HALT,
    }
    if op in two_src:
        return 2
    if op in one_src:
        return 1
    if op in zero_src:
        return 0
    return None
