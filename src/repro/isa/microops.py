"""Table-driven micro-op pre-decode.

The cycle-level cores interpret :class:`~repro.isa.instruction.Instr`
objects: every hot phase chases ``entry.instr.info.<attr>`` attribute
chains and dispatches on :class:`~repro.isa.opcodes.Opcode` enum members
(identity tests in ``_complete``, enum-keyed dicts in the FU pool).  At
~100k dynamic micro-ops per second of host time, those lookups *are* the
interpreter.

This module lowers a :class:`~repro.isa.program.Program` **once** into a
:class:`MicroProgram`: dense parallel arrays indexed by static PC — int
opcode ids, an int flags bitmask, int FU ids, operand register tuples,
immediates, branch targets — plus one pre-bound execute closure per
static micro-op.  The closures are built from the per-opcode factories in
:data:`ALU_FACTORIES` / :data:`COND_FACTORIES`, which are written against
the same definitions as :func:`repro.isa.semantics.eval_alu` and
:func:`repro.isa.semantics.branch_taken`; ``tests/test_microops.py``
property-checks the equivalence over randomized operands for every
opcode.

The fast execution core (:mod:`repro.core.fastcore`) replaces its
per-cycle attribute/dict lookups with integer-indexed reads of these
arrays.  Lowering is cached per :class:`Program` identity (weakly, so
programs are not kept alive), which is what lets N sampling windows and
repeated benchmark runs share one decode table.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.instruction import Instr
from repro.isa.opcodes import OP_INFO, FUType, Opcode
from repro.isa.program import Program
from repro.isa.semantics import to_signed
from repro.memory.memory import U64_MASK

# --------------------------------------------------------------------- #
# Shared (program-independent) dispatch tables.
# --------------------------------------------------------------------- #

#: Stable int id per opcode (definition order of the Opcode enum).
OP_ID: Dict[Opcode, int] = {op: i for i, op in enumerate(Opcode)}
OP_BY_ID: Tuple[Opcode, ...] = tuple(Opcode)

#: Stable int id per functional-unit class.
FU_ID: Dict[FUType, int] = {fu: i for i, fu in enumerate(FUType)}
FU_BY_ID: Tuple[FUType, ...] = tuple(FUType)

# Flags bitmask: one bit per OpInfo boolean the pipeline consults, plus
# derived bits the hot loops want precomputed.
F_LOAD = 1 << 0
F_STORE = 1 << 1
F_BRANCH = 1 << 2
F_INDIRECT = 1 << 3
F_CONDITIONAL = 1 << 4
F_CALL = 1 << 5
F_RET = 1 << 6
F_LOAD_LIKE = 1 << 7
F_SERIALIZING = 1 << 8
F_WRITES_DEST = 1 << 9
F_MEM_BYTE = 1 << 10  # LOADB / STOREB: one-byte access
F_MEM = 1 << 11  # occupies the memory FU (loads, stores, clflush)

# Execute-kind: which arm of the writeback/complete dispatch the op takes.
# Mirrors the branch structure of OutOfOrderCore._complete exactly.
K_ALU = 0  # eval via the pre-bound closure
K_BRANCH = 1
K_STORE = 2
K_LOAD = 3  # result produced by the memory phase
K_CLFLUSH = 4
K_RDTSC = 5
K_RDMSR = 6
K_PASS = 7  # NOP / FENCE / HALT: nothing to compute

_SIXTY_THREE = 63


def _flags_for(op: Opcode) -> int:
    info = OP_INFO[op]
    flags = 0
    if info.is_load:
        flags |= F_LOAD
    if info.is_store:
        flags |= F_STORE
    if info.is_branch:
        flags |= F_BRANCH
    if info.is_indirect:
        flags |= F_INDIRECT
    if info.is_conditional:
        flags |= F_CONDITIONAL
    if info.is_call:
        flags |= F_CALL
    if info.is_ret:
        flags |= F_RET
    if info.is_load_like:
        flags |= F_LOAD_LIKE
    if info.is_serializing:
        flags |= F_SERIALIZING
    if info.writes_dest:
        flags |= F_WRITES_DEST
    if op in (Opcode.LOADB, Opcode.STOREB):
        flags |= F_MEM_BYTE
    if info.fu is FUType.MEM:
        flags |= F_MEM
    return flags


#: op -> flags bitmask (program-independent).
OP_FLAGS: Dict[Opcode, int] = {op: _flags_for(op) for op in Opcode}
OP_FLAGS_BY_ID: Tuple[int, ...] = tuple(OP_FLAGS[op] for op in OP_BY_ID)


def _kind_for(op: Opcode) -> int:
    info = OP_INFO[op]
    if info.is_branch:
        return K_BRANCH
    if info.is_store:
        return K_STORE
    if op is Opcode.CLFLUSH:
        return K_CLFLUSH
    if op is Opcode.RDTSC:
        return K_RDTSC
    if op is Opcode.RDMSR:
        return K_RDMSR
    if info.is_load:
        return K_LOAD
    if op in (Opcode.NOP, Opcode.FENCE, Opcode.HALT):
        return K_PASS
    return K_ALU


OP_KIND: Dict[Opcode, int] = {op: _kind_for(op) for op in Opcode}


# --------------------------------------------------------------------- #
# Per-opcode execute-closure factories.
#
# Each factory takes the static immediate and returns a closure
# ``fn(a, b) -> result``; the bound immediate removes one operand fetch
# and the opcode dispatch from the per-completion hot path.  These must
# compute exactly what :func:`repro.isa.semantics.eval_alu` computes —
# the property test compares them opcode by opcode.
# --------------------------------------------------------------------- #


def _f_add(imm):
    return lambda a, b: (a + b) & U64_MASK


def _f_sub(imm):
    return lambda a, b: (a - b) & U64_MASK


def _f_and(imm):
    return lambda a, b: a & b


def _f_or(imm):
    return lambda a, b: a | b


def _f_xor(imm):
    return lambda a, b: a ^ b


def _f_shl(imm):
    return lambda a, b: (a << (b & _SIXTY_THREE)) & U64_MASK


def _f_shr(imm):
    return lambda a, b: (a & U64_MASK) >> (b & _SIXTY_THREE)


def _f_slt(imm):
    return lambda a, b: 1 if to_signed(a) < to_signed(b) else 0


def _f_addi(imm):
    return lambda a, b: (a + imm) & U64_MASK


def _f_andi(imm):
    masked = imm & U64_MASK
    return lambda a, b: a & masked


def _f_ori(imm):
    masked = imm & U64_MASK
    return lambda a, b: a | masked


def _f_xori(imm):
    masked = imm & U64_MASK
    return lambda a, b: a ^ masked


def _f_shli(imm):
    shift = imm & _SIXTY_THREE
    return lambda a, b: (a << shift) & U64_MASK


def _f_shri(imm):
    shift = imm & _SIXTY_THREE
    return lambda a, b: (a & U64_MASK) >> shift


def _f_li(imm):
    value = imm & U64_MASK
    return lambda a, b: value


def _f_mul(imm):
    return lambda a, b: (a * b) & U64_MASK


def _f_div(imm):
    def div(a, b):
        divisor = to_signed(b)
        if divisor == 0:
            return U64_MASK
        return (to_signed(a) // divisor) & U64_MASK

    return div


def _f_fadd(imm):
    from repro.isa.semantics import _as_f64, _from_f64

    return lambda a, b: _from_f64(_as_f64(a) + _as_f64(b))


def _f_fmul(imm):
    from repro.isa.semantics import _as_f64, _from_f64

    return lambda a, b: _from_f64(_as_f64(a) * _as_f64(b))


def _f_fdiv(imm):
    from repro.isa.semantics import _as_f64, _from_f64

    def fdiv(a, b):
        fb = _as_f64(b)
        if fb == 0.0 or fb != fb:
            return 0
        return _from_f64(_as_f64(a) / fb)

    return fdiv


#: ALU-kind opcode -> closure factory.  Exactly the opcodes
#: :func:`repro.isa.semantics.eval_alu` accepts.
ALU_FACTORIES: Dict[Opcode, Callable] = {
    Opcode.ADD: _f_add,
    Opcode.SUB: _f_sub,
    Opcode.AND: _f_and,
    Opcode.OR: _f_or,
    Opcode.XOR: _f_xor,
    Opcode.SHL: _f_shl,
    Opcode.SHR: _f_shr,
    Opcode.SLT: _f_slt,
    Opcode.ADDI: _f_addi,
    Opcode.ANDI: _f_andi,
    Opcode.ORI: _f_ori,
    Opcode.XORI: _f_xori,
    Opcode.SHLI: _f_shli,
    Opcode.SHRI: _f_shri,
    Opcode.LI: _f_li,
    Opcode.MUL: _f_mul,
    Opcode.DIV: _f_div,
    Opcode.FADD: _f_fadd,
    Opcode.FMUL: _f_fmul,
    Opcode.FDIV: _f_fdiv,
}

#: Conditional-branch opcode -> direction closure ``fn(a, b) -> bool``.
#: Must match :func:`repro.isa.semantics.branch_taken`.
COND_FNS: Dict[Opcode, Callable] = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: to_signed(a) < to_signed(b),
    Opcode.BGE: lambda a, b: to_signed(a) >= to_signed(b),
}


def eval_uop(op: Opcode, a: int, b: int, imm: int) -> int:
    """Table-driven equivalent of :func:`repro.isa.semantics.eval_alu`.

    Exists for the property tests; the fast core binds the closure per
    static micro-op instead of dispatching per dynamic one.
    """
    factory = ALU_FACTORIES.get(op)
    if factory is None:
        from repro.errors import SimulationError

        raise SimulationError("eval_uop cannot evaluate %s" % op)
    return factory(imm)(a, b)


# --------------------------------------------------------------------- #
# The lowered program.
# --------------------------------------------------------------------- #


class MicroProgram:
    """One program lowered to dense, integer-indexed parallel arrays.

    Every list is indexed by static PC (instruction index).  The arrays
    carry only *static* facts — the dynamic state stays on
    :class:`~repro.core.rob.DynInstr` — so one ``MicroProgram`` is safely
    shared by any number of concurrently running cores (the lockstep
    multi-window runner relies on this).
    """

    __slots__ = (
        "program", "n",
        "op_ids", "kinds", "flags", "fu_ids", "latency",
        "rd", "srcs", "imm", "target",
        "exec_fns", "cond_fns",
    )

    def __init__(self, program: Program):
        instrs = program.instrs
        n = len(instrs)
        self.program = program
        self.n = n
        self.op_ids: List[int] = [0] * n
        self.kinds: List[int] = [0] * n
        self.flags: List[int] = [0] * n
        self.fu_ids: List[int] = [0] * n
        self.latency: List[int] = [0] * n
        self.rd: List[int] = [-1] * n  # -1: no destination
        self.srcs: List[tuple] = [()] * n  # shared with Instr.srcs
        self.imm: List[int] = [0] * n
        self.target: List[int] = [-1] * n
        #: K_ALU pcs: pre-bound ``fn(a, b) -> result``; None otherwise.
        self.exec_fns: List[Optional[Callable]] = [None] * n
        #: Conditional-branch pcs: ``fn(a, b) -> taken``; None otherwise.
        self.cond_fns: List[Optional[Callable]] = [None] * n

        for pc, instr in enumerate(instrs):
            self._lower_one(pc, instr)

    def _lower_one(self, pc: int, instr: Instr) -> None:
        op = instr.op
        info = instr.info
        kind = OP_KIND[op]
        self.op_ids[pc] = OP_ID[op]
        self.kinds[pc] = kind
        self.flags[pc] = OP_FLAGS[op]
        self.fu_ids[pc] = FU_ID[info.fu]
        self.latency[pc] = info.latency
        self.rd[pc] = instr.rd if instr.rd is not None else -1
        self.srcs[pc] = instr.srcs
        self.imm[pc] = instr.imm
        self.target[pc] = instr.target if instr.target is not None else -1
        if kind == K_ALU:
            self.exec_fns[pc] = ALU_FACTORIES[op](instr.imm)
        cond = COND_FNS.get(op)
        if cond is not None:
            self.cond_fns[pc] = cond


#: Lowered-program cache: Program identity -> MicroProgram, weak on the
#: program so caching never extends a workload's lifetime.
_CACHE: "weakref.WeakKeyDictionary[Program, MicroProgram]" = (
    weakref.WeakKeyDictionary()
)


def lower_program(program: Program) -> MicroProgram:
    """Lower *program* once; repeated calls return the cached tables."""
    cached = _CACHE.get(program)
    if cached is None:
        cached = MicroProgram(program)
        _CACHE[program] = cached
    return cached
