"""Architectural register namespace for the micro-op ISA.

The simulated machine has a single unified architectural register file of
:data:`NUM_ARCH_REGS` registers.  Registers are plain integers (indices into
the file) so that the hot simulation loops never pay attribute-lookup costs;
this module provides the symbolic names used by hand-written programs and by
the assembler.

Conventions (RISC-like):

* ``R0`` is hard-wired to zero.  Writes to it are discarded.
* ``R30`` (alias ``LR``) is the link register written by ``CALL``/``CALLR``
  and read by ``RET``.
* ``R31`` (alias ``SP``) is used as a stack pointer by generated workloads.
* ``F0``–``F7`` are "floating point" registers: they hold 64-bit patterns
  like every other register but are conventionally the operands of the FP
  micro-ops, which execute on the FP functional units.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 8
NUM_ARCH_REGS = NUM_INT_REGS + NUM_FP_REGS

# Integer registers.
R0 = 0
R1, R2, R3, R4, R5, R6, R7 = 1, 2, 3, 4, 5, 6, 7
R8, R9, R10, R11, R12, R13, R14, R15 = 8, 9, 10, 11, 12, 13, 14, 15
R16, R17, R18, R19, R20, R21, R22, R23 = 16, 17, 18, 19, 20, 21, 22, 23
R24, R25, R26, R27, R28, R29, R30, R31 = 24, 25, 26, 27, 28, 29, 30, 31

ZERO = R0
LR = R30
SP = R31

# Floating point registers occupy the tail of the unified file.
F0 = NUM_INT_REGS + 0
F1 = NUM_INT_REGS + 1
F2 = NUM_INT_REGS + 2
F3 = NUM_INT_REGS + 3
F4 = NUM_INT_REGS + 4
F5 = NUM_INT_REGS + 5
F6 = NUM_INT_REGS + 6
F7 = NUM_INT_REGS + 7

_NAMES = {}
for _i in range(NUM_INT_REGS):
    _NAMES[_i] = "r%d" % _i
for _i in range(NUM_FP_REGS):
    _NAMES[NUM_INT_REGS + _i] = "f%d" % _i
_NAMES[LR] = "lr"
_NAMES[SP] = "sp"


def reg_name(reg: int) -> str:
    """Return the canonical assembly name of architectural register *reg*."""
    try:
        return _NAMES[reg]
    except KeyError:
        raise ValueError("not an architectural register: %r" % (reg,)) from None


def is_arch_reg(reg: int) -> bool:
    """True when *reg* is a valid architectural register index."""
    return isinstance(reg, int) and 0 <= reg < NUM_ARCH_REGS


ALL_REGS = tuple(range(NUM_ARCH_REGS))
INT_REGS = tuple(range(NUM_INT_REGS))
FP_REGS = tuple(range(NUM_INT_REGS, NUM_ARCH_REGS))
# Registers the synthetic workload generator may freely clobber.
SCRATCH_REGS = tuple(range(1, 28))
