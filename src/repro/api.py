"""The one documented simulation surface.

Everything a caller needs lives here, under four run functions with one
shared keyword vocabulary and a typed client for the job server:

* :func:`simulate`     — run one program to completion (OoO or in-order)
* :func:`run_attack`   — run one attack PoC program (same knobs)
* :func:`run_window`   — one SMARTS measurement window (same knobs)
* :func:`submit_suite` — the full paper sweep through the parallel engine
* :class:`ServerClient` — HTTP client for ``repro.server`` (lazy import)

The shared keywords mean the same thing everywhere they appear:

``in_order``
    Pick the serial timing core instead of the out-of-order pipeline.
``max_cycles``
    Cycle budget; ``None`` selects the per-core default (5M cycles
    out-of-order, 50M in-order — the in-order core needs more cycles
    for the same instruction count).
``fast_forward``
    Toggle the OoO core's bit-identical idle-cycle fast-forward.
    Results are unchanged either way; ``False`` exists for equivalence
    tests and the simulator-speed benchmark.
``manifest``
    Write a JSON provenance record for the run under
    ``results/manifests/`` (or ``REPRO_MANIFEST_DIR``).  Opt-in so bulk
    callers like the test suite produce no files.

The historical ``run_program``/``run_inorder`` split is gone from the
public surface; the old names survive only as deprecation shims on their
defining modules (:mod:`repro.core.ooo`, :mod:`repro.core.inorder`).

The differential fuzzer's entry points (``run_with_oracle``,
``run_campaign``, ``run_seed``, ``run_smt_seed``, ``TaintOracle``,
``LeakWitness``), the two-context co-residency model
(``SmtMachine``, ``run_pair`` from :mod:`repro.smt`) and the telemetry
layer's names are re-exported lazily — they resolve on first attribute
access, so plain ``simulate`` users never pay the import.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.config import SimConfig
from repro.core import make_core
from repro.core.inorder import InOrderCore
from repro.core.ooo import OutOfOrderCore
from repro.core.outcome import RunOutcome
from repro.isa.program import Program
from repro.stats.counters import PipelineStats

#: Default cycle budgets per core class, shared by every run function.
_DEFAULT_MAX_CYCLES_OOO = 5_000_000
_DEFAULT_MAX_CYCLES_INORDER = 50_000_000


def _budget(max_cycles: Optional[int], in_order: bool) -> int:
    if max_cycles is not None:
        return max_cycles
    return _DEFAULT_MAX_CYCLES_INORDER if in_order \
        else _DEFAULT_MAX_CYCLES_OOO


def _write_run_manifest(config, workload: str, stats) -> None:
    from repro.obs.manifest import build_manifest, write_manifest

    write_manifest(build_manifest(config, workload=workload, stats=stats))


def simulate(
    program: Program,
    config: Optional[SimConfig] = None,
    *,
    in_order: bool = False,
    max_cycles: Optional[int] = None,
    direction_predictor: str = "tournament",
    fast_forward: bool = True,
    manifest: bool = False,
) -> RunOutcome:
    """Run *program* to completion on the configured machine.

    This is the canonical entry point for single-program simulation:

    >>> outcome = simulate(program, nda_config(NDAPolicyName.STRICT))
    >>> baseline = simulate(program, in_order=True)

    ``in_order=True`` selects the serial timing core (the paper's
    TimingSimpleCPU analog), which ignores ``direction_predictor``.
    See the module docstring for the shared keyword contract.
    """
    if in_order:
        core: Union[InOrderCore, OutOfOrderCore] = InOrderCore(
            program, config
        )
    else:
        core = make_core(
            program, config, direction_predictor=direction_predictor,
            fast_forward=fast_forward,
        )
    from repro.obs.spans import maybe_tracer
    tracer = maybe_tracer()
    if tracer is None:
        outcome = core.run(max_cycles=_budget(max_cycles, in_order))
    else:
        with tracer.span(
            "simulate",
            attrs={"program": program.name or "",
                   "in_order": bool(in_order)},
        ) as span:
            outcome = core.run(max_cycles=_budget(max_cycles, in_order))
            span.attrs["cycles"] = outcome.stats.cycles
    if manifest:
        _write_run_manifest(core.config, program.name or "", outcome.stats)
    return outcome


def run_attack(
    program: Program,
    config: Optional[SimConfig] = None,
    *,
    in_order: bool = False,
    max_cycles: Optional[int] = None,
    fast_forward: bool = True,
    manifest: bool = False,
) -> RunOutcome:
    """Execute an attack proof-of-concept program on the chosen core.

    Identical to :func:`simulate` minus the direction-predictor knob
    (attacks pin their own predictor state); the host-side harnesses in
    :mod:`repro.attacks` read the covert-channel timings out of the
    returned outcome's final memory.
    """
    outcome = simulate(
        program, config, in_order=in_order,
        max_cycles=max_cycles, fast_forward=fast_forward,
    )
    if manifest:
        cfg = config if config is not None else SimConfig()
        _write_run_manifest(cfg, program.name or "", outcome.stats)
    return outcome


def run_window(
    program: Program,
    config: SimConfig,
    warmup: int = 2_000,
    measure: int = 8_000,
    *,
    in_order: bool = False,
    max_cycles: Optional[int] = None,
    fast_forward: bool = True,
    manifest: bool = False,
) -> PipelineStats:
    """Run one SMARTS measurement window and return its counters.

    Discards the first *warmup* committed instructions and measures the
    next *measure*; raises :class:`~repro.errors.SimulationError` if the
    program halts before the warm-up completes.  Shares the keyword
    contract of :func:`simulate` (see module docstring).
    """
    from repro.stats.sampling import run_window as _run_window

    window = _run_window(
        program, config, warmup, measure, in_order=in_order,
        max_cycles=_budget(max_cycles, in_order),
        fast_forward=fast_forward,
    )
    if manifest:
        _write_run_manifest(config, program.name or "", window)
    return window


def submit_suite(
    benchmarks=None,
    configs=None,
    *,
    samples: int = 3,
    warmup: int = 2_000,
    measure: int = 8_000,
    instructions: int = 14_000,
    seed0: int = 0,
    jobs: Optional[int] = None,
    cache=False,
    cache_dir=None,
    remote_cache: Optional[str] = None,
    progress=None,
    collect_trace: bool = False,
    backend=None,
    backend_options=None,
    checkpoint=None,
    resume=None,
):
    """Run a full sweep through the parallel suite engine.

    A keyword-only facade over :func:`repro.harness.experiment.run_suite`
    (which remains available for positional callers): expands
    ``(benchmark, config, sample)`` jobs, hands them to an execution
    backend (``backend=`` — ``serial``, ``local-pool``, or
    ``worker-protocol`` socket workers; bit-identical results either
    way), and serves repeats from the content-addressed result store
    (``remote_cache=<server URL>`` tiers it with the job server's shared
    artifact routes).  ``checkpoint``/``resume`` keep and replay a
    resumable manifest so preempted sweeps restart where they died.
    Returns a :class:`~repro.harness.experiment.SuiteResult` with
    per-job engine/cache accounting on ``.engine``.

    For the same sweep as a durable HTTP job instead, submit the spec
    through :class:`ServerClient` — the server derives the identical
    cache keys, so warm results short-circuit its queue too.
    """
    from repro.harness.experiment import DEFAULT_SUITE, run_suite

    return run_suite(
        benchmarks if benchmarks is not None else DEFAULT_SUITE,
        configs,
        samples=samples, warmup=warmup, measure=measure,
        instructions=instructions, seed0=seed0, jobs=jobs,
        cache=cache, cache_dir=cache_dir, remote_cache=remote_cache,
        progress=progress, collect_trace=collect_trace,
        backend=backend, backend_options=backend_options,
        checkpoint=checkpoint, resume=resume,
    )


#: Fuzzer names served lazily from :mod:`repro.fuzz` (PEP 562).
_FUZZ_EXPORTS = (
    "LeakWitness",
    "TaintOracle",
    "run_campaign",
    "run_seed",
    "run_smt_seed",
    "run_with_oracle",
)

#: Co-residency names served lazily from :mod:`repro.smt`, same pattern.
_SMT_EXPORTS = (
    "SmtMachine",
    "run_pair",
)

#: Telemetry names served lazily from :mod:`repro.obs`, same pattern.
_OBS_EXPORTS = (
    "EventBus",
    "MetricsRegistry",
    "MetricsSampler",
    "build_manifest",
    "ensure_bus",
    "metrics_from_campaign",
    "metrics_from_run",
    "smt_trace_events",
    "write_manifest",
)

#: Job-server client names served lazily from :mod:`repro.server.client`.
_SERVER_EXPORTS = (
    "JobStatus",
    "ServerClient",
    "ServerError",
)

__all__ = [
    "simulate",
    "run_attack",
    "run_window",
    "submit_suite",
    *_SERVER_EXPORTS,
    *_FUZZ_EXPORTS,
    *_SMT_EXPORTS,
    *_OBS_EXPORTS,
]


def __getattr__(name: str):
    if name in _FUZZ_EXPORTS:
        import repro.fuzz

        return getattr(repro.fuzz, name)
    if name in _SMT_EXPORTS:
        import repro.smt

        return getattr(repro.smt, name)
    if name in _OBS_EXPORTS:
        import repro.obs

        return getattr(repro.obs, name)
    if name in _SERVER_EXPORTS:
        import repro.server.client

        return getattr(repro.server.client, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


def __dir__():
    return sorted(set(globals()) | set(__all__))
