"""The one-call simulation facade.

:func:`simulate` subsumes the historical ``run_program`` (out-of-order)
and ``run_inorder`` (in-order baseline) split: callers pick the core with
the ``in_order`` keyword instead of picking a function.  The old names
remain as thin deprecation shims.

The differential fuzzer's entry points (``run_with_oracle``,
``run_campaign``, ``run_seed``, ``TaintOracle``, ``LeakWitness``) are
re-exported here lazily — they resolve to :mod:`repro.fuzz` on first
attribute access, so plain ``simulate`` users never pay the import.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.config import SimConfig
from repro.core.inorder import InOrderCore
from repro.core.ooo import OutOfOrderCore
from repro.core.outcome import RunOutcome
from repro.isa.program import Program

#: Default cycle budgets per core class (the in-order core needs more
#: cycles for the same instruction count).
_DEFAULT_MAX_CYCLES_OOO = 5_000_000
_DEFAULT_MAX_CYCLES_INORDER = 50_000_000


def simulate(
    program: Program,
    config: Optional[SimConfig] = None,
    *,
    in_order: bool = False,
    max_cycles: Optional[int] = None,
    direction_predictor: str = "tournament",
    fast_forward: bool = True,
    manifest: bool = False,
) -> RunOutcome:
    """Run *program* to completion on the configured machine.

    This is the canonical entry point for single-program simulation:

    >>> outcome = simulate(program, nda_config(NDAPolicyName.STRICT))
    >>> baseline = simulate(program, in_order=True)

    ``in_order=True`` selects the serial timing core (the paper's
    TimingSimpleCPU analog), which ignores ``direction_predictor``.
    ``max_cycles`` defaults to a per-core budget (5M cycles out-of-order,
    50M in-order).  ``fast_forward=False`` disables the out-of-order
    core's bit-identical idle-cycle fast-forward (results are unchanged
    either way; the flag exists for equivalence tests and the simulator
    speed benchmark).  ``manifest=True`` writes a JSON provenance record
    for the run under ``results/manifests/`` (or ``REPRO_MANIFEST_DIR``)
    — opt-in so bulk callers like the test suite produce no files.
    """
    if in_order:
        core: Union[InOrderCore, OutOfOrderCore] = InOrderCore(
            program, config
        )
        budget = max_cycles or _DEFAULT_MAX_CYCLES_INORDER
    else:
        core = OutOfOrderCore(
            program, config, direction_predictor=direction_predictor,
            fast_forward=fast_forward,
        )
        budget = max_cycles or _DEFAULT_MAX_CYCLES_OOO
    outcome = core.run(max_cycles=budget)
    if manifest:
        from repro.obs.manifest import build_manifest, write_manifest

        write_manifest(build_manifest(
            core.config,
            workload=program.name or "",
            stats=outcome.stats,
        ))
    return outcome


#: Fuzzer names served lazily from :mod:`repro.fuzz` (PEP 562).
_FUZZ_EXPORTS = (
    "LeakWitness",
    "TaintOracle",
    "run_campaign",
    "run_seed",
    "run_with_oracle",
)

#: Telemetry names served lazily from :mod:`repro.obs`, same pattern.
_OBS_EXPORTS = (
    "EventBus",
    "MetricsRegistry",
    "MetricsSampler",
    "build_manifest",
    "ensure_bus",
    "metrics_from_campaign",
    "metrics_from_run",
    "write_manifest",
)


def __getattr__(name: str):
    if name in _FUZZ_EXPORTS:
        import repro.fuzz

        return getattr(repro.fuzz, name)
    if name in _OBS_EXPORTS:
        import repro.obs

        return getattr(repro.obs, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
