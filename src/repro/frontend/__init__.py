"""Front-end: branch prediction structures and the fetch unit."""

from repro.frontend.btb import BTB
from repro.frontend.direction import (
    AlwaysNotTaken,
    AlwaysTaken,
    Bimodal,
    DirectionPredictor,
    GShare,
    Tournament,
    make_direction_predictor,
)
from repro.frontend.fetch import INSTR_BYTES, FetchedOp, FetchUnit
from repro.frontend.ras import RAS

__all__ = [
    "BTB",
    "AlwaysNotTaken",
    "AlwaysTaken",
    "Bimodal",
    "DirectionPredictor",
    "GShare",
    "Tournament",
    "make_direction_predictor",
    "INSTR_BYTES",
    "FetchedOp",
    "FetchUnit",
    "RAS",
]
