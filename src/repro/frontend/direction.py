"""Branch direction predictors.

All predictors update speculatively at branch *execution* and are never
rolled back on squash — the property that lets an attacker mis-train them
(Spectre v1's access phase) and that makes the pattern history table itself
a potential side channel (§2 of the paper).
"""

from __future__ import annotations

from typing import List


class DirectionPredictor:
    """Interface: predict and update a conditional branch's direction."""

    def predict(self, pc: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        raise NotImplementedError


class AlwaysTaken(DirectionPredictor):
    """Degenerate predictor used by tests."""

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass


class AlwaysNotTaken(DirectionPredictor):
    """Degenerate predictor used by tests."""

    def predict(self, pc: int) -> bool:
        return False

    def update(self, pc: int, taken: bool) -> None:
        pass


class Bimodal(DirectionPredictor):
    """Classic table of 2-bit saturating counters indexed by PC."""

    def __init__(self, index_bits: int = 12):
        self.mask = (1 << index_bits) - 1
        self.table: List[int] = [2] * (1 << index_bits)  # weakly taken

    def _index(self, pc: int) -> int:
        return pc & self.mask

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self.table[index]
        if taken:
            self.table[index] = min(3, counter + 1)
        else:
            self.table[index] = max(0, counter - 1)


class GShare(DirectionPredictor):
    """Global-history predictor: PC xor history indexes the counter table."""

    def __init__(self, index_bits: int = 12, history_bits: int = 12):
        self.index_mask = (1 << index_bits) - 1
        self.history_mask = (1 << history_bits) - 1
        self.table: List[int] = [2] * (1 << index_bits)
        self.history = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self.history) & self.index_mask

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self.table[index]
        if taken:
            self.table[index] = min(3, counter + 1)
        else:
            self.table[index] = max(0, counter - 1)
        self.history = ((self.history << 1) | int(taken)) & self.history_mask


class Tournament(DirectionPredictor):
    """Chooser between a bimodal and a gshare component (Alpha 21264 style)."""

    def __init__(self, index_bits: int = 12):
        self.bimodal = Bimodal(index_bits)
        self.gshare = GShare(index_bits)
        self.chooser: List[int] = [2] * (1 << index_bits)
        self.mask = (1 << index_bits) - 1

    def predict(self, pc: int) -> bool:
        if self.chooser[pc & self.mask] >= 2:
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        bimodal_correct = self.bimodal.predict(pc) == taken
        gshare_correct = self.gshare.predict(pc) == taken
        index = pc & self.mask
        if gshare_correct and not bimodal_correct:
            self.chooser[index] = min(3, self.chooser[index] + 1)
        elif bimodal_correct and not gshare_correct:
            self.chooser[index] = max(0, self.chooser[index] - 1)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)


def make_direction_predictor(
    name: str, index_bits: int = 12
) -> DirectionPredictor:
    """Factory keyed by predictor name."""
    if name == "bimodal":
        return Bimodal(index_bits)
    if name == "gshare":
        return GShare(index_bits)
    if name == "tournament":
        return Tournament(index_bits)
    if name == "taken":
        return AlwaysTaken()
    if name == "not-taken":
        return AlwaysNotTaken()
    raise ValueError("unknown direction predictor %r" % name)
