"""Return address stack.

Pushed at fetch of CALL/CALLR, popped at fetch of RET.  Because the RAS is
speculatively updated in the front-end, the core snapshots it at every
in-flight branch and restores the snapshot on squash (standard RAS repair).
Attackers can still mis-train it between runs — that is how ret2spec-style
control steering works — so repair restores *state*, never *history*.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

Snapshot = Tuple[Tuple[int, ...], int]


class RAS:
    """Fixed-depth circular return-address stack."""

    def __init__(self, entries: int = 16):
        if entries < 1:
            raise ValueError("RAS needs at least one entry")
        self.entries = entries
        self._stack: List[int] = [0] * entries
        self._top = 0  # number of valid entries, saturating at `entries`
        self._pos = 0  # index one past the most recent push (circular)
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    def push(self, return_pc: int) -> None:
        self._stack[self._pos] = return_pc
        self._pos = (self._pos + 1) % self.entries
        self._top = min(self._top + 1, self.entries)
        self.pushes += 1

    def pop(self) -> Optional[int]:
        """Predicted return target, or None when the stack is empty."""
        if self._top == 0:
            self.underflows += 1
            return None
        self._pos = (self._pos - 1) % self.entries
        self._top -= 1
        self.pops += 1
        return self._stack[self._pos]

    def peek(self) -> Optional[int]:
        if self._top == 0:
            return None
        return self._stack[(self._pos - 1) % self.entries]

    @property
    def depth(self) -> int:
        return self._top

    def snapshot(self) -> Snapshot:
        """Capture state for later repair."""
        return (tuple(self._stack), self._top, self._pos)  # type: ignore[return-value]

    def restore(self, snap) -> None:
        """Repair to a snapshot taken at a squashed branch."""
        stack, top, pos = snap
        self._stack = list(stack)
        self._top = top
        self._pos = pos
