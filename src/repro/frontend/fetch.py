"""Fetch unit: follows the predicted path through the static program.

The fetch unit is where wrong-path execution *begins*: it follows whatever
the direction predictor / BTB / RAS say, and the back-end discovers
mispredictions only at branch execution.  Instruction PCs are instruction
indices; the instruction cache is addressed at ``pc * INSTR_BYTES``.

Timing model: L1I hits are fully pipelined (no stall); an L1I miss stalls
fetch until the fill returns.  An indirect branch with no BTB/RAS prediction
stalls fetch at the branch until the back-end resolves it (the paper's §4.1
dispatch-stall argument for phantom branches applies the same way).
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend.btb import BTB
from repro.frontend.direction import DirectionPredictor
from repro.frontend.ras import RAS
from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy

INSTR_BYTES = 4


class FetchedOp:
    """One fetched micro-op plus its front-end prediction metadata.

    A plain ``__slots__`` class (not a dataclass): one is allocated per
    fetched micro-op, which makes it one of the hottest allocations in
    the simulator.
    """

    __slots__ = (
        "instr", "pc", "fetch_cycle", "pred_next_pc", "pred_taken",
        "ras_snapshot", "btb_hit", "unpredicted",
    )

    def __init__(
        self,
        instr: Instr,
        pc: int,
        fetch_cycle: int,
        pred_next_pc: int,  # where fetch went after this instruction
        pred_taken: bool = False,  # conditional branches only
        ras_snapshot: Optional[tuple] = None,  # branches only (for repair)
        btb_hit: bool = False,
        # True when fetch had no prediction for an indirect branch and
        # stalled behind it: no wrong path to squash, only a redirect.
        unpredicted: bool = False,
    ):
        self.instr = instr
        self.pc = pc
        self.fetch_cycle = fetch_cycle
        self.pred_next_pc = pred_next_pc
        self.pred_taken = pred_taken
        self.ras_snapshot = ras_snapshot
        self.btb_hit = btb_hit
        self.unpredicted = unpredicted


class FetchUnit:
    """Prediction-directed fetch."""

    def __init__(
        self,
        program: Program,
        hierarchy: MemoryHierarchy,
        direction: DirectionPredictor,
        btb: BTB,
        ras: RAS,
        fetch_width: int = 8,
    ):
        self.program = program
        self.hierarchy = hierarchy
        self.direction = direction
        self.btb = btb
        self.ras = ras
        self.fetch_width = fetch_width
        self.fetch_pc = 0
        self._icache_ready = 0
        self._current_line = -1
        self._wait_for_resolve = False
        self._halt_seen = False
        self.fetched_ops = 0
        self.icache_stall_cycles = 0
        self.indirect_stall_cycles = 0

    # ------------------------------------------------------------------ #
    # Read-only state exposed for the core's idle-cycle fast-forward.
    # ------------------------------------------------------------------ #

    @property
    def halt_seen(self) -> bool:
        """Fetch ran past a HALT and stopped (until a redirect)."""
        return self._halt_seen

    @property
    def waiting_for_resolve(self) -> bool:
        """Fetch stalled behind an unpredicted indirect branch."""
        return self._wait_for_resolve

    @property
    def icache_ready_cycle(self) -> int:
        """First cycle fetch may proceed after a miss/redirect."""
        return self._icache_ready

    def account_stalls(self, now: int, span: int) -> None:
        """Batch-replicate ``stalled()``'s counters for a quiescent span.

        The caller (the core's fast-forward) guarantees the fetch unit's
        stall cause cannot change during ``[now, now + span)`` and, for
        the i-cache case, that the span ends at or before
        ``icache_ready_cycle`` — so each skipped cycle would have bumped
        exactly the counter bumped here.
        """
        if self._halt_seen:
            return
        if self._wait_for_resolve:
            self.indirect_stall_cycles += span
        elif now < self._icache_ready:
            self.icache_stall_cycles += span
        # else: fetch is not stalled (the program ran out past fetch_pc);
        # stalled() would count nothing.

    # ------------------------------------------------------------------ #

    def stalled(self, now: int) -> bool:
        """True when no instruction can be fetched this cycle."""
        if self._halt_seen:
            return True
        if self._wait_for_resolve:
            self.indirect_stall_cycles += 1
            return True
        if now < self._icache_ready:
            self.icache_stall_cycles += 1
            return True
        return False

    def fetch(self, now: int) -> List[FetchedOp]:
        """Fetch up to ``fetch_width`` micro-ops along the predicted path."""
        if self.stalled(now):
            return []
        out: List[FetchedOp] = []
        while len(out) < self.fetch_width:
            instr = self.program.fetch(self.fetch_pc)
            if instr is None:
                break
            if not self._line_available(self.fetch_pc, now):
                break  # L1I miss: retry once the fill returns
            fetched = self._predict(instr, now)
            out.append(fetched)
            self.fetched_ops += 1
            self.fetch_pc = fetched.pred_next_pc
            if instr.op is Opcode.HALT:
                self._halt_seen = True
                break  # nothing meaningful follows a halt
            if self._wait_for_resolve:
                break  # unpredicted indirect target
            if instr.info.is_branch and fetched.pred_next_pc != fetched.pc + 1:
                break  # taken prediction ends the fetch group
        return out

    def _line_available(self, pc: int, now: int) -> bool:
        line = (pc * INSTR_BYTES) >> 6
        if line == self._current_line:
            return True
        result = self.hierarchy.inst_access(pc * INSTR_BYTES, now)
        self._current_line = line
        if result.l1_hit:
            return True
        self._icache_ready = now + result.latency
        return False

    # ------------------------------------------------------------------ #

    def _predict(self, instr: Instr, now: int) -> FetchedOp:
        pc = instr.pc
        op = instr.op
        if not instr.info.is_branch:
            return FetchedOp(instr, pc, now, pc + 1)

        if instr.info.is_conditional:
            taken = self.direction.predict(pc)
            next_pc = instr.target if taken else pc + 1
            return FetchedOp(
                instr, pc, now, next_pc, pred_taken=taken,
                ras_snapshot=self.ras.snapshot(),
            )
        if op is Opcode.JMP:
            return FetchedOp(
                instr, pc, now, instr.target,
                ras_snapshot=self.ras.snapshot(),
            )
        if op is Opcode.CALL:
            self.ras.push(pc + 1)
            return FetchedOp(
                instr, pc, now, instr.target, pred_taken=True,
                ras_snapshot=self.ras.snapshot(),
            )
        if op is Opcode.CALLR:
            predicted = self.btb.lookup(pc)
            if predicted is None:
                self._wait_for_resolve = True
                return FetchedOp(
                    instr, pc, now, pc + 1,
                    ras_snapshot=self.ras.snapshot(), unpredicted=True,
                )
            self.ras.push(pc + 1)
            return FetchedOp(
                instr, pc, now, predicted, pred_taken=True,
                ras_snapshot=self.ras.snapshot(), btb_hit=True,
            )
        if op is Opcode.JR:
            predicted = self.btb.lookup(pc)
            if predicted is None:
                self._wait_for_resolve = True
                return FetchedOp(
                    instr, pc, now, pc + 1,
                    ras_snapshot=self.ras.snapshot(), unpredicted=True,
                )
            return FetchedOp(
                instr, pc, now, predicted, pred_taken=True,
                ras_snapshot=self.ras.snapshot(), btb_hit=True,
            )
        if op is Opcode.RET:
            predicted = self.ras.pop()
            if predicted is None:
                predicted = self.btb.lookup(pc)
            if predicted is None:
                self._wait_for_resolve = True
                return FetchedOp(
                    instr, pc, now, pc + 1,
                    ras_snapshot=self.ras.snapshot(), unpredicted=True,
                )
            return FetchedOp(
                instr, pc, now, predicted, pred_taken=True,
                ras_snapshot=self.ras.snapshot(),
            )
        raise AssertionError("unhandled branch opcode %s" % op)

    # ------------------------------------------------------------------ #

    def redirect(self, target: int, ready_cycle: int) -> None:
        """Steer fetch to *target*; no instruction fetches before
        *ready_cycle* (squash penalty / front-end refill)."""
        self.fetch_pc = target
        # A squash cancels any in-flight wrong-path instruction fetch.
        self._icache_ready = ready_cycle
        self._wait_for_resolve = False
        self._halt_seen = False
        self._current_line = -1

    def repair_ras(self, snapshot) -> None:
        """Restore the RAS to the snapshot captured at a squashed branch."""
        if snapshot is not None:
            self.ras.restore(snapshot)
