"""Branch target buffer.

A set-associative map from branch PC to predicted target.  Entries are
installed and replaced at branch *execution*, including on the wrong path,
and squash never reverts them — the paper's §3 demonstrates that this makes
the BTB a covert channel, and our :mod:`repro.attacks.spectre_btb` PoC
exercises precisely this structure.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.memory.replacement import LRUPolicy


class BTB:
    """Set-associative branch target buffer with LRU replacement."""

    def __init__(self, entries: int = 4096, assoc: int = 4):
        if entries % assoc:
            raise ValueError("BTB entries must divide evenly into ways")
        self.num_sets = entries // assoc
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("BTB set count must be a power of two")
        self.assoc = assoc
        self._set_mask = self.num_sets - 1
        # Per set: pc -> target, plus way bookkeeping for LRU.
        self._targets: List[Dict[int, int]] = [
            dict() for _ in range(self.num_sets)
        ]
        self._ways: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._way_pc: List[Dict[int, int]] = [
            dict() for _ in range(self.num_sets)
        ]
        self._repl: List[LRUPolicy] = [
            LRUPolicy(assoc) for _ in range(self.num_sets)
        ]
        self.lookups = 0
        self.hits = 0
        self.updates = 0
        # Optional callable target with on_btb_update(pc, target); used
        # by the fuzzing taint oracle (repro.fuzz).
        self.observer = None
        # Optional telemetry EventBus (repro.obs.bus), fed the same
        # install/refresh events as btb_update.
        self.obs = None

    def _index(self, pc: int) -> int:
        return pc & self._set_mask

    def lookup(self, pc: int) -> Optional[int]:
        """Predicted target for the branch at *pc*, or None on miss."""
        self.lookups += 1
        index = self._index(pc)
        target = self._targets[index].get(pc)
        if target is not None:
            self.hits += 1
            self._repl[index].touch(self._ways[index][pc])
        return target

    def probe(self, pc: int) -> Optional[int]:
        """Non-destructive lookup (no stats, no LRU update)."""
        return self._targets[self._index(pc)].get(pc)

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the mapping ``pc -> target``.

        Called at branch execution for every taken or indirect branch,
        wrong-path included.
        """
        self.updates += 1
        if self.observer is not None:
            self.observer.on_btb_update(pc, target)
        obs = self.obs
        if obs is not None and obs.btb_update is not None:
            obs.btb_update(pc, target)
        index = self._index(pc)
        targets = self._targets[index]
        ways = self._ways[index]
        if pc in targets:
            targets[pc] = target
            self._repl[index].touch(ways[pc])
            return
        if len(targets) >= self.assoc:
            victim_way = self._repl[index].victim()
            victim_pc = self._way_pc[index].pop(victim_way)
            del targets[victim_pc]
            del ways[victim_pc]
            self._repl[index].forget(victim_way)
            way = victim_way
        else:
            used = set(ways.values())
            way = next(w for w in range(self.assoc) if w not in used)
        targets[pc] = target
        ways[pc] = way
        self._way_pc[index][way] = pc
        self._repl[index].touch(way)

    def invalidate(self, pc: int) -> bool:
        """Drop the entry for *pc*; True when one existed."""
        index = self._index(pc)
        if pc not in self._targets[index]:
            return False
        way = self._ways[index].pop(pc)
        del self._targets[index][pc]
        del self._way_pc[index][way]
        self._repl[index].forget(way)
        return True

    def flush(self) -> None:
        for index in range(self.num_sets):
            self._targets[index].clear()
            self._ways[index].clear()
            self._way_pc[index].clear()
            self._repl[index] = LRUPolicy(self.assoc)
