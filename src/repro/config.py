"""Simulation configuration (paper Table 3).

The defaults reproduce the gem5 configuration of the paper: an 8-issue
Haswell-like out-of-order core at 2 GHz with 192 ROB entries, 32-entry load
and store queues, a 4096-entry BTB, a 16-entry RAS, 32 kB 8-way L1 caches
with a 4-cycle round trip and one port, a 2 MB 16-way L2 with a 40-cycle
round trip, and 50 ns DRAM (100 cycles at 2 GHz).
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigError


class ProtectionScheme(enum.Enum):
    """Legacy enum for the original four scheme selections.

    Deprecated: schemes are now identified by their registry name string
    (see :mod:`repro.schemes`) plus a per-scheme parameter block.
    ``SimConfig`` still accepts these enum members (and the legacy name
    strings) and coerces them, so old call sites keep working.
    """

    NONE = "ooo"
    NDA = "nda"
    INVISISPEC_SPECTRE = "invisispec-spectre"
    INVISISPEC_FUTURE = "invisispec-future"


#: Legacy scheme spellings -> (registry name, parameter overrides).
_LEGACY_SCHEMES = {
    "ooo": ("none", None),
    "invisispec-spectre": ("invisispec", {"future": False}),
    "invisispec-future": ("invisispec", {"future": True}),
}


class NDAPolicyName(enum.Enum):
    """The six NDA propagation policies (Table 2 rows 1-6)."""

    PERMISSIVE = "permissive"
    PERMISSIVE_BR = "permissive+br"
    STRICT = "strict"
    STRICT_BR = "strict+br"
    LOAD_RESTRICTION = "restricted-loads"
    FULL_PROTECTION = "full-protection"


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    size_bytes: int
    line_bytes: int
    assoc: int
    round_trip_cycles: int
    ports: int = 1

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)

    def validate(self, name: str) -> None:
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise ConfigError(
                "%s size %d not divisible by line*assoc" % (name, self.size_bytes)
            )
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigError("%s line size must be a power of two" % name)
        num_sets = self.num_sets
        if num_sets & (num_sets - 1):
            raise ConfigError("%s set count must be a power of two" % name)
        if self.round_trip_cycles < 1:
            raise ConfigError("%s latency must be positive" % name)


@dataclass(frozen=True)
class MemConfig:
    """Cache hierarchy + DRAM timing (Table 3)."""

    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 64, 8, 4)
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 64, 8, 4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(2 * 1024 * 1024, 64, 16, 40)
    )
    dram_cycles: int = 100  # 50 ns at 2 GHz
    mshrs: int = 16  # outstanding off-chip misses
    # Optional data prefetcher ("none" | "nextline" | "stride").  The
    # paper's Table 3 machine has none; prefetchers are modeled because
    # section 2 lists them among speculation-trained structures.
    prefetcher: str = "none"
    prefetch_degree: int = 2
    # Cache replacement policy ("lru" | "plru" | "random").
    replacement: str = "lru"

    def validate(self) -> None:
        self.l1i.validate("l1i")
        self.l1d.validate("l1d")
        self.l2.validate("l2")
        if self.dram_cycles < 1:
            raise ConfigError("dram_cycles must be positive")
        if self.mshrs < 1:
            raise ConfigError("mshrs must be positive")
        if self.prefetcher not in ("none", "nextline", "stride"):
            raise ConfigError("unknown prefetcher %r" % self.prefetcher)
        if self.prefetch_degree < 1:
            raise ConfigError("prefetch_degree must be positive")
        if self.replacement not in ("lru", "plru", "random"):
            raise ConfigError("unknown replacement policy %r" % self.replacement)


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order back-end resources (Table 3)."""

    fetch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    rob_entries: int = 192
    iq_entries: int = 64
    lq_entries: int = 32
    sq_entries: int = 32
    phys_regs: int = 300
    btb_entries: int = 4096
    btb_assoc: int = 4
    ras_entries: int = 16
    bp_tables_bits: int = 12  # direction-predictor index width
    # Functional units: (count, type) mirrors a Haswell-like 8-issue core.
    num_alu: int = 4
    num_mul: int = 1
    num_div: int = 1
    num_fp: int = 2
    num_mem_ports: int = 2  # AGU/issue slots; L1D port count gates data access
    num_branch: int = 2
    # Cycles between branch resolution and the first redirected fetch.
    squash_penalty: int = 3
    # Front-end pipeline depth: cycles from fetch to rename/dispatch.
    frontend_depth: int = 4
    # Extra NDA broadcast-logic latency (Fig 9e sensitivity knob).
    nda_broadcast_delay: int = 0
    # FPU power gating (the NetSpectre covert channel, §3): after
    # fpu_sleep_cycles without an FP issue the unit powers down, and the
    # next FP op pays fpu_wakeup_cycles extra.  Wrong-path FP execution
    # wakes the unit and the squash does not put it back to sleep.
    fpu_sleep_cycles: int = 200
    fpu_wakeup_cycles: int = 20
    # Memory dependence predictor ("none" | "waittable").  The paper's
    # baseline always speculatively bypasses (section 4.1), which is what
    # Spectre v4 exploits.
    memdep: str = "none"

    def validate(self) -> None:
        positive = [
            ("fetch_width", self.fetch_width),
            ("issue_width", self.issue_width),
            ("commit_width", self.commit_width),
            ("rob_entries", self.rob_entries),
            ("iq_entries", self.iq_entries),
            ("lq_entries", self.lq_entries),
            ("sq_entries", self.sq_entries),
            ("btb_entries", self.btb_entries),
            ("ras_entries", self.ras_entries),
            ("num_alu", self.num_alu),
            ("num_fp", self.num_fp),
            ("num_mem_ports", self.num_mem_ports),
            ("num_branch", self.num_branch),
        ]
        for name, value in positive:
            if value < 1:
                raise ConfigError("%s must be positive (got %r)" % (name, value))
        from repro.isa.registers import NUM_ARCH_REGS

        if self.phys_regs < NUM_ARCH_REGS + self.rob_entries // 2:
            raise ConfigError(
                "phys_regs=%d too small for rob_entries=%d"
                % (self.phys_regs, self.rob_entries)
            )
        if self.nda_broadcast_delay < 0:
            raise ConfigError("nda_broadcast_delay cannot be negative")
        if self.squash_penalty < 0:
            raise ConfigError("squash_penalty cannot be negative")
        if self.frontend_depth < 1:
            raise ConfigError("frontend_depth must be at least 1")
        if self.fpu_sleep_cycles < 1:
            raise ConfigError("fpu_sleep_cycles must be positive")
        if self.fpu_wakeup_cycles < 0:
            raise ConfigError("fpu_wakeup_cycles cannot be negative")
        if self.memdep not in ("none", "waittable"):
            raise ConfigError("unknown memdep predictor %r" % self.memdep)


@dataclass(frozen=True)
class SimConfig:
    """Complete machine description handed to a core.

    ``scheme`` is a registry name from :mod:`repro.schemes` ("none",
    "nda", "invisispec", "fence-on-branch", or any scheme registered via
    :func:`repro.schemes.register_scheme`); ``scheme_params`` is the
    scheme's parameter dataclass (defaulted from the registry when
    omitted).  Legacy :class:`ProtectionScheme` members and the old name
    strings ("ooo", "invisispec-spectre", ...) are coerced on
    construction.
    """

    core: CoreConfig = field(default_factory=CoreConfig)
    mem: MemConfig = field(default_factory=MemConfig)
    scheme: str = "none"
    scheme_params: Optional["SchemeParams"] = None
    privileged_mode: bool = False
    # Insecure-implementation flag: when True, faulting loads forward their
    # data to dependents before the fault squashes at commit (the Meltdown
    # flaw).  The paper's baseline OoO has this flaw; NDA does not need it
    # fixed because load restriction makes it unexploitable.
    forward_faulting_loads: bool = True
    # OoO execution engine: "fast" (the table-driven micro-op core, the
    # default) or "reference" (the readable reference pipeline).  The two
    # are pinned cycle- and counter-identical by the golden equivalence
    # tests, so — like the fast_forward knob — the engine choice is
    # deliberately EXCLUDED from to_dict()/cache_key(): both engines must
    # share cached results.
    engine: str = "fast"
    # Hardware contexts sharing microarchitectural state (repro.smt).
    # ``num_contexts=1`` (the default) is the classic single-context
    # machine; ``num_contexts=2`` runs two programs co-resident under the
    # ``sharing`` mode: "smt" (one core: partitioned fetch/ROB/IQ/LSQ plus
    # shared BTB, RAS, direction predictor, and L1/L2) or "l2" (two
    # private cores + L1s sharing one L2).  Both fields are EXCLUDED from
    # to_dict()/cache_key() at their single-context defaults so existing
    # cache keys and golden files are untouched.
    num_contexts: int = 1
    sharing: str = "smt"

    def __post_init__(self) -> None:
        scheme = self.scheme
        if isinstance(scheme, ProtectionScheme):
            scheme = scheme.value
        scheme, overrides = _LEGACY_SCHEMES.get(scheme, (scheme, None))
        params = self.scheme_params
        if params is None:
            from repro.schemes.registry import scheme_info

            params = scheme_info(scheme).params(**(overrides or {}))
        elif overrides:
            params = replace(params, **overrides)
        object.__setattr__(self, "scheme", scheme)
        object.__setattr__(self, "scheme_params", params)
        # Guard rail (not deferred to validate()): the fast engine is
        # single-context this PR, and silently running a two-context
        # config on it would produce wrong results.
        if self.num_contexts > 1 and self.engine == "fast":
            raise ConfigError(
                "num_contexts=%d requires engine='reference': the fast "
                "core is single-context (pass engine='reference' or use "
                "repro.smt helpers, which do so)" % self.num_contexts
            )

    @property
    def nda_policy(self) -> Optional[NDAPolicyName]:
        """The Table 2 policy when ``scheme == "nda"``, else ``None``."""
        return getattr(self.scheme_params, "policy", None)

    def validate(self) -> "SimConfig":
        self.core.validate()
        self.mem.validate()
        from repro.schemes.registry import scheme_info

        info = scheme_info(self.scheme)
        if not isinstance(self.scheme_params, info.params):
            raise ConfigError(
                "scheme %r expects %s parameters (got %s)" % (
                    self.scheme, info.params.__name__,
                    type(self.scheme_params).__name__,
                )
            )
        if self.engine not in ("fast", "reference"):
            raise ConfigError(
                "unknown engine %r (expected 'fast' or 'reference')"
                % (self.engine,)
            )
        if self.num_contexts not in (1, 2):
            raise ConfigError(
                "num_contexts must be 1 or 2 (got %r)" % (self.num_contexts,)
            )
        if self.sharing not in ("smt", "l2"):
            raise ConfigError(
                "unknown sharing mode %r (expected 'smt' or 'l2')"
                % (self.sharing,)
            )
        return self

    def label(self) -> str:
        """Human-readable configuration name used in reports."""
        from repro.schemes.registry import scheme_info

        return scheme_info(self.scheme).model.label_for(self.scheme_params)

    def to_dict(self) -> dict:
        """Nested plain-dict form (enums become their string values).

        ``engine`` is omitted: both engines are bit-identical, so result
        cache keys must not distinguish them (see the field comment).
        """

        def convert(obj):
            if isinstance(obj, enum.Enum):
                return obj.value
            if isinstance(obj, dict):
                return {key: convert(value) for key, value in obj.items()}
            if isinstance(obj, (list, tuple)):
                return [convert(item) for item in obj]
            return obj

        payload = asdict(self)
        payload.pop("engine", None)
        if self.num_contexts == 1:
            # Single-context configs serialize exactly as they did before
            # the context model existed, keeping cache keys and golden
            # files byte-identical.
            payload.pop("num_contexts", None)
            payload.pop("sharing", None)
        return convert(payload)

    def cache_key(self) -> str:
        """Stable content hash of the complete machine description.

        Two ``SimConfig`` instances have equal keys iff every field (core,
        memory, scheme name, the scheme's full parameter block, flags) is
        equal, so the key is safe to use for on-disk result caching and two
        schemes sharing core/mem settings can never alias.  The key only
        covers the configuration; the engine's cache additionally mixes in
        the workload and sampling parameters plus the code version.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Multi-line human-readable description of this machine."""
        lines = [
            "config: %s (scheme=%s)" % (self.label(), self.scheme),
        ]
        if self.nda_policy is not None:
            lines.append("  nda policy: %s" % self.nda_policy.value)
            if self.core.nda_broadcast_delay:
                lines.append(
                    "  nda broadcast delay: %d cycles"
                    % self.core.nda_broadcast_delay
                )
        core = self.core
        mem = self.mem
        lines.append(
            "  core: %d-issue OoO, %d ROB, %d IQ, %d/%d LQ/SQ, "
            "%d phys regs" % (
                core.issue_width, core.rob_entries, core.iq_entries,
                core.lq_entries, core.sq_entries, core.phys_regs,
            )
        )
        lines.append(
            "  frontend: %d-wide fetch, %d-entry BTB, %d-entry RAS, "
            "depth %d" % (
                core.fetch_width, core.btb_entries, core.ras_entries,
                core.frontend_depth,
            )
        )
        lines.append(
            "  memory: L1 %dkB/%d-way %dc, L2 %dkB/%d-way %dc, "
            "DRAM %dc, %d MSHRs" % (
                mem.l1d.size_bytes // 1024, mem.l1d.assoc,
                mem.l1d.round_trip_cycles,
                mem.l2.size_bytes // 1024, mem.l2.assoc,
                mem.l2.round_trip_cycles,
                mem.dram_cycles, mem.mshrs,
            )
        )
        if self.num_contexts > 1:
            lines.append(
                "  contexts: %d (%s sharing)"
                % (self.num_contexts,
                   "SMT core" if self.sharing == "smt" else "shared-L2")
            )
        lines.append("  cache key: %s" % self.cache_key()[:16])
        return "\n".join(lines)


def baseline_ooo() -> SimConfig:
    """The unconstrained (insecure) OoO baseline."""
    return SimConfig().validate()


def nda_config(policy: NDAPolicyName, **core_overrides) -> SimConfig:
    """An NDA configuration with the given Table 2 policy."""
    from repro.schemes.nda import NDAParams

    if not isinstance(policy, NDAPolicyName):
        policy = NDAPolicyName(policy)
    core = CoreConfig(**core_overrides) if core_overrides else CoreConfig()
    return SimConfig(
        core=core, scheme="nda", scheme_params=NDAParams(policy=policy)
    ).validate()


def invisispec_config(future: bool = False) -> SimConfig:
    """An InvisiSpec comparison configuration."""
    from repro.schemes.invisispec import InvisiSpecParams

    return SimConfig(
        scheme="invisispec",
        scheme_params=InvisiSpecParams(future=bool(future)),
    ).validate()


def scheme_config(name: str, **params) -> SimConfig:
    """A configuration for any registered scheme, by registry name.

    ``params`` override fields of the scheme's parameter dataclass::

        scheme_config("fence-on-branch", fence_loads=False)

    Legacy scheme spellings ("ooo", "invisispec-future", ...) are
    accepted.
    """
    from repro.schemes.registry import scheme_info

    scheme, overrides = _LEGACY_SCHEMES.get(name, (name, None))
    merged = dict(overrides or {})
    merged.update(params)
    info = scheme_info(scheme)
    return SimConfig(
        scheme=scheme, scheme_params=info.params(**merged)
    ).validate()


@dataclass(frozen=True)
class ConfigSpec:
    """One named entry of the configuration sweep.

    Replaces the old ``(label, config, in_order)`` tuple; ``name`` is the
    CLI/registry key (kebab-case), ``label`` the paper's legend text.
    Iteration and indexing keep legacy tuple-unpacking call sites working.
    """

    label: str
    config: SimConfig
    in_order: bool = False
    name: str = ""

    def __iter__(self) -> Iterator:
        # Legacy order: (label, config, in_order).
        yield self.label
        yield self.config
        yield self.in_order

    def __getitem__(self, index):
        return (self.label, self.config, self.in_order)[index]

    def __len__(self) -> int:
        return 3

    @classmethod
    def coerce(cls, spec) -> "ConfigSpec":
        """Accept a ConfigSpec, a registry name ("ooo", "strict", ...),
        or a legacy (label, config, in_order) tuple."""
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, str):
            registry = config_registry()
            if spec not in registry:
                raise ConfigError(
                    "unknown config name %r; known: %s"
                    % (spec, ", ".join(sorted(registry)))
                )
            return registry[spec]
        label, config, in_order = spec
        return cls(label=label, config=config, in_order=bool(in_order))


def config_registry() -> "Dict[str, ConfigSpec]":
    """Canonical name -> :class:`ConfigSpec` map for every configuration.

    This is the single source of truth shared by the CLI ``--config``
    choices, ``figure7_config_specs()``, and the benchmarks.  It is
    derived from the scheme registry (:mod:`repro.schemes`): each
    registered scheme contributes its ``variants()`` presets, so newly
    registered schemes appear here — and therefore in the CLI, the attack
    matrix, and the sweeps — automatically.  Insertion order is the
    paper's Fig. 7 legend order (In-Order sits between the NDA policies
    and InvisiSpec; extra schemes append at the end), so
    ``list(config_registry().values())`` is directly usable as a sweep.
    """
    from repro.schemes.registry import registered_schemes

    registry: Dict[str, ConfigSpec] = {}

    def add(name: str, config: SimConfig, in_order: bool = False,
            label: str = "") -> None:
        registry[name] = ConfigSpec(
            label=label or config.label(), config=config,
            in_order=in_order, name=name,
        )

    for scheme_name, info in registered_schemes().items():
        for name, params in info.model.variants():
            add(name, SimConfig(
                scheme=scheme_name, scheme_params=params
            ).validate())
        if scheme_name == "nda":
            # The in-order baseline is a different core class, not a
            # scheme; the legend slots it between NDA and InvisiSpec.
            add("in-order", baseline_ooo(), in_order=True, label="In-Order")
    return registry


def all_figure7_configs() -> "List[Tuple[str, SimConfig]]":
    """The (label, config) pairs evaluated in Fig. 7-style sweeps.

    The in-order baseline is created by the harness (it uses a different
    core class), so this list covers every registered scheme variant on
    the OoO pipeline; label "In-Order" is appended by callers.
    """
    return [
        (spec.label, spec.config)
        for spec in config_registry().values()
        if not spec.in_order
    ]


def with_nda_delay(config: SimConfig, delay: int) -> SimConfig:
    """Clone *config* with a different NDA broadcast-logic delay (Fig 9e)."""
    return replace(
        config, core=replace(config.core, nda_broadcast_delay=delay)
    ).validate()
