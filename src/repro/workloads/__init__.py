"""Synthetic SPEC CPU 2017-like workloads and micro-kernels."""

from repro.workloads.generator import generate_program, spec_program
from repro.workloads.kernels import (
    ALL_KERNELS,
    dependence_chain,
    mispredict_heavy,
    pointer_chase,
    store_load_aliasing,
    streaming,
    wide_alu,
)
from repro.workloads.profiles import (
    DEFAULT_SUITE,
    FPRATE,
    INTRATE,
    PROFILES,
    BenchmarkProfile,
    profile,
)

__all__ = [
    "generate_program",
    "spec_program",
    "ALL_KERNELS",
    "dependence_chain",
    "mispredict_heavy",
    "pointer_chase",
    "store_load_aliasing",
    "streaming",
    "wide_alu",
    "DEFAULT_SUITE",
    "FPRATE",
    "INTRATE",
    "PROFILES",
    "BenchmarkProfile",
    "profile",
]
