"""Synthetic SPEC-like program generator.

Turns a :class:`~repro.workloads.profiles.BenchmarkProfile` into a concrete,
deterministic micro-op :class:`~repro.isa.program.Program`:

* a main loop whose body realizes the profile's instruction mix,
* loads/stores spread over four access patterns (pointer-chase through a
  line-granular permutation table, a 4 kB hot set, sequential streaming with
  wraparound, and LCG-randomized accesses over the working set),
* data-dependent conditional branches with a controlled bias (forward
  "diamonds", so generated programs always terminate),
* direct and indirect (function-pointer table) calls to leaf functions.

The same ``(profile, instructions, seed)`` triple always produces the same
program, which is what lets the SMARTS-style sampling harness treat seeds
as checkpoints.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, List, Optional

from repro.isa.assembler import Assembler
from repro.isa.opcodes import ALU_IMM_OPS, ALU_OPS, FP_OPS, Opcode
from repro.isa.program import Program
from repro.isa.registers import (
    F0, R0, R1, R2, R3, R4, R5, R6, R7, R25, R26, R27, R28, R29,
    NUM_INT_REGS,
)
from repro.workloads.profiles import BenchmarkProfile, profile as get_profile

# Memory map for generated programs.
HOT_BASE = 0x0008_0000  # 4 kB hot set
HOT_SIZE = 4 * 1024
FUNC_TABLE = 0x0004_0000  # indirect-call dispatch table
WS_BASE = 0x0100_0000  # working set (power-of-two sized, base-aligned)
CHASE_BASE = 0x0400_0000  # pointer-chase table, one entry per cache line

N_FUNCS = 8
DATA_POOL = tuple(range(9, 25))  # r9..r24 hold integer data
FP_POOL = tuple(range(F0, F0 + 8))
LCG_A = 6364136223846793005
LCG_C = 1442695040888963407


def _pow2_at_least(value: int) -> int:
    size = 1
    while size < value:
        size <<= 1
    return size


class _BodyEmitter:
    """Stateful emission of one loop body according to the mix."""

    def __init__(
        self,
        asm: Assembler,
        prof: BenchmarkProfile,
        rng: random.Random,
        func_labels: List[str],
        ws_mask: int,
        wrap_mask: int,
    ):
        self.asm = asm
        self.prof = prof
        self.rng = rng
        self.func_labels = func_labels
        self.ws_mask = ws_mask
        self.wrap_mask = wrap_mask
        self.emitted = 0
        self.last_dest = DATA_POOL[0]
        self.last_fp_dest = FP_POOL[0]
        self._pending: List[List] = []  # [remaining, label]
        self._label_counter = 0
        self._slots_since_lcg = 0

    # -------------------------------------------------------------- #

    def _note_emitted(self, count: int = 1) -> None:
        self.emitted += count
        for pending in self._pending:
            pending[0] -= count
        while self._pending and self._pending[0][0] <= 0:
            self.asm.label(self._pending.pop(0)[1])

    def _close_pending(self) -> None:
        while self._pending:
            self.asm.label(self._pending.pop(0)[1])

    def _src(self) -> int:
        """Pick a source register: recently written with high probability."""
        if self.rng.random() < 0.4:
            return self.last_dest
        return self.rng.choice(DATA_POOL)

    def _dest(self) -> int:
        dest = self.rng.choice(DATA_POOL)
        self.last_dest = dest
        return dest

    # -------------------------------------------------------------- #
    # Instruction emitters (each returns how many micro-ops it produced).
    # -------------------------------------------------------------- #

    def _emit_lcg_step(self) -> None:
        # r2 = r2 * A + C; A lives in r25.
        self.asm.mul(R2, R2, R25)
        self.asm.addi(R2, R2, LCG_C & 0xFFFF)
        self._note_emitted(2)

    def _maybe_lcg(self) -> None:
        self._slots_since_lcg += 1
        if self._slots_since_lcg >= 12:
            self._slots_since_lcg = 0
            self._emit_lcg_step()

    def emit_alu(self) -> None:
        if self.rng.random() < 0.5:
            op = self.rng.choice(ALU_OPS)
            self.asm._alu(op, self._dest(), self._src(), self._src())
        else:
            op = self.rng.choice(ALU_IMM_OPS)
            imm = self.rng.randrange(1, 64)
            self.asm._alui(op, self._dest(), self._src(), imm)
        self._note_emitted(1)

    def emit_mul(self) -> None:
        self.asm.mul(self._dest(), self._src(), self._src())
        self._note_emitted(1)

    def emit_div(self) -> None:
        # Guarantee a non-zero divisor: or with 1.
        divisor = self._dest()
        self.asm.ori(divisor, self._src(), 1)
        self.asm.div(self._dest(), self._src(), divisor)
        self._note_emitted(2)

    def emit_fp(self) -> None:
        op = self.rng.choice(FP_OPS)
        dest = self.rng.choice(FP_POOL)
        src1 = self.last_fp_dest if self.rng.random() < 0.5 \
            else self.rng.choice(FP_POOL)
        src2 = self.rng.choice(FP_POOL)
        self.asm._alu(op, dest, src1, src2)
        self.last_fp_dest = dest
        self._note_emitted(1)

    # -------------------------------------------------------------- #

    def _mem_pattern(self, allow_chase: bool) -> str:
        prof = self.prof
        roll = self.rng.random()
        if allow_chase and roll < prof.chase_frac:
            return "chase"
        roll -= prof.chase_frac if allow_chase else 0.0
        if roll < prof.hot_frac:
            return "hot"
        roll -= prof.hot_frac
        if roll < prof.stream_frac:
            return "stream"
        return "random"

    def _random_addr_into_r28(self) -> int:
        """Compute a pseudo-random aligned working-set address in r28."""
        self.asm.xor(R28, R2, self._src())
        self.asm.andi(R28, R28, self.ws_mask)
        self.asm.add(R28, R28, R6)
        return 3

    def emit_load(self) -> None:
        pattern = self._mem_pattern(allow_chase=True)
        if pattern == "chase":
            self.asm.load(R3, R3, 0)
            self._note_emitted(1)
            if self.rng.random() < 0.3:
                # Consume the chased pointer so it feeds real work.
                self.asm.add(self._dest(), R3, self._src())
                self._note_emitted(1)
        elif pattern == "hot":
            imm = self.rng.randrange(0, HOT_SIZE - 8) & ~7
            self.asm.load(self._dest(), R5, imm)
            self._note_emitted(1)
        elif pattern == "stream":
            imm = self.rng.randrange(0, 8) * 8
            self.asm.load(self._dest(), R4, imm)
            self._note_emitted(1)
            if self.rng.random() < 0.5:
                self.asm.addi(R4, R4, 64)
                self.asm.andi(R4, R4, self.wrap_mask)
                self._note_emitted(2)
        else:
            extra = self._random_addr_into_r28()
            self.asm.load(self._dest(), R28, 0)
            self._note_emitted(extra + 1)
        self._maybe_lcg()

    def emit_store(self) -> None:
        pattern = self._mem_pattern(allow_chase=False)
        value = self._src()
        if pattern == "hot":
            imm = self.rng.randrange(0, HOT_SIZE - 8) & ~7
            self.asm.store(value, R5, imm)
            self._note_emitted(1)
        elif pattern == "stream":
            imm = self.rng.randrange(0, 8) * 8
            self.asm.store(value, R4, imm)
            self._note_emitted(1)
        else:
            extra = self._random_addr_into_r28()
            self.asm.store(value, R28, 0)
            self._note_emitted(extra + 1)
        self._maybe_lcg()

    # -------------------------------------------------------------- #

    def emit_branch(self) -> None:
        """A forward diamond with the profile's taken bias."""
        self._label_counter += 1
        label = "skip_%d" % self._label_counter
        skip_len = self.rng.randrange(2, 6)
        # Condition mixes a data register with the LCG so that it depends
        # on loaded values but stays roughly uniform.
        self.asm.xor(R29, self._src(), R2)
        self.asm.andi(R29, R29, 0xFF)
        self.asm.blt(R29, R7, label)
        self._note_emitted(3)
        self._pending.append([skip_len, label])
        self._pending.sort(key=lambda pending: pending[0])

    def emit_call(self) -> None:
        if self.rng.random() < self.prof.indirect_call_frac:
            index = self.rng.randrange(N_FUNCS)
            self.asm.load(R28, R27, index * 8)
            self.asm.callr(R28)
            self._note_emitted(2)
        else:
            self.asm.call(self.rng.choice(self.func_labels))
            self._note_emitted(1)

    # -------------------------------------------------------------- #

    def emit_body(self, size: int) -> None:
        prof = self.prof
        thresholds = [
            (prof.load_frac, self.emit_load),
            (prof.store_frac, self.emit_store),
            (prof.fp_frac, self.emit_fp),
            (prof.mul_frac, self.emit_mul),
            (prof.div_frac, self.emit_div),
            (prof.branch_frac, self.emit_branch),
            (prof.call_frac, self.emit_call),
        ]
        while self.emitted < size:
            roll = self.rng.random()
            for fraction, emitter in thresholds:
                if roll < fraction:
                    emitter()
                    break
                roll -= fraction
            else:
                self.emit_alu()
        self._close_pending()


def generate_program(
    prof: BenchmarkProfile,
    instructions: int = 20_000,
    seed: int = 0,
) -> Program:
    """Emit a deterministic program realizing *prof*.

    *instructions* is the approximate number of dynamic micro-ops the main
    loop commits before halting; *seed* selects one of infinitely many
    program variants (the sampling harness's "checkpoints").
    """
    # Code structure depends only on the benchmark (one "binary" per
    # profile); the seed varies data contents and initial register state —
    # the analog of resuming the same binary from different checkpoints,
    # which is what keeps the SMARTS confidence intervals meaningful.
    name_hash = zlib.crc32(prof.name.encode("utf-8"))
    rng = random.Random(name_hash)
    asm = Assembler("%s-s%d" % (prof.name, seed))

    ws_size = _pow2_at_least(max(prof.working_set_bytes, 64 * 1024))
    ws_mask = (ws_size - 1) & ~7
    wrap_mask = WS_BASE | ((ws_size - 1) & ~63)

    # ------------------------------------------------------------------ #
    # Data image.
    # ------------------------------------------------------------------ #
    # Sub-RNG derivation: a distinct string stream per (seed, purpose).
    # The previous affine derivation (seed * 7919 + 13) interleaves the
    # Mersenne Twister seed space, so nearby seeds can produce correlated
    # data images; string seeds hash through SHA-512 (never through
    # PYTHONHASHSEED-randomized ``hash()``, which tuple seeds would use),
    # so they are both well-mixed and stable across processes.
    data_rng = random.Random("%d/data" % seed)
    asm.data(HOT_BASE, bytes(data_rng.randrange(256) for _ in range(HOT_SIZE)))
    seed_region = min(ws_size, 64 * 1024)
    asm.data(
        WS_BASE,
        bytes(data_rng.randrange(256) for _ in range(seed_region)),
    )
    # Pointer-chase table: one entry per 64-byte line, a random cycle.
    if prof.chase_frac > 0:
        chase_entries = min(max(ws_size // 64, 1024), 32768)
    else:
        chase_entries = 64
    order = list(range(1, chase_entries))
    data_rng.shuffle(order)
    order = [0] + order
    for position, entry in enumerate(order):
        successor = order[(position + 1) % chase_entries]
        asm.word(CHASE_BASE + entry * 64, CHASE_BASE + successor * 64)

    # ------------------------------------------------------------------ #
    # Code: entry jump, leaf functions, dispatch table, main loop.
    # ------------------------------------------------------------------ #
    asm.jmp("main")
    func_labels: List[str] = []
    func_pcs: List[int] = []
    for index in range(N_FUNCS):
        label = "func_%d" % index
        func_labels.append(label)
        asm.label(label)
        func_pcs.append(asm.here)
        for _ in range(rng.randrange(3, 7)):
            op = rng.choice(ALU_OPS)
            asm._alu(
                op,
                rng.choice(DATA_POOL),
                rng.choice(DATA_POOL),
                rng.choice(DATA_POOL),
            )
        asm.ret()
    for index, pc in enumerate(func_pcs):
        asm.word(FUNC_TABLE + index * 8, pc)

    asm.label("main")
    body_size = prof.body_size
    iters = max(1, instructions // max(body_size, 1))
    asm.li(R1, iters)
    asm.li(R2, (seed * 2 + 1) * 0x5DEECE66D % (1 << 48) | 1)
    asm.li(R3, CHASE_BASE)
    asm.li(R4, WS_BASE)
    asm.li(R5, HOT_BASE)
    asm.li(R6, WS_BASE)
    asm.li(R7, max(1, min(255, int(round(prof.branch_bias * 256)))))
    asm.li(R25, LCG_A)
    asm.li(R27, FUNC_TABLE)
    for reg in DATA_POOL:
        asm.li(reg, data_rng.randrange(1, 1 << 32))
    for reg in FP_POOL:
        asm.li(reg, data_rng.randrange(1, 1 << 62))

    asm.label("loop")
    emitter = _BodyEmitter(asm, prof, rng, func_labels, ws_mask, wrap_mask)
    emitter.emit_body(body_size)
    asm.subi(R1, R1, 1)
    asm.bne(R1, R0, "loop")
    asm.halt()

    return asm.build()


def spec_program(
    name: str,
    instructions: int = 20_000,
    seed: int = 0,
) -> Program:
    """Generate the synthetic stand-in for SPEC benchmark *name*."""
    return generate_program(get_profile(name), instructions, seed)
