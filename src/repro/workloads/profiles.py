"""SPEC CPU 2017 benchmark profiles.

The paper evaluates NDA on SPEC CPU 2017 sampled from real-hardware
checkpoints.  SPEC binaries are licensed software and the checkpoints need a
Haswell host, so this reproduction substitutes *synthetic* workloads: each
profile captures the micro-architectural character of one SPEC benchmark —
instruction mix, working-set size, memory access patterns (streaming /
random / pointer-chasing / hot-set), branch bias, call behaviour, and code
footprint — and the generator (:mod:`repro.workloads.generator`) emits a
deterministic micro-op program with those properties.

The parameters are chosen so the *relative* behaviours match the well-known
characterization of the suite: ``mcf``/``omnetpp`` are pointer-chasing and
memory-bound, ``lbm``/``bwaves``/``fotonik3d`` stream through large arrays,
``leela``/``deepsjeng``/``xz`` are branchy integer codes, ``exchange2`` is
compute-bound with high ILP, and the FP-rate codes carry long FP dependence
chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generator parameters for one synthetic SPEC-like benchmark."""

    name: str
    suite: str  # "intrate" or "fprate"
    # Instruction-mix fractions (the remainder is plain ALU work).
    load_frac: float
    store_frac: float
    fp_frac: float
    mul_frac: float
    div_frac: float
    branch_frac: float
    call_frac: float
    # Memory behaviour.
    working_set_bytes: int
    chase_frac: float  # fraction of loads that pointer-chase
    hot_frac: float  # fraction of loads/stores hitting a 4 kB hot set
    stream_frac: float  # fraction walking sequentially
    # Branch behaviour: probability a conditional branch goes its biased way.
    branch_bias: float
    # Fraction of calls that are indirect (function-pointer dispatch).
    indirect_call_frac: float
    # Static code footprint, in micro-ops per loop body.
    body_size: int

    def validate(self) -> None:
        mix = (
            self.load_frac + self.store_frac + self.fp_frac + self.mul_frac
            + self.div_frac + self.branch_frac + self.call_frac
        )
        if mix >= 1.0:
            raise ValueError(
                "%s: instruction mix fractions sum to %.2f >= 1" %
                (self.name, mix)
            )
        if not 0.5 <= self.branch_bias <= 1.0:
            raise ValueError("%s: branch_bias must be in [0.5, 1]" % self.name)
        patterns = self.chase_frac + self.hot_frac + self.stream_frac
        if patterns > 1.0:
            raise ValueError(
                "%s: memory pattern fractions exceed 1" % self.name
            )


def _p(name, suite, ld, st, fp, mul, div, br, call, ws, chase, hot,
       stream, bias, icall, body) -> BenchmarkProfile:
    profile = BenchmarkProfile(
        name=name, suite=suite,
        load_frac=ld, store_frac=st, fp_frac=fp, mul_frac=mul, div_frac=div,
        branch_frac=br, call_frac=call,
        working_set_bytes=ws, chase_frac=chase, hot_frac=hot,
        stream_frac=stream, branch_bias=bias, indirect_call_frac=icall,
        body_size=body,
    )
    profile.validate()
    return profile


KB = 1024
MB = 1024 * KB

# The SPECrate 2017 benchmarks evaluated in the paper's Fig. 7.
PROFILES: Dict[str, BenchmarkProfile] = {
    p.name: p for p in [
        # --- integer rate -------------------------------------------------
        _p("perlbench", "intrate", .22, .12, .00, .02, .00, .17, .04,
           256 * KB, .10, .55, .10, .95, .45, 700),
        _p("gcc", "intrate", .21, .10, .00, .02, .00, .19, .03,
           1 * MB, .10, .40, .10, .93, .30, 2400),
        _p("mcf", "intrate", .30, .05, .00, .01, .00, .16, .01,
           8 * MB, .50, .15, .05, .94, .10, 450),
        _p("omnetpp", "intrate", .28, .10, .00, .01, .00, .15, .05,
           4 * MB, .35, .25, .05, .93, .60, 800),
        _p("xalancbmk", "intrate", .25, .08, .00, .01, .00, .19, .05,
           2 * MB, .15, .35, .10, .94, .55, 1600),
        _p("x264", "intrate", .27, .12, .08, .05, .00, .08, .01,
           512 * KB, .00, .50, .35, .975, .20, 900),
        _p("deepsjeng", "intrate", .22, .10, .00, .03, .00, .18, .03,
           512 * KB, .05, .45, .05, .90, .25, 600),
        _p("leela", "intrate", .20, .08, .00, .04, .01, .19, .04,
           128 * KB, .05, .55, .05, .88, .25, 500),
        _p("exchange2", "intrate", .12, .08, .00, .02, .00, .12, .02,
           64 * KB, .00, .85, .05, .985, .05, 550),
        _p("xz", "intrate", .25, .10, .00, .02, .00, .15, .01,
           4 * MB, .20, .25, .20, .92, .05, 700),
        # --- floating point rate ------------------------------------------
        _p("bwaves", "fprate", .30, .12, .28, .02, .00, .05, .00,
           8 * MB, .00, .10, .70, .99, .00, 650),
        _p("cactuBSSN", "fprate", .31, .13, .28, .02, .00, .04, .00,
           4 * MB, .00, .15, .60, .99, .00, 1400),
        _p("namd", "fprate", .25, .10, .34, .03, .00, .05, .01,
           1 * MB, .00, .45, .25, .98, .10, 800),
        _p("parest", "fprate", .27, .10, .25, .02, .01, .08, .01,
           2 * MB, .05, .35, .30, .97, .15, 1000),
        _p("povray", "fprate", .20, .10, .25, .04, .02, .12, .04,
           256 * KB, .00, .55, .10, .95, .30, 700),
        _p("lbm", "fprate", .29, .18, .27, .00, .00, .03, .00,
           8 * MB, .00, .05, .85, .995, .00, 500),
        _p("wrf", "fprate", .28, .12, .27, .02, .00, .06, .00,
           2 * MB, .00, .25, .45, .98, .05, 1200),
        _p("blender", "fprate", .22, .10, .25, .03, .01, .10, .03,
           1 * MB, .05, .40, .20, .95, .25, 900),
        _p("cam4", "fprate", .26, .12, .26, .02, .00, .08, .00,
           2 * MB, .00, .30, .40, .97, .05, 1100),
        _p("imagick", "fprate", .25, .10, .30, .04, .00, .06, .00,
           512 * KB, .00, .50, .30, .985, .05, 750),
        _p("nab", "fprate", .24, .10, .30, .03, .01, .07, .00,
           256 * KB, .00, .50, .20, .97, .05, 650),
        _p("fotonik3d", "fprate", .30, .12, .29, .01, .00, .04, .00,
           4 * MB, .00, .10, .70, .99, .00, 600),
        _p("roms", "fprate", .28, .12, .29, .02, .00, .05, .00,
           4 * MB, .00, .15, .60, .99, .00, 700),
    ]
}

# Compact suite used by the default benchmark harness: one representative
# per behaviour class, keeps a full 10-config sweep tractable in Python.
DEFAULT_SUITE: Tuple[str, ...] = (
    "perlbench", "gcc", "mcf", "omnetpp", "x264", "deepsjeng", "leela",
    "exchange2", "xz", "bwaves", "lbm", "imagick", "nab", "fotonik3d",
)

INTRATE = tuple(p.name for p in PROFILES.values() if p.suite == "intrate")
FPRATE = tuple(p.name for p in PROFILES.values() if p.suite == "fprate")


def profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by SPEC-style name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            "unknown benchmark %r (choose from %s)"
            % (name, ", ".join(sorted(PROFILES)))
        ) from None
