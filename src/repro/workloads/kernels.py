"""Hand-written micro-kernels.

Small, analyzable programs used by unit tests, examples, and the ablation
benchmarks: each isolates one micro-architectural behaviour (pointer
chasing, streaming, dependence chains, branch misprediction, MLP).
"""

from __future__ import annotations

import random

from repro.isa.assembler import Assembler
from repro.isa.program import Program
from repro.isa.registers import R0, R1, R2, R3, R4, R5, R6, R7, R8


def pointer_chase(
    iterations: int = 2000, entries: int = 4096, seed: int = 0
) -> Program:
    """Serial dependent loads through a shuffled in-memory linked list."""
    asm = Assembler("pointer_chase")
    base = 0x200000
    rng = random.Random(seed)
    order = list(range(1, entries))
    rng.shuffle(order)
    order = [0] + order
    for position, entry in enumerate(order):
        successor = order[(position + 1) % entries]
        asm.word(base + entry * 64, base + successor * 64)
    asm.li(R1, base)
    asm.li(R2, iterations)
    asm.label("loop")
    asm.load(R1, R1, 0)
    asm.subi(R2, R2, 1)
    asm.bne(R2, R0, "loop")
    asm.halt()
    return asm.build()


def streaming(iterations: int = 2000, stride: int = 64) -> Program:
    """Independent strided loads: maximum memory-level parallelism."""
    asm = Assembler("streaming")
    base = 0x400000
    asm.li(R1, base)
    asm.li(R2, iterations)
    asm.li(R5, 0)
    asm.label("loop")
    asm.load(R3, R1, 0)
    asm.load(R4, R1, stride)
    asm.load(R6, R1, 2 * stride)
    asm.load(R7, R1, 3 * stride)
    asm.add(R5, R5, R3)
    asm.addi(R1, R1, 4 * stride)
    asm.subi(R2, R2, 1)
    asm.bne(R2, R0, "loop")
    asm.halt()
    return asm.build()


def dependence_chain(iterations: int = 3000) -> Program:
    """A long serial ALU chain: ILP floor of 1."""
    asm = Assembler("dependence_chain")
    asm.li(R1, iterations)
    asm.li(R2, 1)
    asm.label("loop")
    asm.addi(R2, R2, 3)
    asm.xori(R2, R2, 0x55)
    asm.shli(R2, R2, 1)
    asm.shri(R2, R2, 1)
    asm.subi(R1, R1, 1)
    asm.bne(R1, R0, "loop")
    asm.halt()
    return asm.build()


def wide_alu(iterations: int = 3000) -> Program:
    """Independent ALU streams: high ILP, no memory traffic."""
    asm = Assembler("wide_alu")
    asm.li(R1, iterations)
    for reg in (R2, R3, R4, R5, R6, R7):
        asm.li(reg, reg * 17 + 1)
    asm.label("loop")
    asm.addi(R2, R2, 1)
    asm.addi(R3, R3, 2)
    asm.addi(R4, R4, 3)
    asm.addi(R5, R5, 4)
    asm.xori(R6, R6, 0x3C)
    asm.shli(R7, R7, 1)
    asm.subi(R1, R1, 1)
    asm.bne(R1, R0, "loop")
    asm.halt()
    return asm.build()


def mispredict_heavy(iterations: int = 2000, seed: int = 0) -> Program:
    """Branches on random loaded data: ~50% misprediction."""
    asm = Assembler("mispredict_heavy")
    base = 0x600000
    rng = random.Random(seed)
    for index in range(4096):
        asm.word(base + index * 8, rng.randrange(2))
    asm.li(R1, base)
    asm.li(R2, iterations)
    asm.li(R3, 0)
    asm.label("loop")
    asm.load(R4, R1, 0)
    asm.bne(R4, R0, "skip")
    asm.addi(R3, R3, 1)
    asm.label("skip")
    asm.addi(R1, R1, 8)
    asm.andi(R1, R1, base | 0x7FF8)
    asm.ori(R1, R1, base)
    asm.subi(R2, R2, 1)
    asm.bne(R2, R0, "loop")
    asm.halt()
    return asm.build()


def store_load_aliasing(iterations: int = 1500) -> Program:
    """Stores with slowly resolving addresses feeding nearby loads.

    Exercises speculative store bypass, forwarding, and the memory
    dependency unit; the ablation benchmarks use it to price NDA's Bypass
    Restriction.
    """
    asm = Assembler("store_load_aliasing")
    base = 0x800000
    asm.li(R1, iterations)
    asm.li(R2, base)
    asm.li(R3, 13)
    asm.li(R7, 1)
    asm.label("loop")
    # Store address depends on a DIV: resolves late.  It walks the slots
    # base+0 .. base+0x38, aliasing the load below every 8th iteration.
    asm.div(R4, R1, R7)
    asm.shli(R4, R4, 3)
    asm.andi(R4, R4, 0x38)
    asm.add(R5, R2, R4)
    asm.store(R3, R5, 0)
    # The load executes long before the store's address resolves.
    asm.load(R6, R2, 8)
    asm.add(R3, R3, R6)
    asm.ori(R3, R3, 1)
    asm.subi(R1, R1, 1)
    asm.bne(R1, R0, "loop")
    asm.halt()
    return asm.build()


ALL_KERNELS = {
    "pointer_chase": pointer_chase,
    "streaming": streaming,
    "dependence_chain": dependence_chain,
    "wide_alu": wide_alu,
    "mispredict_heavy": mispredict_heavy,
    "store_load_aliasing": store_load_aliasing,
}
